//! Escra tunables.
//!
//! Default values follow the paper's evaluation setup (§VI-A): Υ = 20,
//! δ = 50 MiB, 5-second reclamation, 100 ms report period. γ and κ are
//! stated as 0.2 / 0.8 in the paper; under this reproduction's
//! scale-down reading (shrink the windowed excess *above* γ — see
//! DESIGN.md §4) the behaviour-matched defaults are γ = 0.25, κ = 1.0.

use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of the Escra Resource Allocator and Controller.
///
/// ```
/// use escra_core::config::EscraConfig;
/// let cfg = EscraConfig::default().with_upsilon(35.0); // ImageProcess setting
/// assert_eq!(cfg.upsilon, 35.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EscraConfig {
    /// Υ — scale-up gain, taken literally from the paper's formula
    /// `throttle_rate · unallocated · Υ` (Υ = 20 for microservices, 35
    /// for ImageProcess). The raw term usually exceeds any sane single
    /// step, so the effective step is bounded by
    /// [`EscraConfig::max_quota_growth_factor`]; Υ then matters when the
    /// pool or the throttle rate is small. See DESIGN.md §4.
    pub upsilon: f64,
    /// γ — scale-down trigger: shrink when `quota − usage > γ` cores.
    pub gamma_cores: f64,
    /// κ — scale-down gain on the windowed mean unused runtime.
    pub kappa: f64,
    /// n — sliding-window length in CFS periods for both windowed
    /// statistics (throttle rate and unused runtime).
    pub window_periods: usize,
    /// δ — memory-reclamation safe margin (paper: 50 MiB).
    pub delta_bytes: u64,
    /// σ — fraction of the global memory limit distributed to containers
    /// at deployment; the remainder is withheld for OOM grants (eq. 2).
    pub sigma: f64,
    /// Bytes granted to a container on an OOM event ("a fixed number of
    /// pages", §IV-D2).
    pub oom_grant_bytes: u64,
    /// Interval of the proactive reclamation loop (paper: 5 s).
    pub reclaim_interval: SimDuration,
    /// CFS period / telemetry report period (paper: 100 ms).
    pub report_period: SimDuration,
    /// Cap on per-period quota growth: a scale-up step never raises a
    /// quota above `quota × max_quota_growth_factor`. The paper's
    /// scale-up term is proportional to the *whole* unallocated pool,
    /// which diverges when the pool is large (e.g. a serverless
    /// namespace); growth capped at doubling per 100 ms period still
    /// closes any realistic gap within a few periods.
    pub max_quota_growth_factor: f64,
    /// Floor for any container CPU quota, in cores.
    pub min_quota_cores: f64,
    /// Floor for any container memory limit, in bytes.
    pub min_mem_bytes: u64,
    /// How long the Controller waits for an Agent ack before re-sending
    /// an OOM memory grant. A lost `SetMemLimit` leaves the trapped
    /// container frozen at its old limit; the retry un-strands it.
    pub grant_retry_timeout: SimDuration,
    /// Re-sends of one grant before the Controller gives up and lets
    /// the container's next OOM event drive reconciliation instead.
    pub grant_max_retries: u32,
}

impl Default for EscraConfig {
    fn default() -> Self {
        EscraConfig {
            upsilon: 20.0,
            gamma_cores: 0.25,
            kappa: 1.0,
            window_periods: 5,
            delta_bytes: 50 * escra_cfs::MIB,
            sigma: 0.8,
            oom_grant_bytes: 32 * escra_cfs::MIB,
            reclaim_interval: SimDuration::from_secs(5),
            report_period: SimDuration::from_millis(100),
            max_quota_growth_factor: 1.5,
            min_quota_cores: 0.05,
            min_mem_bytes: 16 * escra_cfs::MIB,
            grant_retry_timeout: SimDuration::from_millis(500),
            grant_max_retries: 4,
        }
    }
}

impl EscraConfig {
    /// Sets Υ (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `upsilon` is not positive.
    pub fn with_upsilon(mut self, upsilon: f64) -> Self {
        assert!(upsilon > 0.0, "Υ must be positive");
        self.upsilon = upsilon;
        self
    }

    /// Sets γ in cores (builder style).
    pub fn with_gamma(mut self, gamma_cores: f64) -> Self {
        assert!(gamma_cores >= 0.0, "γ must be non-negative");
        self.gamma_cores = gamma_cores;
        self
    }

    /// Sets κ (builder style).
    pub fn with_kappa(mut self, kappa: f64) -> Self {
        assert!(kappa > 0.0 && kappa <= 1.0, "κ must be in (0,1]");
        self.kappa = kappa;
        self
    }

    /// Sets the sliding-window length (builder style).
    pub fn with_window(mut self, periods: usize) -> Self {
        assert!(periods > 0, "window must be non-empty");
        self.window_periods = periods;
        self
    }

    /// Sets the telemetry/CFS period (builder style). Used by the
    /// report-period sweep experiment (§VI-I).
    pub fn with_report_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        self.report_period = period;
        self
    }

    /// Sets δ, the reclamation safe margin (builder style).
    pub fn with_delta_bytes(mut self, delta: u64) -> Self {
        self.delta_bytes = delta;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EscraConfig::default();
        assert_eq!(c.kappa, 1.0);
        assert_eq!(c.gamma_cores, 0.25);
        assert_eq!(c.upsilon, 20.0);
        assert_eq!(c.delta_bytes, 50 * escra_cfs::MIB);
        assert_eq!(c.reclaim_interval, SimDuration::from_secs(5));
        assert_eq!(c.report_period, SimDuration::from_millis(100));
        assert_eq!(c.max_quota_growth_factor, 1.5);
    }

    #[test]
    fn grant_retry_defaults_are_sub_second() {
        // The whole point of the retry is sub-second recovery: a trapped
        // container must not wait out a 5 s reclaim interval.
        let c = EscraConfig::default();
        assert!(c.grant_retry_timeout <= SimDuration::from_secs(1));
        assert!(c.grant_max_retries >= 1);
    }

    #[test]
    fn builders_chain() {
        let c = EscraConfig::default()
            .with_upsilon(35.0)
            .with_gamma(0.1)
            .with_kappa(0.5)
            .with_window(10)
            .with_report_period(SimDuration::from_millis(50))
            .with_delta_bytes(10 * escra_cfs::MIB);
        assert_eq!(c.upsilon, 35.0);
        assert_eq!(c.gamma_cores, 0.1);
        assert_eq!(c.kappa, 0.5);
        assert_eq!(c.window_periods, 10);
        assert_eq!(c.report_period.as_millis(), 50);
        assert_eq!(c.delta_bytes, 10 * escra_cfs::MIB);
    }

    #[test]
    #[should_panic(expected = "κ must be in (0,1]")]
    fn kappa_validated() {
        EscraConfig::default().with_kappa(0.0);
    }
}
