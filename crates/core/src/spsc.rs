//! A bounded single-producer/single-consumer ring buffer (Lamport
//! queue) for the sharded Controller's router → worker work path and
//! the worker → router buffer-recycle path.
//!
//! Push and pop are one unaligned write/read plus one Release store
//! each — no locks, no allocation, no syscalls — which is what lets a
//! recycled column block cross the shard boundary for a few
//! nanoseconds instead of an mpsc send.
//!
//! ## Roles, not threads
//!
//! The "single producer" and "single consumer" are *roles*: correctness
//! requires that at any moment at most one thread pushes and at most
//! one thread pops, and that successive holders of a role are ordered
//! by a happens-before edge. The sharded Controller maintains this
//! structurally:
//!
//! * work rings: the router thread is the only pusher; poppers (the
//!   owning worker, a work-stealing sibling, or the router itself when
//!   it needs a shard flushed) all hold the shard's core mutex while
//!   popping, which serializes them and carries the edge.
//! * recycle rings: pushers hold the same core mutex; the router thread
//!   is the only popper.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The ring. Capacity is fixed at construction and rounded up to a
/// power of two internally.
pub(crate) struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop (free-running; masked on access).
    head: AtomicUsize,
    /// Next slot to push (free-running; masked on access).
    tail: AtomicUsize,
}

// SAFETY: the ring hands each `T` from exactly one pusher to exactly
// one popper (see module docs); the atomics order the slot accesses.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Creates a ring holding at least `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            buf,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Pushes `value`, or returns it when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(value);
        }
        // SAFETY: the slot at `tail` is outside [head, tail), so no
        // concurrent popper reads it; we are the only pusher.
        unsafe { (*self.buf[tail & self.mask].get()).write(value) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pops the oldest item, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head != tail means the slot was fully written before
        // the pusher's Release store to `tail`; we are the only popper.
        let value = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// True when the ring held no items at the moment of the check.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }

    /// Number of items in the ring at the moment of the check (exact
    /// for the producer; a snapshot for anyone else).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Items still in flight (e.g. work queued at shutdown after the
        // final drain) own heap buffers; drain them properly.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let ring = SpscRing::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.push(99), Err(99), "full ring rejects");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn wraps_around_many_times() {
        let ring = SpscRing::with_capacity(2);
        for i in 0..1000 {
            ring.push(i).unwrap();
            assert_eq!(ring.pop(), Some(i));
        }
    }

    #[test]
    fn drop_releases_undrained_items() {
        let item = Arc::new(());
        {
            let ring = SpscRing::with_capacity(8);
            for _ in 0..5 {
                ring.push(Arc::clone(&item)).unwrap();
            }
            ring.pop();
        }
        assert_eq!(Arc::strong_count(&item), 1, "ring drop freed its items");
    }

    #[test]
    fn cross_thread_handoff_delivers_everything_in_order() {
        let ring = Arc::new(SpscRing::with_capacity(16));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut next = 0u64;
                while next < 10_000 {
                    if let Some(v) = ring.pop() {
                        assert_eq!(v, next);
                        next += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut v = 0u64;
        while v < 10_000 {
            if ring.push(v).is_ok() {
                v += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        consumer.join().unwrap();
    }
}
