//! Control-plane message types and wire sizes.
//!
//! Mirrors the paper's protocol (§IV-B): containers register over a
//! per-container kernel TCP socket, stream per-period CPU statistics over
//! UDP, and send OOM events over the TCP socket; the Controller invokes
//! Agents over gRPC to update limits and run reclamation sweeps.

use escra_cfs::CpuPeriodStats;
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_net::batch_wire_bytes;
use serde::{Deserialize, Serialize};

/// Envelope overhead of one UDP CPU-statistic message: IP/UDP headers
/// plus the node tag. Shared across all entries of a per-node batch.
pub const CPU_STATS_HEADER_BYTES: u64 = 40;

/// Payload bytes of one container's per-period CPU statistic: cgroup
/// tag, quota, unused runtime, throttle flag — the fields the custom
/// kernel struct actually carries.
pub const CPU_STATS_ENTRY_BYTES: u64 = 24;

/// Wire size in bytes of one UDP CPU-statistic message: one envelope
/// carrying one entry. The paper measures ~12 Mbps peak for 32 containers
/// reporting at 10 Hz, implying a few kB per message once kernel-socket
/// framing is counted; we use the message the custom kernel struct
/// actually carries.
pub const CPU_STATS_WIRE_BYTES: u64 = CPU_STATS_HEADER_BYTES + CPU_STATS_ENTRY_BYTES;

/// Wire size of a registration message (TCP, incl. handshake amortised).
pub const REGISTER_WIRE_BYTES: u64 = 128;

/// Wire size of an OOM event (TCP).
pub const OOM_EVENT_WIRE_BYTES: u64 = 96;

/// Wire size of a Controller→Agent limit-update RPC.
pub const LIMIT_UPDATE_WIRE_BYTES: u64 = 160;

/// Wire size of a reclamation request/response RPC pair.
pub const RECLAIM_RPC_WIRE_BYTES: u64 = 192;

/// One container's per-period CPU statistic inside a per-node batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuStatsEntry {
    /// Reporting container.
    pub container: ContainerId,
    /// The per-period statistics exported by its CFS hook.
    pub stats: CpuPeriodStats,
}

/// Messages flowing from worker nodes to the Controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ToController {
    /// A new container announces itself (kernel syscall at deploy, §IV-B).
    Register {
        /// The new container.
        container: ContainerId,
        /// Its application (Distributed Container scope).
        app: AppId,
        /// Host node, so the Controller knows which Agent to call.
        node: NodeId,
    },
    /// End-of-period CPU statistics from the CFS hook (UDP).
    CpuStats {
        /// Reporting container.
        container: ContainerId,
        /// The per-period statistics.
        stats: CpuPeriodStats,
    },
    /// All of one node's end-of-period CPU statistics in a single UDP
    /// datagram: the node's Agent coalesces its containers' CFS-hook
    /// exports at the period boundary, so the envelope header is paid
    /// once per node instead of once per container (§VI-I).
    ///
    /// Semantically identical to sending one [`ToController::CpuStats`]
    /// per entry, in entry order — a property test holds the Controller
    /// to that.
    CpuStatsBatch {
        /// The reporting node.
        node: NodeId,
        /// Per-container statistics, in the Agent's collection order.
        entries: Vec<CpuStatsEntry>,
    },
    /// The `try_charge()` hook trapped an imminent OOM (TCP).
    OomEvent {
        /// The container about to be killed.
        container: ContainerId,
        /// Bytes by which the charge exceeds the current limit.
        shortfall_bytes: u64,
        /// The limit the container is actually running with. Lets the
        /// Controller detect a lost grant: if its tracked limit exceeds
        /// this, the last `SetMemLimit` never arrived and must be
        /// resent.
        current_limit_bytes: u64,
    },
    /// Agent acknowledgement that a `SetMemLimit` was applied.
    ///
    /// On the real control plane this is the gRPC response of the
    /// limit-update call, not a separate message — so its wire size is
    /// zero (the response is priced into [`LIMIT_UPDATE_WIRE_BYTES`]).
    LimitAck {
        /// The container whose limit was set.
        container: ContainerId,
        /// Sequence number of the applied `SetMemLimit`.
        seq: u64,
    },
}

impl ToController {
    /// Wire size used for bandwidth accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ToController::Register { .. } => REGISTER_WIRE_BYTES,
            ToController::CpuStats { .. } => CPU_STATS_WIRE_BYTES,
            ToController::CpuStatsBatch { entries, .. } => batch_wire_bytes(
                CPU_STATS_HEADER_BYTES,
                CPU_STATS_ENTRY_BYTES,
                entries.len() as u64,
            ),
            ToController::OomEvent { .. } => OOM_EVENT_WIRE_BYTES,
            // Already charged as part of the update RPC pair.
            ToController::LimitAck { .. } => 0,
        }
    }
}

/// Commands from the Controller to a node Agent (gRPC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ToAgent {
    /// Set a container's CPU quota (applied without restart).
    SetCpuQuota {
        /// Target container.
        container: ContainerId,
        /// New quota in cores.
        quota_cores: f64,
        /// Controller-issued sequence number; Agents discard commands
        /// whose `seq` does not advance past the last applied one, so
        /// duplicated or reordered deliveries cannot roll a limit back.
        seq: u64,
    },
    /// Set a container's memory limit (scale-up grant).
    SetMemLimit {
        /// Target container.
        container: ContainerId,
        /// New limit in bytes.
        limit_bytes: u64,
        /// Controller-issued sequence number (see
        /// [`ToAgent::SetCpuQuota`]).
        seq: u64,
    },
    /// Run a reclamation sweep over every container on the Agent's node
    /// with safe margin δ; the Agent reports back total ψ.
    ReclaimMemory {
        /// Safe margin δ in bytes.
        delta_bytes: u64,
    },
}

impl ToAgent {
    /// Wire size used for bandwidth accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ToAgent::SetCpuQuota { .. } | ToAgent::SetMemLimit { .. } => LIMIT_UPDATE_WIRE_BYTES,
            ToAgent::ReclaimMemory { .. } => RECLAIM_RPC_WIRE_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_positive_and_distinct_by_kind() {
        let reg = ToController::Register {
            container: ContainerId::new(0),
            app: AppId::new(0),
            node: NodeId::new(0),
        };
        let stats = ToController::CpuStats {
            container: ContainerId::new(0),
            stats: CpuPeriodStats {
                quota_cores: 1.0,
                unused_runtime_us: 0.0,
                usage_us: 0.0,
                throttled: false,
            },
        };
        assert_eq!(reg.wire_bytes(), REGISTER_WIRE_BYTES);
        assert_eq!(stats.wire_bytes(), CPU_STATS_WIRE_BYTES);
        assert!(stats.wire_bytes() < reg.wire_bytes());
        let quota = ToAgent::SetCpuQuota {
            container: ContainerId::new(0),
            quota_cores: 1.0,
            seq: 1,
        };
        assert_eq!(quota.wire_bytes(), LIMIT_UPDATE_WIRE_BYTES);
        assert_eq!(
            ToAgent::ReclaimMemory { delta_bytes: 1 }.wire_bytes(),
            RECLAIM_RPC_WIRE_BYTES
        );
    }

    #[test]
    fn batched_stats_share_one_envelope_header() {
        let entry = |i: u64| CpuStatsEntry {
            container: ContainerId::new(i),
            stats: CpuPeriodStats {
                quota_cores: 1.0,
                unused_runtime_us: 0.0,
                usage_us: 50_000.0,
                throttled: false,
            },
        };
        let batch = |n: u64| ToController::CpuStatsBatch {
            node: NodeId::new(0),
            entries: (0..n).map(entry).collect(),
        };
        // A batch of one costs less than a standalone message only by the
        // node tag sharing; what matters is the asymptote: k entries cost
        // one header + k payloads, not k full envelopes.
        assert_eq!(
            batch(1).wire_bytes(),
            CPU_STATS_HEADER_BYTES + CPU_STATS_ENTRY_BYTES
        );
        assert_eq!(
            batch(32).wire_bytes(),
            CPU_STATS_HEADER_BYTES + 32 * CPU_STATS_ENTRY_BYTES
        );
        assert!(batch(32).wire_bytes() < 32 * CPU_STATS_WIRE_BYTES);
    }

    #[test]
    fn limit_ack_rides_the_update_rpc_for_free() {
        // The ack is the gRPC response of the limit update; charging it
        // separately would double-count the §VI-I overhead numbers.
        let ack = ToController::LimitAck {
            container: ContainerId::new(3),
            seq: 7,
        };
        assert_eq!(ack.wire_bytes(), 0);
    }

    #[test]
    fn oom_event_reports_the_live_limit() {
        let ev = ToController::OomEvent {
            container: ContainerId::new(1),
            shortfall_bytes: 4096,
            current_limit_bytes: 1 << 20,
        };
        assert_eq!(ev.wire_bytes(), OOM_EVENT_WIRE_BYTES);
    }
}
