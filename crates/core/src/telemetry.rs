//! Control-plane message types and wire sizes.
//!
//! Mirrors the paper's protocol (§IV-B): containers register over a
//! per-container kernel TCP socket, stream per-period CPU statistics over
//! UDP, and send OOM events over the TCP socket; the Controller invokes
//! Agents over gRPC to update limits and run reclamation sweeps.

use escra_cfs::CpuPeriodStats;
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_net::batch_wire_bytes;
use serde::{Deserialize, Serialize};

/// Envelope overhead of one UDP CPU-statistic message: IP/UDP headers
/// plus the node tag. Shared across all entries of a per-node batch.
pub const CPU_STATS_HEADER_BYTES: u64 = 40;

/// Payload bytes of one container's per-period CPU statistic: cgroup
/// tag, quota, unused runtime, throttle flag — the fields the custom
/// kernel struct actually carries.
pub const CPU_STATS_ENTRY_BYTES: u64 = 24;

/// Wire size in bytes of one UDP CPU-statistic message: one envelope
/// carrying one entry. The paper measures ~12 Mbps peak for 32 containers
/// reporting at 10 Hz, implying a few kB per message once kernel-socket
/// framing is counted; we use the message the custom kernel struct
/// actually carries.
pub const CPU_STATS_WIRE_BYTES: u64 = CPU_STATS_HEADER_BYTES + CPU_STATS_ENTRY_BYTES;

/// Wire size of a registration message (TCP, incl. handshake amortised).
pub const REGISTER_WIRE_BYTES: u64 = 128;

/// Wire size of an OOM event (TCP).
pub const OOM_EVENT_WIRE_BYTES: u64 = 96;

/// Wire size of a Controller→Agent limit-update RPC.
pub const LIMIT_UPDATE_WIRE_BYTES: u64 = 160;

/// Wire size of a reclamation request/response RPC pair.
pub const RECLAIM_RPC_WIRE_BYTES: u64 = 192;

/// One container's per-period CPU statistic inside a per-node batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuStatsEntry {
    /// Reporting container.
    pub container: ContainerId,
    /// The per-period statistics exported by its CFS hook.
    pub stats: CpuPeriodStats,
}

/// Struct-of-arrays wire form of one node's telemetry batch (§VI-I
/// columnar ingest): four parallel fixed-point integer columns plus a
/// packed throttle bitset, replacing the per-entry `f64`+`bool` struct
/// of [`CpuStatsEntry`].
///
/// Fixed-point encoding (every field exactly representable in f64, so
/// the row form [`CpuStatsColumns::entry`] reconstructs is canonical):
///
/// * `container_raw` — the raw container id (`ContainerId::as_u64`,
///   which the deployer allocates densely from 0, far below 2³²).
/// * `quota_mcores` — quota in millicores ([`escra_cfs::cpu::MCORES_PER_CORE`]).
/// * `unused_us` / `usage_us` — whole core-microseconds per period.
/// * `throttled` — one bit per entry, packed LSB-first into u64 words.
///
/// Entry order (the Agent's collection order) is significant, exactly
/// as in [`ToController::CpuStatsBatch`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuStatsColumns {
    /// Raw container ids, one per entry.
    pub container_raw: Vec<u32>,
    /// CPU quota at period end, in millicores.
    pub quota_mcores: Vec<u32>,
    /// Unused runtime at the period boundary, in core-microseconds.
    pub unused_us: Vec<u32>,
    /// CPU consumed this period, in core-microseconds.
    pub usage_us: Vec<u32>,
    /// Throttle flags, packed LSB-first: entry `i` is bit `i % 64` of
    /// word `i / 64`. Trailing bits of the last word are zero.
    pub throttled: Vec<u64>,
}

impl CpuStatsColumns {
    /// An empty column block.
    pub fn new() -> Self {
        CpuStatsColumns::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.container_raw.len()
    }

    /// True when the block holds no entries.
    pub fn is_empty(&self) -> bool {
        self.container_raw.is_empty()
    }

    /// Clears all columns, retaining capacity (the recycled-block
    /// contract of the sharded ingest path).
    pub fn clear(&mut self) {
        self.container_raw.clear();
        self.quota_mcores.clear();
        self.unused_us.clear();
        self.usage_us.clear();
        self.throttled.clear();
    }

    /// Appends one entry in raw fixed-point form.
    ///
    /// # Panics
    ///
    /// Panics if `container.as_u64()` exceeds `u32::MAX` (the deployer
    /// allocates ids densely from zero; the columnar form trades the
    /// unused upper half of the id for wire width).
    pub fn push_raw(
        &mut self,
        container: ContainerId,
        quota_mcores: u32,
        unused_us: u32,
        usage_us: u32,
        throttled: bool,
    ) {
        let raw = container.as_u64();
        assert!(
            raw <= u32::MAX as u64,
            "container id {raw} exceeds the columnar u32 id space"
        );
        let i = self.container_raw.len();
        self.container_raw.push(raw as u32);
        self.quota_mcores.push(quota_mcores);
        self.unused_us.push(unused_us);
        self.usage_us.push(usage_us);
        if i.is_multiple_of(64) {
            self.throttled.push(0);
        }
        if throttled {
            self.throttled[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Appends one entry, quantizing the row form's f64 fields
    /// ([`CpuPeriodStats::to_fixed_point`]).
    pub fn push(&mut self, container: ContainerId, stats: &CpuPeriodStats) {
        let (quota_mcores, unused_us, usage_us, throttled) = stats.to_fixed_point();
        self.push_raw(container, quota_mcores, unused_us, usage_us, throttled);
    }

    /// The throttle bit of entry `i`.
    #[inline]
    pub fn throttled_bit(&self, i: usize) -> bool {
        (self.throttled[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Entry `i` in row form — the canonical meaning of the columns:
    /// columnar ingest of a block is defined (and property-tested) to be
    /// decision-for-decision identical to batch ingest of
    /// `(0..len).map(|i| entry(i))`.
    pub fn entry(&self, i: usize) -> CpuStatsEntry {
        CpuStatsEntry {
            container: ContainerId::new(self.container_raw[i] as u64),
            stats: CpuPeriodStats::from_fixed_point(
                self.quota_mcores[i],
                self.unused_us[i],
                self.usage_us[i],
                self.throttled_bit(i),
            ),
        }
    }

    /// All entries in row form, in entry order.
    pub fn to_entries(&self) -> Vec<CpuStatsEntry> {
        (0..self.len()).map(|i| self.entry(i)).collect()
    }

    /// Builds a block by quantizing row-form entries.
    pub fn from_entries(entries: &[CpuStatsEntry]) -> Self {
        let mut cols = CpuStatsColumns::new();
        cols.reserve(entries.len());
        for e in entries {
            cols.push(e.container, &e.stats);
        }
        cols
    }

    /// Reserves capacity for `n` additional entries in every column.
    pub fn reserve(&mut self, n: usize) {
        self.container_raw.reserve(n);
        self.quota_mcores.reserve(n);
        self.unused_us.reserve(n);
        self.usage_us.reserve(n);
        self.throttled.reserve(n.div_ceil(64));
    }
}

/// Messages flowing from worker nodes to the Controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ToController {
    /// A new container announces itself (kernel syscall at deploy, §IV-B).
    Register {
        /// The new container.
        container: ContainerId,
        /// Its application (Distributed Container scope).
        app: AppId,
        /// Host node, so the Controller knows which Agent to call.
        node: NodeId,
    },
    /// End-of-period CPU statistics from the CFS hook (UDP).
    CpuStats {
        /// Reporting container.
        container: ContainerId,
        /// The per-period statistics.
        stats: CpuPeriodStats,
    },
    /// All of one node's end-of-period CPU statistics in a single UDP
    /// datagram: the node's Agent coalesces its containers' CFS-hook
    /// exports at the period boundary, so the envelope header is paid
    /// once per node instead of once per container (§VI-I).
    ///
    /// Semantically identical to sending one [`ToController::CpuStats`]
    /// per entry, in entry order — a property test holds the Controller
    /// to that.
    CpuStatsBatch {
        /// The reporting node.
        node: NodeId,
        /// Per-container statistics, in the Agent's collection order.
        entries: Vec<CpuStatsEntry>,
    },
    /// One node's end-of-period statistics as a columnar
    /// (struct-of-arrays) datagram — the §VI-I fast path. Semantically
    /// identical to [`ToController::CpuStatsBatch`] carrying
    /// `columns.to_entries()`, and charged the same wire bytes: the
    /// layout changes, the payload does not.
    CpuStatsColumns {
        /// The reporting node.
        node: NodeId,
        /// Per-container statistic columns, in collection order.
        columns: CpuStatsColumns,
    },
    /// The `try_charge()` hook trapped an imminent OOM (TCP).
    OomEvent {
        /// The container about to be killed.
        container: ContainerId,
        /// Bytes by which the charge exceeds the current limit.
        shortfall_bytes: u64,
        /// The limit the container is actually running with. Lets the
        /// Controller detect a lost grant: if its tracked limit exceeds
        /// this, the last `SetMemLimit` never arrived and must be
        /// resent.
        current_limit_bytes: u64,
    },
    /// Agent acknowledgement that a `SetMemLimit` was applied.
    ///
    /// On the real control plane this is the gRPC response of the
    /// limit-update call, not a separate message — so its wire size is
    /// zero (the response is priced into [`LIMIT_UPDATE_WIRE_BYTES`]).
    LimitAck {
        /// The container whose limit was set.
        container: ContainerId,
        /// Sequence number of the applied `SetMemLimit`.
        seq: u64,
    },
}

impl ToController {
    /// Wire size used for bandwidth accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ToController::Register { .. } => REGISTER_WIRE_BYTES,
            ToController::CpuStats { .. } => CPU_STATS_WIRE_BYTES,
            ToController::CpuStatsBatch { entries, .. } => batch_wire_bytes(
                CPU_STATS_HEADER_BYTES,
                CPU_STATS_ENTRY_BYTES,
                entries.len() as u64,
            ),
            ToController::CpuStatsColumns { columns, .. } => batch_wire_bytes(
                CPU_STATS_HEADER_BYTES,
                CPU_STATS_ENTRY_BYTES,
                columns.len() as u64,
            ),
            ToController::OomEvent { .. } => OOM_EVENT_WIRE_BYTES,
            // Already charged as part of the update RPC pair.
            ToController::LimitAck { .. } => 0,
        }
    }
}

/// Commands from the Controller to a node Agent (gRPC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ToAgent {
    /// Set a container's CPU quota (applied without restart).
    SetCpuQuota {
        /// Target container.
        container: ContainerId,
        /// New quota in cores.
        quota_cores: f64,
        /// Controller-issued sequence number; Agents discard commands
        /// whose `seq` does not advance past the last applied one, so
        /// duplicated or reordered deliveries cannot roll a limit back.
        seq: u64,
    },
    /// Set a container's memory limit (scale-up grant).
    SetMemLimit {
        /// Target container.
        container: ContainerId,
        /// New limit in bytes.
        limit_bytes: u64,
        /// Controller-issued sequence number (see
        /// [`ToAgent::SetCpuQuota`]).
        seq: u64,
    },
    /// Run a reclamation sweep over every container on the Agent's node
    /// with safe margin δ; the Agent reports back total ψ.
    ReclaimMemory {
        /// Safe margin δ in bytes.
        delta_bytes: u64,
    },
}

impl ToAgent {
    /// Wire size used for bandwidth accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ToAgent::SetCpuQuota { .. } | ToAgent::SetMemLimit { .. } => LIMIT_UPDATE_WIRE_BYTES,
            ToAgent::ReclaimMemory { .. } => RECLAIM_RPC_WIRE_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_positive_and_distinct_by_kind() {
        let reg = ToController::Register {
            container: ContainerId::new(0),
            app: AppId::new(0),
            node: NodeId::new(0),
        };
        let stats = ToController::CpuStats {
            container: ContainerId::new(0),
            stats: CpuPeriodStats {
                quota_cores: 1.0,
                unused_runtime_us: 0.0,
                usage_us: 0.0,
                throttled: false,
            },
        };
        assert_eq!(reg.wire_bytes(), REGISTER_WIRE_BYTES);
        assert_eq!(stats.wire_bytes(), CPU_STATS_WIRE_BYTES);
        assert!(stats.wire_bytes() < reg.wire_bytes());
        let quota = ToAgent::SetCpuQuota {
            container: ContainerId::new(0),
            quota_cores: 1.0,
            seq: 1,
        };
        assert_eq!(quota.wire_bytes(), LIMIT_UPDATE_WIRE_BYTES);
        assert_eq!(
            ToAgent::ReclaimMemory { delta_bytes: 1 }.wire_bytes(),
            RECLAIM_RPC_WIRE_BYTES
        );
    }

    #[test]
    fn batched_stats_share_one_envelope_header() {
        let entry = |i: u64| CpuStatsEntry {
            container: ContainerId::new(i),
            stats: CpuPeriodStats {
                quota_cores: 1.0,
                unused_runtime_us: 0.0,
                usage_us: 50_000.0,
                throttled: false,
            },
        };
        let batch = |n: u64| ToController::CpuStatsBatch {
            node: NodeId::new(0),
            entries: (0..n).map(entry).collect(),
        };
        // A batch of one costs less than a standalone message only by the
        // node tag sharing; what matters is the asymptote: k entries cost
        // one header + k payloads, not k full envelopes.
        assert_eq!(
            batch(1).wire_bytes(),
            CPU_STATS_HEADER_BYTES + CPU_STATS_ENTRY_BYTES
        );
        assert_eq!(
            batch(32).wire_bytes(),
            CPU_STATS_HEADER_BYTES + 32 * CPU_STATS_ENTRY_BYTES
        );
        assert!(batch(32).wire_bytes() < 32 * CPU_STATS_WIRE_BYTES);
    }

    #[test]
    fn limit_ack_rides_the_update_rpc_for_free() {
        // The ack is the gRPC response of the limit update; charging it
        // separately would double-count the §VI-I overhead numbers.
        let ack = ToController::LimitAck {
            container: ContainerId::new(3),
            seq: 7,
        };
        assert_eq!(ack.wire_bytes(), 0);
    }

    #[test]
    fn columnar_batch_is_charged_like_the_row_batch() {
        // The columnar form is a layout change, not a payload change:
        // its wire accounting must be indistinguishable from the row
        // batch so §VI-I overhead numbers cannot drift with the ingest
        // path chosen.
        let mut cols = CpuStatsColumns::new();
        for i in 0..32u64 {
            cols.push_raw(ContainerId::new(i), 1000, 0, 50_000, i % 3 == 0);
        }
        let msg = ToController::CpuStatsColumns {
            node: NodeId::new(0),
            columns: cols.clone(),
        };
        assert_eq!(
            msg.wire_bytes(),
            CPU_STATS_HEADER_BYTES + 32 * CPU_STATS_ENTRY_BYTES
        );
        let rows = ToController::CpuStatsBatch {
            node: NodeId::new(0),
            entries: cols.to_entries(),
        };
        assert_eq!(msg.wire_bytes(), rows.wire_bytes());
    }

    #[test]
    fn columns_round_trip_fixed_point_rows() {
        let entries: Vec<CpuStatsEntry> = (0..130u64)
            .map(|i| CpuStatsEntry {
                container: ContainerId::new(i),
                stats: CpuPeriodStats::from_fixed_point(
                    (i * 37 % 5000) as u32,
                    (i * 911 % 100_000) as u32,
                    (i * 733 % 100_000) as u32,
                    i % 5 == 0,
                ),
            })
            .collect();
        let cols = CpuStatsColumns::from_entries(&entries);
        assert_eq!(cols.len(), entries.len());
        // Bitset packing crosses two word boundaries at 130 entries.
        assert_eq!(cols.throttled.len(), 3);
        assert_eq!(cols.to_entries(), entries);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(cols.entry(i), *e);
            assert_eq!(cols.throttled_bit(i), e.stats.throttled);
        }
        let mut recycled = cols.clone();
        recycled.clear();
        assert!(recycled.is_empty());
        assert_eq!(recycled.throttled.len(), 0);
    }

    #[test]
    fn quantization_rounds_to_nearest_unit() {
        let stats = CpuPeriodStats {
            quota_cores: 1.2345678,
            unused_runtime_us: 41_999.5001,
            usage_us: 58_000.4999,
            throttled: false,
        };
        let (q, un, us, t) = stats.to_fixed_point();
        assert_eq!((q, un, us, t), (1235, 42_000, 58_000, false));
        // Out-of-range and non-finite inputs saturate instead of
        // wrapping: a hostile or corrupted report cannot alias to a
        // small value.
        let wild = CpuPeriodStats {
            quota_cores: -3.0,
            unused_runtime_us: 1e18,
            usage_us: f64::NAN,
            throttled: true,
        };
        let (q, un, us, t) = wild.to_fixed_point();
        assert_eq!((q, un, us, t), (0, u32::MAX, 0, true));
    }

    #[test]
    fn oom_event_reports_the_live_limit() {
        let ev = ToController::OomEvent {
            container: ContainerId::new(1),
            shortfall_bytes: 4096,
            current_limit_bytes: 1 << 20,
        };
        assert_eq!(ev.wire_bytes(), OOM_EVENT_WIRE_BYTES);
    }
}
