//! # escra-core
//!
//! The Escra system itself — the primary contribution of *"Escra:
//! Event-driven, Sub-second Container Resource Allocation"* (ICDCS 2022)
//! — implemented against the simulated substrates in `escra-cfs`,
//! `escra-net`, and `escra-cluster`:
//!
//! * [`config`] — the tunables Υ, γ, κ, δ, σ, window length, report
//!   period, with the paper's evaluation defaults;
//! * [`distributed_container`] — the Distributed Container abstraction:
//!   per-application aggregate CPU/memory limits enforced continuously at
//!   runtime (unlike admission-time Resource Quotas);
//! * [`allocator`] — the Resource Allocator: windowed throttle/unused
//!   statistics and the scale-up / scale-down / OOM decision rules of
//!   §IV-D;
//! * [`controller`] — the logically centralized Controller of §IV-C:
//!   registration, telemetry fan-in, decision fan-out, the 5-second
//!   proactive reclamation loop, and the reclaim-then-grant-or-kill OOM
//!   path;
//! * [`agent`] — the per-node Agent applying limit updates without
//!   restarts and running reclamation sweeps (reporting ψ);
//! * [`deployer`] — the Application Deployer with the paper's
//!   initial-limit formulas (eqs. 1–2);
//! * [`watcher`] — the Container Watcher keeping the Controller's
//!   registry in sync with runtime container creation/teardown;
//! * [`telemetry`] — control-plane message types and wire sizes for the
//!   §VI-I network-overhead accounting;
//! * [`sharded`] — the app-sharded multi-threaded Controller front-end
//!   that lifts the §VI-I single-core ingest ceiling while preserving
//!   decision-for-decision identity with the sequential path.
//!
//! Both Controller front-ends are generic over a
//! [`TraceSink`](escra_metrics::trace::TraceSink): the default
//! [`NoopSink`](escra_metrics::trace::NoopSink) compiles every
//! instrumentation site out, while a
//! [`TraceRecorder`](escra_metrics::trace::TraceRecorder) captures the
//! §VI event stream (ingest, decisions, OOM grants, reclamation,
//! shard-channel depth) for the `trace_dump` exposition.
//!
//! ## Quick start
//!
//! ```
//! use escra_core::prelude::*;
//! use escra_cluster::prelude::*;
//! use escra_simcore::time::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = EscraConfig::default();
//! let mut cluster = Cluster::new(vec![NodeSpec { cores: 16, mem_bytes: 32 << 30 }]);
//! let mut controller = Controller::new(cfg.clone());
//! let app = AppConfig {
//!     app: AppId::new(0),
//!     name: "demo".into(),
//!     global_cpu_cores: 8.0,
//!     global_mem_bytes: 2 << 30,
//!     containers: vec![
//!         ContainerSpec::new("web", AppId::new(0)),
//!         ContainerSpec::new("db", AppId::new(0)),
//!     ],
//! };
//! let (ids, actions) = deploy_app(&cfg, &app, &mut cluster, &mut controller, SimTime::ZERO)?;
//! assert_eq!(ids.len(), 2);
//! assert!(!actions.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod allocator;
pub mod columnar;
pub mod config;
pub mod controller;
pub mod deployer;
pub mod distributed_container;
pub mod sharded;
mod spsc;
pub mod telemetry;
pub mod watcher;

pub use agent::{Agent, AgentReport, ReclaimEntry};
pub use allocator::{AllocatorError, CpuDecision, OomDecision, ResourceAllocator};
pub use config::EscraConfig;
pub use controller::{Action, Controller, ControllerStats};
pub use deployer::{deploy_app, initial_cpu_limit, initial_mem_limit, AppConfig};
pub use distributed_container::DistributedContainer;
pub use sharded::{PoolSnapshot, ShardedController};
pub use telemetry::{CpuStatsColumns, CpuStatsEntry, ToAgent, ToController};
pub use watcher::ContainerWatcher;

// Trace plumbing re-exported so embedders of `Controller<S>` need not
// depend on `escra-metrics` directly.
pub use escra_metrics::trace::{NoopSink, TraceRecorder, TraceSink};

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::agent::{Agent, AgentReport, ReclaimEntry};
    pub use crate::allocator::{CpuDecision, OomDecision, ResourceAllocator};
    pub use crate::config::EscraConfig;
    pub use crate::controller::{Action, Controller};
    pub use crate::deployer::{deploy_app, AppConfig};
    pub use crate::distributed_container::DistributedContainer;
    pub use crate::telemetry::{CpuStatsEntry, ToAgent, ToController};
}
