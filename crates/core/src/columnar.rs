//! Bulk fixed-point → cores conversion kernels for the columnar ingest
//! path, plus the runtime dispatch between them.
//!
//! The only arithmetic the telemetry hot loop needs per entry is two
//! divisions: `usage_us / period_us` and `unused_us / period_us`, with
//! the numerators arriving as `u32` columns (see
//! [`crate::telemetry::CpuStatsColumns`]). This module converts whole
//! columns at once:
//!
//! - **AVX2 path** (x86_64 hosts that report the feature at runtime):
//!   four lanes per iteration via `_mm256_cvtepi32_pd`. The `u32 →
//!   f64` step uses the classic exact trick — XOR the lane with
//!   `0x8000_0000` (reinterpreting it as `v − 2³¹` in `i32`), convert
//!   exactly with the signed-epi32 instruction, then add `2³¹` back as
//!   an `f64` (exact, since every intermediate is an integer below
//!   2³² < 2⁵³). The final `_mm256_div_pd` is IEEE
//!   correctly-rounded, same as the scalar `/`.
//! - **Scalar path** (everything else, and whenever forced):
//!   `v as f64 / divisor` per element.
//!
//! Both paths therefore produce **bit-identical** results — dispatch is
//! a pure speed choice, never a behaviour choice, which is what lets
//! the decision-identity property tests hold the columnar ingest to the
//! row-by-row reference on every host.
//!
//! Dispatch honours a force-scalar override so CI can exercise the
//! fallback on SIMD-capable hosts: set the `ESCRA_FORCE_SCALAR`
//! environment variable (any value but `0`/empty) before first use, or
//! call [`set_force_scalar`] programmatically.

use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch override state: unresolved / forced scalar / automatic.
const FORCE_UNSET: u8 = 0;
const FORCE_ON: u8 = 1;
const FORCE_OFF: u8 = 2;

/// Resolved once from the environment (or programmatically), then
/// cached — the hot loop reads one relaxed atomic.
static FORCE: AtomicU8 = AtomicU8::new(FORCE_UNSET);

fn force_scalar() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        FORCE_ON => true,
        FORCE_OFF => false,
        _ => {
            let forced = match std::env::var_os("ESCRA_FORCE_SCALAR") {
                Some(v) => !v.is_empty() && v != "0",
                None => false,
            };
            FORCE.store(if forced { FORCE_ON } else { FORCE_OFF }, Ordering::Relaxed);
            forced
        }
    }
}

/// Forces (or un-forces) the scalar conversion path, overriding the
/// `ESCRA_FORCE_SCALAR` environment variable. The bench harness uses
/// this to run the scalar fallback on SIMD-capable hosts and assert it
/// is decision-for-decision identical.
pub fn set_force_scalar(force: bool) {
    FORCE.store(if force { FORCE_ON } else { FORCE_OFF }, Ordering::Relaxed);
}

/// Whether this host supports the vectorised conversion kernel at all
/// (independent of the force-scalar override).
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The conversion path the next [`u32_to_cores`] call will take:
/// `"avx2"` or `"scalar"`. Recorded into the bench JSON so regressions
/// can be attributed to the right kernel.
pub fn active_path() -> &'static str {
    if !force_scalar() && simd_supported() {
        "avx2"
    } else {
        "scalar"
    }
}

/// Reusable per-ingest column buffers: resolved slab slots plus the
/// converted statistic columns. Owned by the Controller and recycled
/// across calls so the steady-state columnar path allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColumnScratch {
    /// Slab slot per entry ([`crate::allocator::NO_SLOT`] = unknown id).
    pub slots: Vec<u32>,
    /// `usage_us / period_us` per entry.
    pub usage_cores: Vec<f64>,
    /// `unused_us / period_us` per entry.
    pub unused_cores: Vec<f64>,
}

/// Converts a `u32` column to `f64` cores (`src[i] as f64 / divisor`)
/// into `dst` (cleared first; capacity is reused). Takes the AVX2
/// kernel when the host has it and the scalar override is off; the two
/// kernels are bit-identical.
pub(crate) fn u32_to_cores(src: &[u32], divisor: f64, dst: &mut Vec<f64>) {
    dst.clear();
    dst.resize(src.len(), 0.0);
    #[cfg(target_arch = "x86_64")]
    if !force_scalar() && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 feature was just detected at runtime.
        unsafe { u32_div_avx2(src, divisor, dst) };
        return;
    }
    u32_div_scalar(src, divisor, dst);
}

fn u32_div_scalar(src: &[u32], divisor: f64, dst: &mut [f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s as f64 / divisor;
    }
}

/// Four-lane AVX2 conversion; see the module docs for why the
/// XOR/convert/re-bias sequence is exact.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn u32_div_avx2(src: &[u32], divisor: f64, dst: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let div = _mm256_set1_pd(divisor);
    let bias_int = _mm_set1_epi32(i32::MIN);
    let bias_f64 = _mm256_set1_pd(2_147_483_648.0);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY (fn contract): i + 4 <= n, and dst.len() == src.len()
        // (resized by the caller), so both unaligned accesses stay in
        // bounds.
        let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
        let shifted = _mm_xor_si128(v, bias_int);
        let f = _mm256_add_pd(_mm256_cvtepi32_pd(shifted), bias_f64);
        _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_div_pd(f, div));
        i += 4;
    }
    u32_div_scalar(&src[i..], divisor, &mut dst[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_kernel_is_plain_division() {
        let src = [0u32, 1, 7, 100_000, u32::MAX];
        let mut dst = vec![0.0; src.len()];
        u32_div_scalar(&src, 100_000.0, &mut dst);
        for (i, &s) in src.iter().enumerate() {
            assert_eq!(dst[i].to_bits(), (s as f64 / 100_000.0).to_bits());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_is_bit_identical_to_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // Awkward lengths force both the vector body and the tail; the
        // values cover both sides of the 2³¹ sign boundary.
        for n in [0usize, 1, 3, 4, 5, 8, 13, 64, 257] {
            let src: Vec<u32> = (0..n)
                .map(|i| {
                    (i as u32)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(0x8000_0000 / (i as u32 + 1))
                })
                .collect();
            for divisor in [1.0, 3.0, 100_000.0, 0.1] {
                let mut simd = vec![0.0; n];
                let mut scalar = vec![0.0; n];
                unsafe { u32_div_avx2(&src, divisor, &mut simd) };
                u32_div_scalar(&src, divisor, &mut scalar);
                for i in 0..n {
                    assert_eq!(
                        simd[i].to_bits(),
                        scalar[i].to_bits(),
                        "lane {i} of {n} diverged for divisor {divisor}"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatch_honours_the_force_scalar_override() {
        set_force_scalar(true);
        assert_eq!(active_path(), "scalar");
        let src = [42u32; 9];
        let mut dst = Vec::new();
        u32_to_cores(&src, 7.0, &mut dst);
        assert_eq!(dst.len(), 9);
        assert_eq!(dst[0].to_bits(), (42.0f64 / 7.0).to_bits());
        set_force_scalar(false);
        if simd_supported() {
            assert_eq!(active_path(), "avx2");
        } else {
            assert_eq!(active_path(), "scalar");
        }
        let mut dst2 = Vec::new();
        u32_to_cores(&src, 7.0, &mut dst2);
        assert_eq!(dst, dst2);
    }
}
