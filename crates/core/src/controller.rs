//! The Escra Controller (paper §IV-C).
//!
//! The Controller "brings all of the system components together": it
//! registers containers into the per-application pool, forwards telemetry
//! and OOM events to the Resource Allocator, carries out the Allocator's
//! decisions as Agent commands, and launches the periodic reclamation
//! loop. It makes no allocation decisions itself.
//!
//! The Controller is driven by the embedding simulation: `handle` (or
//! the allocation-free `handle_into`) for each arriving message, `tick`
//! at each time step, and `on_reclaim_report` when an Agent finishes a
//! sweep. All outputs are [`Action`] values the embedding applies (with
//! control-plane latency).

use crate::agent::ReclaimEntry;
use crate::allocator::{AllocatorError, CpuDecision, OomDecision, ResourceAllocator, NO_SLOT};
use crate::columnar::{self, ColumnScratch};
use crate::config::EscraConfig;
use crate::telemetry::{CpuStatsColumns, CpuStatsEntry, ToAgent, ToController};
use escra_cfs::CpuPeriodStats;
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_metrics::fingerprint::StateHash;
use escra_metrics::trace::{NoopSink, TraceEventKind, TraceSink};
use escra_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An effect the Controller wants carried out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Send a command to the Agent on `node`.
    Agent {
        /// Target node.
        node: NodeId,
        /// The command.
        cmd: ToAgent,
    },
    /// Let the OS OOM-kill this container (no memory could be found).
    KillContainer(ContainerId),
}

/// Lifetime counters for the overhead analysis (§VI-I) and the OOM
/// comparison (§VI-E).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Telemetry messages ingested.
    pub cpu_stats_ingested: u64,
    /// Quota updates issued.
    pub quota_updates: u64,
    /// Quota updates that were scale-ups (throttle reactions).
    pub scale_ups: u64,
    /// Quota updates that were scale-downs (slack reclaim).
    pub scale_downs: u64,
    /// Memory-limit updates issued (OOM grants).
    pub mem_grants: u64,
    /// OOM events that were absorbed (container survived).
    pub ooms_absorbed: u64,
    /// OOM events that ended in a kill.
    pub ooms_fatal: u64,
    /// Reclamation sweeps launched.
    pub reclaim_sweeps: u64,
    /// Total ψ bytes returned by sweeps.
    pub reclaimed_bytes: u64,
    /// Memory grants re-sent because no ack arrived in time.
    pub grant_retries: u64,
    /// Tracked limits re-sent because an OOM event revealed the
    /// container was running with an older (lower) limit.
    pub grant_reconciles: u64,
    /// Pending grants dropped after exhausting their retries.
    pub grants_abandoned: u64,
    /// Wire registrations rejected by the Allocator (unknown app,
    /// duplicate id). Silently swallowing these hid misconfigured
    /// deployments; now they are counted and logged in debug builds.
    pub register_errors: u64,
    /// `LimitAck`s whose seq did not match the container's pending
    /// grant (straggler acks of superseded sends, or acks of unrelated
    /// commands in the shared seq space). They never retire a grant.
    pub ack_mismatches: u64,
}

impl ControllerStats {
    /// Folds another shard's counters into this one.
    ///
    /// Every field is a lifetime *count*, so sharding the Controller
    /// (`crate::sharded`) preserves aggregates by plain summation. The
    /// one caveat is `reclaim_sweeps`: each shard runs its own reclaim
    /// schedule and sweeps the whole node set, so the merged sum counts
    /// one sweep per shard where a sequential Controller counts one
    /// (the duplicate `ReclaimMemory` commands themselves are deduped
    /// at drain time and idempotent on Agents).
    pub fn merge(&mut self, other: &ControllerStats) {
        // Full destructuring, no `..`: adding a stats field without
        // deciding how it merges must fail to compile, not silently
        // lose the new counter in `--threads` runs.
        let ControllerStats {
            cpu_stats_ingested,
            quota_updates,
            scale_ups,
            scale_downs,
            mem_grants,
            ooms_absorbed,
            ooms_fatal,
            reclaim_sweeps,
            reclaimed_bytes,
            grant_retries,
            grant_reconciles,
            grants_abandoned,
            register_errors,
            ack_mismatches,
        } = *other;
        self.cpu_stats_ingested += cpu_stats_ingested;
        self.quota_updates += quota_updates;
        self.scale_ups += scale_ups;
        self.scale_downs += scale_downs;
        self.mem_grants += mem_grants;
        self.ooms_absorbed += ooms_absorbed;
        self.ooms_fatal += ooms_fatal;
        self.reclaim_sweeps += reclaim_sweeps;
        self.reclaimed_bytes += reclaimed_bytes;
        self.grant_retries += grant_retries;
        self.grant_reconciles += grant_reconciles;
        self.grants_abandoned += grants_abandoned;
        self.register_errors += register_errors;
        self.ack_mismatches += ack_mismatches;
    }
}

/// A memory grant the Controller sent but has not yet seen acked. If the
/// `SetMemLimit` is lost, the trapped container stays frozen at its old
/// limit — so unacked grants are re-sent on a timeout rather than
/// stranding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingGrant {
    seq: u64,
    sent_at: SimTime,
    retries: u32,
}

/// The logically centralized Escra Controller.
///
/// Generic over a [`TraceSink`] so a per-decision audit trail can be
/// recorded without taxing untraced embeddings: the default
/// [`NoopSink`] has `ENABLED = false`, every instrumentation site is
/// guarded by that constant, and the compiled hot path is identical to
/// the uninstrumented one (held by the `overhead_controller --check`
/// regression gate).
///
/// `Clone` (for sinks that are themselves `Clone`, like the default
/// [`NoopSink`]) exists for the model checker, which forks the whole
/// control-plane state at every branching point.
#[derive(Debug, Clone)]
pub struct Controller<S: TraceSink = NoopSink> {
    allocator: ResourceAllocator,
    nodes: BTreeSet<NodeId>,
    next_reclaim_at: SimTime,
    /// OOMs waiting for a reclamation sweep to finish.
    pending_ooms: Vec<(ContainerId, u64)>,
    /// Monotonic sequence stamped on every outgoing limit command, so
    /// Agents can discard duplicated/reordered deliveries.
    next_seq: u64,
    /// OOM grants awaiting an Agent ack.
    pending_mem_grants: BTreeMap<ContainerId, PendingGrant>,
    stats: ControllerStats,
    sink: S,
    /// Reused per-ingest column buffers (slots + converted cores) so the
    /// steady-state columnar path allocates nothing.
    scratch: ColumnScratch,
    /// Reused collection buffer for overdue grant ids in
    /// [`Controller::tick_into`].
    due_scratch: Vec<ContainerId>,
}

impl Controller {
    /// Creates an untraced Controller (and its embedded Resource
    /// Allocator).
    pub fn new(cfg: EscraConfig) -> Self {
        Controller::with_sink(cfg, NoopSink)
    }
}

impl<S: TraceSink> Controller<S> {
    /// Creates a Controller recording its decisions into `sink`.
    pub fn with_sink(cfg: EscraConfig, sink: S) -> Self {
        let first_reclaim = SimTime::ZERO + cfg.reclaim_interval;
        Controller {
            allocator: ResourceAllocator::new(cfg),
            nodes: BTreeSet::new(),
            next_reclaim_at: first_reclaim,
            pending_ooms: Vec::new(),
            next_seq: 0,
            pending_mem_grants: BTreeMap::new(),
            stats: ControllerStats::default(),
            sink,
            scratch: ColumnScratch::default(),
            due_scratch: Vec::new(),
        }
    }

    /// Read access to the trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Swaps the trace sink, returning the old one — how a finished run
    /// extracts its recorder without tearing the Controller down.
    pub fn replace_sink(&mut self, sink: S) -> S {
        std::mem::replace(&mut self.sink, sink)
    }

    fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Builds a `SetMemLimit` for an OOM grant and records it as pending
    /// until the Agent acks it.
    fn mem_grant_action(
        &mut self,
        now: SimTime,
        node: NodeId,
        container: ContainerId,
        limit_bytes: u64,
    ) -> Action {
        let seq = self.next_seq();
        self.pending_mem_grants.insert(
            container,
            PendingGrant {
                seq,
                sent_at: now,
                retries: 0,
            },
        );
        Action::Agent {
            node,
            cmd: ToAgent::SetMemLimit {
                container,
                limit_bytes,
                seq,
            },
        }
    }

    /// Read access to the embedded allocator (pools, quotas).
    pub fn allocator(&self) -> &ResourceAllocator {
        &self.allocator
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Number of memory grants still awaiting an Agent ack.
    pub fn pending_grant_count(&self) -> usize {
        self.pending_mem_grants.len()
    }

    /// The seq of `container`'s pending (unacked) memory grant, if any.
    pub fn pending_grant_seq(&self, container: ContainerId) -> Option<u64> {
        self.pending_mem_grants.get(&container).map(|p| p.seq)
    }

    /// Number of OOM events parked behind an in-flight reclamation sweep.
    pub fn pending_oom_count(&self) -> usize {
        self.pending_ooms.len()
    }

    /// Feeds the Controller's behaviourally relevant state into a
    /// canonical state hash: allocator books, known nodes, the seq
    /// counter, the reclaim schedule, parked OOMs and pending grants.
    /// `stats` is excluded — the audit counters never influence a
    /// decision — so the model checker's visited set merges states that
    /// differ only in how they were reached.
    pub fn fingerprint_into(&self, h: &mut StateHash) {
        self.allocator.fingerprint_into(h);
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            h.write_u64(n.as_u64());
        }
        h.write_u64(self.next_seq);
        h.write_u64(self.next_reclaim_at.as_micros());
        h.write_u64(self.pending_ooms.len() as u64);
        for (c, shortfall) in &self.pending_ooms {
            h.write_u64(c.as_u64());
            h.write_u64(*shortfall);
        }
        h.write_u64(self.pending_mem_grants.len() as u64);
        for (c, p) in &self.pending_mem_grants {
            h.write_u64(c.as_u64());
            h.write_u64(p.seq);
            h.write_u64(p.sent_at.as_micros());
            h.write_u32(p.retries);
        }
    }

    /// Registers an application's global limits (sent by the Deployer
    /// before any container deploys).
    pub fn register_app(&mut self, app: AppId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        self.allocator
            .register_app(app, cpu_limit_cores, mem_limit_bytes);
    }

    /// Records that `node` exists, so reclamation sweeps include it even
    /// if no container of this Controller's registry runs there.
    ///
    /// `register_container` learns nodes implicitly; this explicit path
    /// exists for the sharded Controller ([`crate::sharded`]), which
    /// broadcasts every node to every shard so that a sweep launched by
    /// any shard covers the whole cluster — exactly like a sequential
    /// Controller's sweep does.
    pub fn note_node(&mut self, node: NodeId) {
        self.nodes.insert(node);
    }

    /// Registers a container with initial limits; returns the Agent
    /// commands that bootstrap its cgroups to the granted values.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError`] for unknown apps / duplicate ids.
    pub fn register_container(
        &mut self,
        container: ContainerId,
        app: AppId,
        node: NodeId,
        initial_cpu_cores: f64,
        initial_mem_bytes: u64,
    ) -> Result<Vec<Action>, AllocatorError> {
        self.nodes.insert(node);
        let (cpu, mem) = self.allocator.register_container(
            container,
            app,
            node,
            initial_cpu_cores,
            initial_mem_bytes,
        )?;
        let cpu_seq = self.next_seq();
        let mem_seq = self.next_seq();
        Ok(vec![
            Action::Agent {
                node,
                cmd: ToAgent::SetCpuQuota {
                    container,
                    quota_cores: cpu,
                    seq: cpu_seq,
                },
            },
            Action::Agent {
                node,
                cmd: ToAgent::SetMemLimit {
                    container,
                    limit_bytes: mem,
                    seq: mem_seq,
                },
            },
        ])
    }

    /// Deregisters a container (terminated pod), returning its resources
    /// to the application pool.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError::UnknownContainer`].
    pub fn deregister_container(&mut self, container: ContainerId) -> Result<(), AllocatorError> {
        self.pending_ooms.retain(|(c, _)| *c != container);
        self.pending_mem_grants.remove(&container);
        self.allocator.deregister_container(container)
    }

    /// Handles one inbound message and returns the actions to carry out.
    ///
    /// Thin compatibility wrapper over [`Controller::handle_into`] that
    /// allocates a fresh action vector per call. Hot loops (the per-node
    /// telemetry ingest) should hold one buffer and call `handle_into`
    /// instead.
    pub fn handle(&mut self, now: SimTime, msg: ToController) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_into(now, msg, &mut out);
        out
    }

    /// Handles one inbound message, appending the actions to carry out
    /// to `out` (the buffer is *not* cleared — the caller owns it and
    /// drains it between calls). With a warm buffer the steady-state
    /// telemetry path allocates nothing.
    ///
    /// Unknown containers are ignored (they may have deregistered while
    /// the message was in flight) — the Controller must not crash on
    /// stale telemetry.
    pub fn handle_into(&mut self, now: SimTime, msg: ToController, out: &mut Vec<Action>) {
        match msg {
            ToController::Register {
                container,
                app,
                node,
            } => {
                // Registration without explicit limits: bootstrap from the
                // pool evenly (runtime-created pods carry their own spec
                // through `register_container` instead).
                match self.register_container(container, app, node, 1.0, 256 * escra_cfs::MIB) {
                    Ok(actions) => out.extend(actions),
                    Err(err) => {
                        // A rejected wire registration means a container is
                        // running unmanaged — never swallow it silently.
                        self.stats.register_errors += 1;
                        if cfg!(debug_assertions) {
                            eprintln!(
                                "escra-controller: wire registration of {container} \
                                 (app {app}, node {node}) rejected: {err}"
                            );
                        }
                    }
                }
            }
            ToController::CpuStats { container, stats } => {
                self.ingest_cpu_stats(now, container, stats, out);
            }
            ToController::CpuStatsBatch { node, entries } => {
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::BatchIngest {
                            node: node.as_u64(),
                            entries: entries.len() as u32,
                        },
                    );
                }
                self.ingest_cpu_batch_at(now, &entries, out);
            }
            ToController::CpuStatsColumns { node, columns } => {
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::BatchIngest {
                            node: node.as_u64(),
                            entries: columns.len() as u32,
                        },
                    );
                }
                self.ingest_cpu_columns_at(now, &columns, out);
            }
            ToController::OomEvent {
                container,
                shortfall_bytes,
                current_limit_bytes,
            } => {
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::OomTrap {
                            container: container.as_u64(),
                            shortfall_bytes,
                            current_limit_bytes,
                        },
                    );
                }
                // Reconcile first: if our books say the container should
                // already be above the limit it reports, the grant that
                // raised it was lost in flight. Re-send the tracked limit
                // (no new pool allocation — the bytes are already
                // charged) instead of granting on top of stale state.
                if let (Some(tracked), Some(node)) = (
                    self.allocator.mem_limit_of(container),
                    self.allocator.node_of(container),
                ) {
                    if tracked > current_limit_bytes {
                        self.stats.grant_reconciles += 1;
                        if S::ENABLED {
                            self.sink.emit(
                                now,
                                TraceEventKind::GrantReconciled {
                                    container: container.as_u64(),
                                    tracked_limit_bytes: tracked,
                                },
                            );
                        }
                        let action = self.mem_grant_action(now, node, container, tracked);
                        out.push(action);
                        return;
                    }
                }
                match self.allocator.on_oom(container, shortfall_bytes) {
                    Ok(OomDecision::Grant { new_limit_bytes }) => {
                        self.stats.mem_grants += 1;
                        self.stats.ooms_absorbed += 1;
                        if S::ENABLED {
                            self.sink.emit(
                                now,
                                TraceEventKind::GrantIssued {
                                    container: container.as_u64(),
                                    new_limit_bytes,
                                },
                            );
                        }
                        if let Some(node) = self.allocator.node_of(container) {
                            let action =
                                self.mem_grant_action(now, node, container, new_limit_bytes);
                            out.push(action);
                        }
                    }
                    Ok(OomDecision::NeedReclaim) => {
                        if S::ENABLED {
                            self.sink.emit(
                                now,
                                TraceEventKind::GrantDenied {
                                    container: container.as_u64(),
                                },
                            );
                        }
                        self.pending_ooms.push((container, shortfall_bytes));
                        self.launch_reclaim_into(now, out);
                    }
                    Ok(OomDecision::Kill) | Err(_) => {}
                }
            }
            ToController::LimitAck { container, seq } => {
                if let Some(pending) = self.pending_mem_grants.get(&container) {
                    // Exact-seq match only. Acks and limit commands share
                    // one `next_seq` space across both resources, so an
                    // ack for a *later unrelated* command (e.g. a CPU
                    // quota update racing the grant) carries a higher
                    // seq; the old `pending.seq <= seq` rule let it
                    // retire a grant the agent never applied, silently
                    // losing it. Lower seqs are straggler acks of
                    // superseded sends; both kinds leave the pending
                    // entry armed for the retry timer and are counted.
                    if pending.seq == seq {
                        self.pending_mem_grants.remove(&container);
                        if S::ENABLED {
                            self.sink.emit(
                                now,
                                TraceEventKind::GrantAcked {
                                    container: container.as_u64(),
                                },
                            );
                        }
                    } else {
                        self.stats.ack_mismatches += 1;
                    }
                }
            }
        }
    }

    /// Ingests one node's batched per-period statistics, exactly as if
    /// each entry had arrived as its own [`ToController::CpuStats`]
    /// message in entry order (a property test holds the two paths to
    /// decision-for-decision equality). Appends actions to `out` without
    /// clearing it.
    ///
    /// Timeless compatibility wrapper over
    /// [`Controller::ingest_cpu_batch_at`]: trace events (if any) are
    /// stamped at `SimTime::ZERO`. Decisions do not depend on the stamp.
    pub fn ingest_cpu_batch(&mut self, entries: &[CpuStatsEntry], out: &mut Vec<Action>) {
        self.ingest_cpu_batch_at(SimTime::ZERO, entries, out);
    }

    /// [`Controller::ingest_cpu_batch`] with the arrival time, so the
    /// per-decision trace is stamped correctly.
    pub fn ingest_cpu_batch_at(
        &mut self,
        now: SimTime,
        entries: &[CpuStatsEntry],
        out: &mut Vec<Action>,
    ) {
        for entry in entries {
            self.ingest_cpu_stats(now, entry.container, entry.stats, out);
        }
    }

    /// Ingests one node's period statistics in columnar (struct-of-arrays)
    /// form, exactly as if [`Controller::ingest_cpu_batch`] had been fed
    /// `columns.to_entries()` — decision-for-decision, counter-for-counter
    /// and trace-event-for-trace-event identical (property-tested).
    ///
    /// Timeless compatibility wrapper over
    /// [`Controller::ingest_cpu_columns_at`].
    pub fn ingest_cpu_columns(&mut self, columns: &CpuStatsColumns, out: &mut Vec<Action>) {
        self.ingest_cpu_columns_at(SimTime::ZERO, columns, out);
    }

    /// [`Controller::ingest_cpu_columns`] with the arrival time.
    ///
    /// The hot path runs in two phases. Phase A is columnar and
    /// branch-free: slab slots are gathered straight off the allocator's
    /// direct-mapped index, and the fixed-point `usage_us`/`unused_us`
    /// columns are converted to cores in bulk (AVX2 when the host has it,
    /// a bit-identical scalar loop otherwise — see [`crate::columnar`]).
    /// Phase B walks the precomputed columns and runs the sequential
    /// decision procedure per entry; pool state is inherently sequential
    /// (each grant changes what the next entry can take), so only this
    /// phase is serial, and it touches nothing but resolved slots and
    /// ready-made `f64`s.
    pub fn ingest_cpu_columns_at(
        &mut self,
        now: SimTime,
        columns: &CpuStatsColumns,
        out: &mut Vec<Action>,
    ) {
        let period_us = self.allocator.config().report_period.as_micros() as f64;
        let mut scratch = std::mem::take(&mut self.scratch);
        // Phase A: gather slots, convert integer columns to cores.
        scratch.slots.clear();
        scratch.slots.reserve(columns.len());
        let index = self.allocator.raw_index();
        scratch.slots.extend(
            columns
                .container_raw
                .iter()
                .map(|&raw| index.get(raw as usize).copied().unwrap_or(NO_SLOT)),
        );
        columnar::u32_to_cores(&columns.usage_us, period_us, &mut scratch.usage_cores);
        columnar::u32_to_cores(&columns.unused_us, period_us, &mut scratch.unused_cores);
        // Phase B: the sequential decision loop over resolved columns.
        // Every entry counts as ingested (known or not), exactly like the
        // row paths — tallied up front to keep the loop lean. The columns
        // are walked as zipped iterators (no per-entry bounds checks) and
        // the packed throttle words as a shifting cursor: entry `i`'s bit
        // is the low bit of the current word, refilled every 64 entries —
        // the same LSB-first order [`CpuStatsColumns::throttled_bit`]
        // reads.
        self.stats.cpu_stats_ingested += columns.len() as u64;
        let mut thr_words = columns.throttled.iter();
        let mut thr_cursor = 0u64;
        let rows = scratch
            .slots
            .iter()
            .zip(&scratch.usage_cores)
            .zip(&scratch.unused_cores)
            .zip(&columns.container_raw);
        for (i, (((&slot, &usage_cores), &unused_cores), &raw)) in rows.enumerate() {
            if i % 64 == 0 {
                thr_cursor = thr_words.next().copied().unwrap_or(0);
            }
            let throttled = thr_cursor & 1 == 1;
            thr_cursor >>= 1;
            if slot == NO_SLOT {
                // Unknown reporter (deregistered with telemetry in
                // flight): counted and skipped, like the row paths.
                continue;
            }
            let decision =
                self.allocator
                    .decide_at_slot(slot, usage_cores, unused_cores, throttled);
            let (new_quota_cores, is_scale_up) = match decision {
                CpuDecision::ScaleUp { new_quota_cores } => (new_quota_cores, true),
                CpuDecision::ScaleDown { new_quota_cores } => (new_quota_cores, false),
                CpuDecision::Hold => continue,
            };
            let node = self.allocator.node_at_slot(slot);
            self.stats.quota_updates += 1;
            if is_scale_up {
                self.stats.scale_ups += 1;
            } else {
                self.stats.scale_downs += 1;
            }
            if S::ENABLED {
                let (throttle_rate, unused_mean_cores) =
                    self.allocator.decision_inputs_at_slot(slot);
                self.sink.emit(
                    now,
                    TraceEventKind::CpuDecision {
                        container: raw as u64,
                        scale_up: is_scale_up,
                        new_quota_cores,
                        throttle_rate,
                        unused_mean_cores,
                    },
                );
            }
            let seq = self.next_seq();
            out.push(Action::Agent {
                node,
                cmd: ToAgent::SetCpuQuota {
                    container: ContainerId::new(raw as u64),
                    quota_cores: new_quota_cores,
                    seq,
                },
            });
        }
        self.scratch = scratch;
    }

    /// One container's end-of-period statistic: feed the Allocator and,
    /// if it decides to move the quota, emit the Agent command.
    ///
    /// Counters are bumped only when an [`Action`] is actually emitted:
    /// a decision for a container whose node is unknown (deregistered
    /// with telemetry in flight) changes nothing on any Agent, so it
    /// must not inflate `quota_updates`/`scale_ups`/`scale_downs` — the
    /// §VI-I overhead tables derive messages-on-the-wire from them.
    fn ingest_cpu_stats(
        &mut self,
        now: SimTime,
        container: ContainerId,
        stats: CpuPeriodStats,
        out: &mut Vec<Action>,
    ) {
        self.stats.cpu_stats_ingested += 1;
        let (new_quota_cores, is_scale_up) = match self.allocator.on_cpu_stats(container, stats) {
            Ok(CpuDecision::ScaleUp { new_quota_cores }) => (new_quota_cores, true),
            Ok(CpuDecision::ScaleDown { new_quota_cores }) => (new_quota_cores, false),
            Ok(CpuDecision::Hold) | Err(_) => return,
        };
        let Some(node) = self.allocator.node_of(container) else {
            return;
        };
        self.stats.quota_updates += 1;
        if is_scale_up {
            self.stats.scale_ups += 1;
        } else {
            self.stats.scale_downs += 1;
        }
        if S::ENABLED {
            let (throttle_rate, unused_mean_cores) = self
                .allocator
                .decision_inputs(container)
                .unwrap_or((0.0, 0.0));
            self.sink.emit(
                now,
                TraceEventKind::CpuDecision {
                    container: container.as_u64(),
                    scale_up: is_scale_up,
                    new_quota_cores,
                    throttle_rate,
                    unused_mean_cores,
                },
            );
        }
        let seq = self.next_seq();
        out.push(Action::Agent {
            node,
            cmd: ToAgent::SetCpuQuota {
                container,
                quota_cores: new_quota_cores,
                seq,
            },
        });
    }

    /// Periodic work: launches the proactive reclamation loop every
    /// `reclaim_interval` (paper: 5 s) and re-sends memory grants whose
    /// ack is overdue.
    ///
    /// Compatibility wrapper over [`Controller::tick_into`]; embeddings
    /// on the hot path should hold a warm buffer and call `tick_into`
    /// directly — with no grants pending and no sweep due, that path
    /// allocates nothing.
    pub fn tick(&mut self, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        self.tick_into(now, &mut actions);
        actions
    }

    /// [`Controller::tick`] appending into a caller-owned buffer (not
    /// cleared), mirroring the [`Controller::handle_into`] contract.
    pub fn tick_into(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.retry_stale_grants_into(now, out);
        if now >= self.next_reclaim_at {
            // Advance from the *scheduled* time, not from `now`:
            // rescheduling off the observed tick made every late tick
            // push all later sweeps back, so a coarse tick grid ran
            // fewer sweeps per hour than configured. If the embedding
            // stalled for several intervals, collapse the backlog into
            // one sweep rather than bursting.
            let interval = self.allocator.config().reclaim_interval;
            while self.next_reclaim_at <= now {
                self.next_reclaim_at += interval;
            }
            self.launch_reclaim_into(now, out);
        }
    }

    /// Re-sends unacked memory grants past the retry timeout. After
    /// `grant_max_retries` unanswered re-sends the grant is abandoned:
    /// the books already carry the bytes, so if the container is still
    /// alive its next OOM event will reconcile against the tracked limit.
    fn retry_stale_grants_into(&mut self, now: SimTime, out: &mut Vec<Action>) {
        if self.pending_mem_grants.is_empty() {
            return;
        }
        let timeout = self.allocator.config().grant_retry_timeout;
        let max_retries = self.allocator.config().grant_max_retries;
        // The map cannot be mutated while iterated; collect the overdue
        // ids into a scratch buffer the Controller owns and reuses.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        due.extend(
            self.pending_mem_grants
                .iter()
                .filter(|(_, g)| now >= g.sent_at + timeout)
                .map(|(c, _)| *c),
        );
        for container in due.drain(..) {
            let Some(grant) = self.pending_mem_grants.get(&container).copied() else {
                continue;
            };
            // Re-send the *currently tracked* limit, not the one the
            // original grant carried: a reclamation sweep may have moved
            // the books since, and the books are authoritative.
            let target = (
                self.allocator.mem_limit_of(container),
                self.allocator.node_of(container),
            );
            let (Some(limit), Some(node)) = target else {
                self.pending_mem_grants.remove(&container);
                continue;
            };
            if grant.retries >= max_retries {
                self.pending_mem_grants.remove(&container);
                self.stats.grants_abandoned += 1;
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::GrantAbandoned {
                            container: container.as_u64(),
                        },
                    );
                }
                continue;
            }
            self.stats.grant_retries += 1;
            if S::ENABLED {
                self.sink.emit(
                    now,
                    TraceEventKind::GrantRetried {
                        container: container.as_u64(),
                        retries: grant.retries + 1,
                    },
                );
            }
            let seq = self.next_seq();
            self.pending_mem_grants.insert(
                container,
                PendingGrant {
                    seq,
                    sent_at: now,
                    retries: grant.retries + 1,
                },
            );
            out.push(Action::Agent {
                node,
                cmd: ToAgent::SetMemLimit {
                    container,
                    limit_bytes: limit,
                    seq,
                },
            });
        }
        self.due_scratch = due;
    }

    fn launch_reclaim_into(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.stats.reclaim_sweeps += 1;
        let delta = self.allocator.config().delta_bytes;
        if S::ENABLED {
            self.sink.emit(
                now,
                TraceEventKind::ReclaimSweep {
                    nodes: self.nodes.len() as u32,
                    delta_bytes: delta,
                },
            );
        }
        out.extend(self.nodes.iter().map(|node| Action::Agent {
            node: *node,
            cmd: ToAgent::ReclaimMemory { delta_bytes: delta },
        }));
    }

    /// Ingests an Agent's reclamation report: credits ψ back to the pools
    /// and retries any pending OOMs (grant or kill).
    pub fn on_reclaim_report(&mut self, now: SimTime, entries: &[ReclaimEntry]) -> Vec<Action> {
        for e in entries {
            if let Ok(psi) = self.allocator.apply_reclaim(e.container, e.new_limit_bytes) {
                self.stats.reclaimed_bytes += psi;
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::ReclaimApplied {
                            container: e.container.as_u64(),
                            new_limit_bytes: e.new_limit_bytes,
                            psi_bytes: psi,
                        },
                    );
                }
            }
        }
        let pending = std::mem::take(&mut self.pending_ooms);
        let mut actions = Vec::new();
        for (container, shortfall) in pending {
            match self.allocator.retry_oom_after_reclaim(container, shortfall) {
                Ok(OomDecision::Grant { new_limit_bytes }) => {
                    self.stats.mem_grants += 1;
                    self.stats.ooms_absorbed += 1;
                    if S::ENABLED {
                        self.sink.emit(
                            now,
                            TraceEventKind::GrantIssued {
                                container: container.as_u64(),
                                new_limit_bytes,
                            },
                        );
                    }
                    if let Some(node) = self.allocator.node_of(container) {
                        actions.push(self.mem_grant_action(now, node, container, new_limit_bytes));
                    }
                }
                Ok(OomDecision::Kill) => {
                    self.stats.ooms_fatal += 1;
                    if S::ENABLED {
                        self.sink.emit(
                            now,
                            TraceEventKind::OomKill {
                                container: container.as_u64(),
                            },
                        );
                    }
                    actions.push(Action::KillContainer(container));
                }
                Ok(OomDecision::NeedReclaim) | Err(_) => {
                    // Cannot happen from retry, but stay safe: kill.
                    self.stats.ooms_fatal += 1;
                    if S::ENABLED {
                        self.sink.emit(
                            now,
                            TraceEventKind::OomKill {
                                container: container.as_u64(),
                            },
                        );
                    }
                    actions.push(Action::KillContainer(container));
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_cfs::{CpuPeriodStats, MIB};

    const APP: AppId = AppId::new(0);
    const C0: ContainerId = ContainerId::new(0);
    const N0: NodeId = NodeId::new(0);

    fn controller_with_one() -> Controller {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 8.0, 1024 * MIB);
        let actions = c.register_container(C0, APP, N0, 2.0, 256 * MIB).unwrap();
        assert_eq!(actions.len(), 2);
        c
    }

    fn throttled_stats(quota: f64) -> CpuPeriodStats {
        CpuPeriodStats {
            quota_cores: quota,
            usage_us: quota * 100_000.0,
            unused_runtime_us: 0.0,
            throttled: true,
        }
    }

    #[test]
    fn telemetry_drives_quota_update_action() {
        let mut c = controller_with_one();
        let actions = c.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: C0,
                stats: throttled_stats(2.0),
            },
        );
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::Agent {
                node,
                cmd:
                    ToAgent::SetCpuQuota {
                        container,
                        quota_cores,
                        ..
                    },
            } => {
                assert_eq!(node, N0);
                assert_eq!(container, C0);
                assert!(quota_cores > 2.0);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(c.stats().quota_updates, 1);
        assert_eq!(c.stats().cpu_stats_ingested, 1);
    }

    #[test]
    fn oom_grant_action() {
        let mut c = controller_with_one();
        let actions = c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: MIB,
                current_limit_bytes: 256 * MIB,
            },
        );
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::SetMemLimit { .. },
                ..
            }
        ));
        assert_eq!(c.stats().ooms_absorbed, 1);
        assert_eq!(c.stats().ooms_fatal, 0);
        // The grant is tracked until the Agent acks it.
        assert_eq!(c.pending_grant_count(), 1);
    }

    #[test]
    fn oom_with_exhausted_pool_triggers_reclaim_then_kill() {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 2.0, 256 * MIB);
        c.register_container(C0, APP, N0, 1.0, 256 * MIB).unwrap();
        let actions = c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: 64 * MIB,
                current_limit_bytes: 256 * MIB,
            },
        );
        // Pool empty -> reclamation sweep to the (single) node.
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::ReclaimMemory { .. },
                ..
            }
        ));
        // Sweep found nothing -> kill.
        let actions = c.on_reclaim_report(SimTime::ZERO, &[]);
        assert_eq!(actions, vec![Action::KillContainer(C0)]);
        assert_eq!(c.stats().ooms_fatal, 1);
    }

    #[test]
    fn oom_survives_via_reclaim() {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 2.0, 512 * MIB);
        c.register_container(C0, APP, N0, 1.0, 256 * MIB).unwrap();
        let c1 = ContainerId::new(1);
        c.register_container(c1, APP, N0, 1.0, 256 * MIB).unwrap();
        c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: 16 * MIB,
                current_limit_bytes: 256 * MIB,
            },
        );
        // Agent reclaimed 100 MiB from c1.
        let actions = c.on_reclaim_report(
            SimTime::ZERO,
            &[ReclaimEntry {
                container: c1,
                new_limit_bytes: 156 * MIB,
                psi_bytes: 100 * MIB,
            }],
        );
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::SetMemLimit { container, .. },
                ..
            } if container == C0
        ));
        assert_eq!(c.stats().reclaimed_bytes, 100 * MIB);
        assert_eq!(c.stats().ooms_absorbed, 1);
    }

    #[test]
    fn periodic_reclaim_fires_on_interval() {
        let mut c = controller_with_one();
        assert!(c.tick(SimTime::from_secs(4)).is_empty());
        let actions = c.tick(SimTime::from_secs(5));
        assert_eq!(actions.len(), 1); // one node
        assert!(c.tick(SimTime::from_secs(6)).is_empty());
        let actions = c.tick(SimTime::from_secs(10));
        assert_eq!(actions.len(), 1);
        assert_eq!(c.stats().reclaim_sweeps, 2);
    }

    #[test]
    fn coarse_tick_grid_does_not_drift_the_reclaim_schedule() {
        // Interval is 5 s but the embedding only ticks every 3 s. Each
        // sweep fires at the first tick past its scheduled time, and the
        // schedule stays anchored at 5 s multiples: sweeps land at
        // t = 6, 12, 15, 21, 27, 30 — six sweeps in 30 s. The old
        // `next = now + interval` rescheduling drifted the anchor to the
        // tick time and lost one sweep over the same horizon.
        let mut c = controller_with_one();
        for step in 1..=10u64 {
            c.tick(SimTime::from_secs(3 * step));
        }
        assert_eq!(c.stats().reclaim_sweeps, 6);
    }

    #[test]
    fn stalled_embedding_catches_up_with_one_sweep() {
        let mut c = controller_with_one();
        // No ticks for 23 s (4 missed deadlines): one catch-up sweep,
        // and the schedule resumes at the next 5 s multiple.
        let actions = c.tick(SimTime::from_secs(23));
        assert_eq!(actions.len(), 1);
        assert_eq!(c.stats().reclaim_sweeps, 1);
        assert!(c.tick(SimTime::from_secs(24)).is_empty());
        assert_eq!(c.tick(SimTime::from_secs(25)).len(), 1);
    }

    #[test]
    fn stale_telemetry_is_ignored() {
        let mut c = controller_with_one();
        let ghost = ContainerId::new(42);
        let actions = c.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: ghost,
                stats: throttled_stats(1.0),
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn deregister_cancels_pending_oom() {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 2.0, 256 * MIB);
        c.register_container(C0, APP, N0, 1.0, 256 * MIB).unwrap();
        c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: MIB,
                current_limit_bytes: 256 * MIB,
            },
        );
        c.deregister_container(C0).unwrap();
        // Pending OOM was dropped with the container; report is a no-op.
        let actions = c.on_reclaim_report(SimTime::ZERO, &[]);
        assert!(actions.is_empty());
    }

    /// Raises one OOM grant and returns (controller, granted limit, seq).
    fn controller_with_unacked_grant() -> (Controller, u64, u64) {
        let mut c = controller_with_one();
        let actions = c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: MIB,
                current_limit_bytes: 256 * MIB,
            },
        );
        match actions[0] {
            Action::Agent {
                cmd:
                    ToAgent::SetMemLimit {
                        limit_bytes, seq, ..
                    },
                ..
            } => (c, limit_bytes, seq),
            ref other => panic!("expected a grant, got {other:?}"),
        }
    }

    #[test]
    fn limit_ack_clears_the_pending_grant() {
        let (mut c, _, seq) = controller_with_unacked_grant();
        c.handle(
            SimTime::from_millis(1),
            ToController::LimitAck { container: C0, seq },
        );
        assert_eq!(c.pending_grant_count(), 0);
        // No ack, no retry traffic.
        assert!(c.tick(SimTime::from_secs(1)).is_empty());
        assert_eq!(c.stats().grant_retries, 0);
    }

    #[test]
    fn unacked_grant_is_resent_after_the_timeout() {
        let (mut c, granted, seq) = controller_with_unacked_grant();
        // Before the timeout: silence.
        assert!(c.tick(SimTime::from_millis(400)).is_empty());
        // After: the tracked limit goes out again under a fresh seq.
        let actions = c.tick(SimTime::from_millis(600));
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::Agent {
                cmd:
                    ToAgent::SetMemLimit {
                        container,
                        limit_bytes,
                        seq: retry_seq,
                    },
                ..
            } => {
                assert_eq!(container, C0);
                assert_eq!(limit_bytes, granted);
                assert!(retry_seq > seq, "retry must carry a newer seq");
            }
            ref other => panic!("expected a re-sent grant, got {other:?}"),
        }
        assert_eq!(c.stats().grant_retries, 1);
        // A late ack for the *old* seq must not clear the newer retry...
        c.handle(
            SimTime::from_millis(700),
            ToController::LimitAck { container: C0, seq },
        );
        assert_eq!(c.pending_grant_count(), 1);
    }

    #[test]
    fn grant_is_abandoned_after_max_retries() {
        let (mut c, _, _) = controller_with_unacked_grant();
        let max = c.allocator().config().grant_max_retries;
        let mut retries_seen = 0;
        for step in 1..20u64 {
            // Tick on a grid coarser than the timeout so each tick is
            // eligible to retry; never ack.
            let actions = c.tick(SimTime::from_millis(600 * step));
            retries_seen += actions
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        Action::Agent {
                            cmd: ToAgent::SetMemLimit { .. },
                            ..
                        }
                    )
                })
                .count() as u32;
        }
        assert_eq!(retries_seen, max);
        assert_eq!(c.pending_grant_count(), 0);
        assert_eq!(c.stats().grants_abandoned, 1);
    }

    #[test]
    fn ack_for_the_retry_seq_clears_the_grant_but_a_straggler_does_not() {
        // Regression for the retry/ack seq interaction: the retry must
        // carry a *fresh* seq in the pending-grant table, so an ack for
        // the original (possibly lost) send cannot clear the retry, while
        // the ack for the retry itself does.
        let (mut c, _granted, first_seq) = controller_with_unacked_grant();
        let actions = c.tick(SimTime::from_millis(600));
        let retry_seq = match actions[0] {
            Action::Agent {
                cmd: ToAgent::SetMemLimit { seq, .. },
                ..
            } => seq,
            ref other => panic!("expected a re-sent grant, got {other:?}"),
        };
        assert!(retry_seq > first_seq);
        // Straggler ack for the original send: the retry stays pending.
        c.handle(
            SimTime::from_millis(700),
            ToController::LimitAck {
                container: C0,
                seq: first_seq,
            },
        );
        assert_eq!(c.pending_grant_count(), 1);
        // Ack carrying the retry's seq: cleared, and no more retry
        // traffic on later ticks (only the periodic reclaim sweep).
        c.handle(
            SimTime::from_millis(800),
            ToController::LimitAck {
                container: C0,
                seq: retry_seq,
            },
        );
        assert_eq!(c.pending_grant_count(), 0);
        let later = c.tick(SimTime::from_secs(2));
        assert!(later.iter().all(|a| !matches!(
            a,
            Action::Agent {
                cmd: ToAgent::SetMemLimit { .. },
                ..
            }
        )));
        assert_eq!(c.stats().grant_retries, 1);
    }

    /// Regression (found by the `escra-mc` model checker): CPU quota
    /// commands and memory grants share one `next_seq` space, and the
    /// agent acks every limit-update RPC. Under the old
    /// `pending.seq <= seq` rule, the ack of a *CPU* command issued
    /// after the grant carried a higher seq and retired the unapplied
    /// memory grant — the container stayed frozen at its old limit and
    /// no retry ever fired. Acks must match the pending grant's exact
    /// seq; everything else is counted as a mismatch.
    #[test]
    fn ack_of_a_later_unrelated_command_does_not_retire_the_grant() {
        let (mut c, _granted, grant_seq) = controller_with_unacked_grant();
        // A throttled period scales the quota up: the SetCpuQuota takes
        // the next seq in the shared space.
        let actions = c.handle(
            SimTime::from_millis(10),
            ToController::CpuStats {
                container: C0,
                stats: throttled_stats(1.0),
            },
        );
        let cpu_seq = match actions[..] {
            [Action::Agent {
                cmd: ToAgent::SetCpuQuota { seq, .. },
                ..
            }] => seq,
            ref other => panic!("expected a quota scale-up, got {other:?}"),
        };
        assert!(cpu_seq > grant_seq, "shared seq space must advance");
        // The agent applies the quota and acks it. Pre-fix this cleared
        // the still-unapplied memory grant.
        c.handle(
            SimTime::from_millis(20),
            ToController::LimitAck {
                container: C0,
                seq: cpu_seq,
            },
        );
        assert_eq!(
            c.pending_grant_count(),
            1,
            "a CPU-side ack must not retire the pending memory grant"
        );
        assert_eq!(c.stats().ack_mismatches, 1);
        // The grant is still armed: the retry timer re-sends it.
        let retries = c.tick(SimTime::from_millis(600));
        let retry_seq = retries
            .iter()
            .find_map(|a| match a {
                Action::Agent {
                    cmd: ToAgent::SetMemLimit { seq, .. },
                    ..
                } => Some(*seq),
                _ => None,
            })
            .expect("the unacked grant must be re-sent");
        // The matching ack still clears it.
        c.handle(
            SimTime::from_millis(700),
            ToController::LimitAck {
                container: C0,
                seq: retry_seq,
            },
        );
        assert_eq!(c.pending_grant_count(), 0);
    }

    #[test]
    fn rejected_wire_registration_is_counted() {
        // App was never registered: the old path swallowed the error via
        // unwrap_or_default() and the container ran unmanaged, invisibly.
        let mut c = Controller::new(EscraConfig::default());
        let actions = c.handle(
            SimTime::ZERO,
            ToController::Register {
                container: C0,
                app: APP,
                node: N0,
            },
        );
        assert!(actions.is_empty());
        assert_eq!(c.stats().register_errors, 1);
        // A duplicate id is rejected and counted too.
        c.register_app(APP, 8.0, 1024 * MIB);
        c.register_container(C0, APP, N0, 1.0, 256 * MIB).unwrap();
        c.handle(
            SimTime::ZERO,
            ToController::Register {
                container: C0,
                app: APP,
                node: N0,
            },
        );
        assert_eq!(c.stats().register_errors, 2);
        // A well-formed wire registration still bootstraps cgroups.
        let actions = c.handle(
            SimTime::ZERO,
            ToController::Register {
                container: ContainerId::new(1),
                app: APP,
                node: N0,
            },
        );
        assert_eq!(actions.len(), 2);
        assert_eq!(c.stats().register_errors, 2);
    }

    #[test]
    fn quota_counters_match_emitted_actions() {
        // The §VI-I tables derive wire messages from these counters, so
        // they must count emitted Actions, not Allocator decisions.
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 8.0, 1024 * MIB);
        for i in 0..4u64 {
            c.register_container(ContainerId::new(i), APP, N0, 1.0, 64 * MIB)
                .unwrap();
        }
        let mut emitted = 0u64;
        for round in 0..50u64 {
            for i in 0..4u64 {
                let quota = c.allocator().quota_of(ContainerId::new(i)).unwrap();
                let stats = if (round + i) % 3 == 0 {
                    throttled_stats(quota)
                } else {
                    CpuPeriodStats {
                        quota_cores: quota,
                        usage_us: quota * 10_000.0,
                        unused_runtime_us: quota * 90_000.0,
                        throttled: false,
                    }
                };
                emitted += c
                    .handle(
                        SimTime::from_millis(round * 100),
                        ToController::CpuStats {
                            container: ContainerId::new(i),
                            stats,
                        },
                    )
                    .iter()
                    .filter(|a| {
                        matches!(
                            a,
                            Action::Agent {
                                cmd: ToAgent::SetCpuQuota { .. },
                                ..
                            }
                        )
                    })
                    .count() as u64;
            }
        }
        let s = c.stats();
        assert!(emitted > 0, "workload must trigger some quota updates");
        assert_eq!(s.quota_updates, emitted);
        assert_eq!(s.scale_ups + s.scale_downs, s.quota_updates);
    }

    #[test]
    fn batched_ingest_matches_per_entry_ingest() {
        // Smoke-level check of the batch/single equivalence (the property
        // test in tests/invariants_prop.rs drives this much harder).
        let mk = || {
            let mut c = Controller::new(EscraConfig::default());
            c.register_app(APP, 8.0, 1024 * MIB);
            for i in 0..3u64 {
                c.register_container(ContainerId::new(i), APP, N0, 1.0, 64 * MIB)
                    .unwrap();
            }
            c
        };
        let (mut single, mut batched) = (mk(), mk());
        for round in 0..20u64 {
            let entries: Vec<CpuStatsEntry> = (0..3u64)
                .map(|i| CpuStatsEntry {
                    container: ContainerId::new(i),
                    stats: throttled_stats(
                        single.allocator().quota_of(ContainerId::new(i)).unwrap(),
                    ),
                })
                .collect();
            let now = SimTime::from_millis(round * 100);
            let mut a = Vec::new();
            for e in &entries {
                single.handle_into(
                    now,
                    ToController::CpuStats {
                        container: e.container,
                        stats: e.stats,
                    },
                    &mut a,
                );
            }
            let b = single_batch_actions(&mut batched, now, entries);
            assert_eq!(a, b, "round {round}");
        }
        assert_eq!(single.stats(), batched.stats());
    }

    fn single_batch_actions(
        c: &mut Controller,
        now: SimTime,
        entries: Vec<CpuStatsEntry>,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        c.handle_into(
            now,
            ToController::CpuStatsBatch { node: N0, entries },
            &mut out,
        );
        out
    }

    #[test]
    fn handle_into_appends_without_clearing() {
        let mut c = controller_with_one();
        let mut out = vec![Action::KillContainer(ContainerId::new(99))];
        c.handle_into(
            SimTime::ZERO,
            ToController::CpuStats {
                container: C0,
                stats: throttled_stats(2.0),
            },
            &mut out,
        );
        assert_eq!(out.len(), 2, "prior contents must be preserved");
        assert!(matches!(out[0], Action::KillContainer(_)));
    }

    #[test]
    fn oom_with_stale_limit_reconciles_instead_of_regranting() {
        let mut c = controller_with_one();
        let tracked = c.allocator().mem_limit_of(C0).unwrap();
        // The container reports a limit *below* the books: the grant that
        // raised it was lost. The Controller re-sends the tracked limit
        // without touching the pool.
        let actions = c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: MIB,
                current_limit_bytes: tracked / 2,
            },
        );
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::Agent {
                cmd: ToAgent::SetMemLimit { limit_bytes, .. },
                ..
            } => assert_eq!(limit_bytes, tracked),
            ref other => panic!("expected reconciling SetMemLimit, got {other:?}"),
        }
        assert_eq!(c.stats().grant_reconciles, 1);
        assert_eq!(c.stats().mem_grants, 0, "no new pool allocation");
        assert_eq!(c.allocator().mem_limit_of(C0).unwrap(), tracked);
    }
}
