//! The Escra Controller (paper §IV-C).
//!
//! The Controller "brings all of the system components together": it
//! registers containers into the per-application pool, forwards telemetry
//! and OOM events to the Resource Allocator, carries out the Allocator's
//! decisions as Agent commands, and launches the periodic reclamation
//! loop. It makes no allocation decisions itself.
//!
//! The Controller is driven by the embedding simulation: `handle` for
//! each arriving message, `tick` at each time step, and
//! `on_reclaim_report` when an Agent finishes a sweep. All outputs are
//! [`Action`] values the embedding applies (with control-plane latency).

use crate::agent::ReclaimEntry;
use crate::allocator::{AllocatorError, CpuDecision, OomDecision, ResourceAllocator};
use crate::config::EscraConfig;
use crate::telemetry::{ToAgent, ToController};
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An effect the Controller wants carried out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Send a command to the Agent on `node`.
    Agent {
        /// Target node.
        node: NodeId,
        /// The command.
        cmd: ToAgent,
    },
    /// Let the OS OOM-kill this container (no memory could be found).
    KillContainer(ContainerId),
}

/// Lifetime counters for the overhead analysis (§VI-I) and the OOM
/// comparison (§VI-E).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Telemetry messages ingested.
    pub cpu_stats_ingested: u64,
    /// Quota updates issued.
    pub quota_updates: u64,
    /// Quota updates that were scale-ups (throttle reactions).
    pub scale_ups: u64,
    /// Quota updates that were scale-downs (slack reclaim).
    pub scale_downs: u64,
    /// Memory-limit updates issued (OOM grants).
    pub mem_grants: u64,
    /// OOM events that were absorbed (container survived).
    pub ooms_absorbed: u64,
    /// OOM events that ended in a kill.
    pub ooms_fatal: u64,
    /// Reclamation sweeps launched.
    pub reclaim_sweeps: u64,
    /// Total ψ bytes returned by sweeps.
    pub reclaimed_bytes: u64,
}

/// The logically centralized Escra Controller.
#[derive(Debug)]
pub struct Controller {
    allocator: ResourceAllocator,
    nodes: BTreeSet<NodeId>,
    next_reclaim_at: SimTime,
    /// OOMs waiting for a reclamation sweep to finish.
    pending_ooms: Vec<(ContainerId, u64)>,
    stats: ControllerStats,
}

impl Controller {
    /// Creates a Controller (and its embedded Resource Allocator).
    pub fn new(cfg: EscraConfig) -> Self {
        let first_reclaim = SimTime::ZERO + cfg.reclaim_interval;
        Controller {
            allocator: ResourceAllocator::new(cfg),
            nodes: BTreeSet::new(),
            next_reclaim_at: first_reclaim,
            pending_ooms: Vec::new(),
            stats: ControllerStats::default(),
        }
    }

    /// Read access to the embedded allocator (pools, quotas).
    pub fn allocator(&self) -> &ResourceAllocator {
        &self.allocator
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Registers an application's global limits (sent by the Deployer
    /// before any container deploys).
    pub fn register_app(&mut self, app: AppId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        self.allocator.register_app(app, cpu_limit_cores, mem_limit_bytes);
    }

    /// Registers a container with initial limits; returns the Agent
    /// commands that bootstrap its cgroups to the granted values.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError`] for unknown apps / duplicate ids.
    pub fn register_container(
        &mut self,
        container: ContainerId,
        app: AppId,
        node: NodeId,
        initial_cpu_cores: f64,
        initial_mem_bytes: u64,
    ) -> Result<Vec<Action>, AllocatorError> {
        self.nodes.insert(node);
        let (cpu, mem) =
            self.allocator
                .register_container(container, app, node, initial_cpu_cores, initial_mem_bytes)?;
        Ok(vec![
            Action::Agent {
                node,
                cmd: ToAgent::SetCpuQuota {
                    container,
                    quota_cores: cpu,
                },
            },
            Action::Agent {
                node,
                cmd: ToAgent::SetMemLimit {
                    container,
                    limit_bytes: mem,
                },
            },
        ])
    }

    /// Deregisters a container (terminated pod), returning its resources
    /// to the application pool.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError::UnknownContainer`].
    pub fn deregister_container(&mut self, container: ContainerId) -> Result<(), AllocatorError> {
        self.pending_ooms.retain(|(c, _)| *c != container);
        self.allocator.deregister_container(container)
    }

    /// Handles one inbound message and returns the actions to carry out.
    ///
    /// Unknown containers are ignored (they may have deregistered while
    /// the message was in flight) — the Controller must not crash on
    /// stale telemetry.
    pub fn handle(&mut self, _now: SimTime, msg: ToController) -> Vec<Action> {
        match msg {
            ToController::Register {
                container,
                app,
                node,
            } => {
                // Registration without explicit limits: bootstrap from the
                // pool evenly (runtime-created pods carry their own spec
                // through `register_container` instead).
                self.register_container(container, app, node, 1.0, 256 * escra_cfs::MIB)
                    .unwrap_or_default()
            }
            ToController::CpuStats { container, stats } => {
                self.stats.cpu_stats_ingested += 1;
                match self.allocator.on_cpu_stats(container, stats) {
                    Ok(decision @ (CpuDecision::ScaleUp { .. } | CpuDecision::ScaleDown { .. })) => {
                        let new_quota_cores = match decision {
                            CpuDecision::ScaleUp { new_quota_cores } => {
                                self.stats.scale_ups += 1;
                                new_quota_cores
                            }
                            CpuDecision::ScaleDown { new_quota_cores } => {
                                self.stats.scale_downs += 1;
                                new_quota_cores
                            }
                            CpuDecision::Hold => unreachable!(),
                        };
                        self.stats.quota_updates += 1;
                        match self.allocator.node_of(container) {
                            Some(node) => vec![Action::Agent {
                                node,
                                cmd: ToAgent::SetCpuQuota {
                                    container,
                                    quota_cores: new_quota_cores,
                                },
                            }],
                            None => Vec::new(),
                        }
                    }
                    Ok(CpuDecision::Hold) | Err(_) => Vec::new(),
                }
            }
            ToController::OomEvent {
                container,
                shortfall_bytes,
            } => match self.allocator.on_oom(container, shortfall_bytes) {
                Ok(OomDecision::Grant { new_limit_bytes }) => {
                    self.stats.mem_grants += 1;
                    self.stats.ooms_absorbed += 1;
                    match self.allocator.node_of(container) {
                        Some(node) => vec![Action::Agent {
                            node,
                            cmd: ToAgent::SetMemLimit {
                                container,
                                limit_bytes: new_limit_bytes,
                            },
                        }],
                        None => Vec::new(),
                    }
                }
                Ok(OomDecision::NeedReclaim) => {
                    self.pending_ooms.push((container, shortfall_bytes));
                    self.launch_reclaim()
                }
                Ok(OomDecision::Kill) | Err(_) => Vec::new(),
            },
        }
    }

    /// Periodic work: launches the proactive reclamation loop every
    /// `reclaim_interval` (paper: 5 s).
    pub fn tick(&mut self, now: SimTime) -> Vec<Action> {
        if now >= self.next_reclaim_at {
            self.next_reclaim_at = now + self.allocator.config().reclaim_interval;
            self.launch_reclaim()
        } else {
            Vec::new()
        }
    }

    fn launch_reclaim(&mut self) -> Vec<Action> {
        self.stats.reclaim_sweeps += 1;
        let delta = self.allocator.config().delta_bytes;
        self.nodes
            .iter()
            .map(|node| Action::Agent {
                node: *node,
                cmd: ToAgent::ReclaimMemory { delta_bytes: delta },
            })
            .collect()
    }

    /// Ingests an Agent's reclamation report: credits ψ back to the pools
    /// and retries any pending OOMs (grant or kill).
    pub fn on_reclaim_report(
        &mut self,
        _now: SimTime,
        entries: &[ReclaimEntry],
    ) -> Vec<Action> {
        for e in entries {
            if let Ok(psi) = self.allocator.apply_reclaim(e.container, e.new_limit_bytes) {
                self.stats.reclaimed_bytes += psi;
            }
        }
        let pending = std::mem::take(&mut self.pending_ooms);
        let mut actions = Vec::new();
        for (container, shortfall) in pending {
            match self.allocator.retry_oom_after_reclaim(container, shortfall) {
                Ok(OomDecision::Grant { new_limit_bytes }) => {
                    self.stats.mem_grants += 1;
                    self.stats.ooms_absorbed += 1;
                    if let Some(node) = self.allocator.node_of(container) {
                        actions.push(Action::Agent {
                            node,
                            cmd: ToAgent::SetMemLimit {
                                container,
                                limit_bytes: new_limit_bytes,
                            },
                        });
                    }
                }
                Ok(OomDecision::Kill) => {
                    self.stats.ooms_fatal += 1;
                    actions.push(Action::KillContainer(container));
                }
                Ok(OomDecision::NeedReclaim) | Err(_) => {
                    // Cannot happen from retry, but stay safe: kill.
                    self.stats.ooms_fatal += 1;
                    actions.push(Action::KillContainer(container));
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_cfs::{CpuPeriodStats, MIB};

    const APP: AppId = AppId::new(0);
    const C0: ContainerId = ContainerId::new(0);
    const N0: NodeId = NodeId::new(0);

    fn controller_with_one() -> Controller {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 8.0, 1024 * MIB);
        let actions = c.register_container(C0, APP, N0, 2.0, 256 * MIB).unwrap();
        assert_eq!(actions.len(), 2);
        c
    }

    fn throttled_stats(quota: f64) -> CpuPeriodStats {
        CpuPeriodStats {
            quota_cores: quota,
            usage_us: quota * 100_000.0,
            unused_runtime_us: 0.0,
            throttled: true,
        }
    }

    #[test]
    fn telemetry_drives_quota_update_action() {
        let mut c = controller_with_one();
        let actions = c.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: C0,
                stats: throttled_stats(2.0),
            },
        );
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::Agent {
                node,
                cmd: ToAgent::SetCpuQuota { container, quota_cores },
            } => {
                assert_eq!(node, N0);
                assert_eq!(container, C0);
                assert!(quota_cores > 2.0);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(c.stats().quota_updates, 1);
        assert_eq!(c.stats().cpu_stats_ingested, 1);
    }

    #[test]
    fn oom_grant_action() {
        let mut c = controller_with_one();
        let actions = c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: MIB,
            },
        );
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::SetMemLimit { .. },
                ..
            }
        ));
        assert_eq!(c.stats().ooms_absorbed, 1);
        assert_eq!(c.stats().ooms_fatal, 0);
    }

    #[test]
    fn oom_with_exhausted_pool_triggers_reclaim_then_kill() {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 2.0, 256 * MIB);
        c.register_container(C0, APP, N0, 1.0, 256 * MIB).unwrap();
        let actions = c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: 64 * MIB,
            },
        );
        // Pool empty -> reclamation sweep to the (single) node.
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::ReclaimMemory { .. },
                ..
            }
        ));
        // Sweep found nothing -> kill.
        let actions = c.on_reclaim_report(SimTime::ZERO, &[]);
        assert_eq!(actions, vec![Action::KillContainer(C0)]);
        assert_eq!(c.stats().ooms_fatal, 1);
    }

    #[test]
    fn oom_survives_via_reclaim() {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 2.0, 512 * MIB);
        c.register_container(C0, APP, N0, 1.0, 256 * MIB).unwrap();
        let c1 = ContainerId::new(1);
        c.register_container(c1, APP, N0, 1.0, 256 * MIB).unwrap();
        c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: 16 * MIB,
            },
        );
        // Agent reclaimed 100 MiB from c1.
        let actions = c.on_reclaim_report(
            SimTime::ZERO,
            &[ReclaimEntry {
                container: c1,
                new_limit_bytes: 156 * MIB,
                psi_bytes: 100 * MIB,
            }],
        );
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::SetMemLimit { container, .. },
                ..
            } if container == C0
        ));
        assert_eq!(c.stats().reclaimed_bytes, 100 * MIB);
        assert_eq!(c.stats().ooms_absorbed, 1);
    }

    #[test]
    fn periodic_reclaim_fires_on_interval() {
        let mut c = controller_with_one();
        assert!(c.tick(SimTime::from_secs(4)).is_empty());
        let actions = c.tick(SimTime::from_secs(5));
        assert_eq!(actions.len(), 1); // one node
        assert!(c.tick(SimTime::from_secs(6)).is_empty());
        let actions = c.tick(SimTime::from_secs(10));
        assert_eq!(actions.len(), 1);
        assert_eq!(c.stats().reclaim_sweeps, 2);
    }

    #[test]
    fn stale_telemetry_is_ignored() {
        let mut c = controller_with_one();
        let ghost = ContainerId::new(42);
        let actions = c.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: ghost,
                stats: throttled_stats(1.0),
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn deregister_cancels_pending_oom() {
        let mut c = Controller::new(EscraConfig::default());
        c.register_app(APP, 2.0, 256 * MIB);
        c.register_container(C0, APP, N0, 1.0, 256 * MIB).unwrap();
        c.handle(
            SimTime::ZERO,
            ToController::OomEvent {
                container: C0,
                shortfall_bytes: MIB,
            },
        );
        c.deregister_container(C0).unwrap();
        // Pending OOM was dropped with the container; report is a no-op.
        let actions = c.on_reclaim_report(SimTime::ZERO, &[]);
        assert!(actions.is_empty());
    }
}
