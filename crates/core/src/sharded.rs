//! App-sharded, multi-threaded Controller (§VI-I scalability).
//!
//! The paper's Controller is *logically* centralized; PR 2 made its
//! telemetry ingest batched and allocation-free, but it still ran on one
//! core. [`ShardedController`] removes that ceiling: N worker threads,
//! each owning an independent [`Controller`] (and therefore its own slab
//! allocator), fed over lock-free SPSC ring buffers carrying recycled
//! batch buffers — row batches or columnar blocks — so no per-batch
//! allocation crosses the shard boundary in steady state.
//!
//! ## Routing rule: by application id
//!
//! A container is routed to shard `app.as_u64() % n_shards`. All
//! Distributed Container state — the per-app CPU/memory pools, sibling
//! membership, OOM grant arithmetic — is scoped to one application, so
//! keeping an application's containers on one shard preserves
//! decision-for-decision identity with a sequential Controller: each
//! shard sees exactly the subsequence of messages its apps would have
//! seen, in the same order, against exactly the same pool state. Any
//! other partition (by container, by node) would split an application's
//! pool across threads and change grant/scale decisions.
//!
//! Two things are *not* app-scoped and need care:
//!
//! * **Node knowledge.** A sequential Controller's reclamation sweep
//!   covers every node it has ever seen. Every registered node is
//!   therefore broadcast to every shard ([`Controller::note_node`]), so
//!   a sweep launched by any one shard (e.g. for an OOM on its app)
//!   still covers the whole cluster. When all shards launch their
//!   periodic sweep on the same schedule, the duplicate
//!   [`ToAgent::ReclaimMemory`] commands are deduplicated per drain —
//!   they are idempotent on Agents, but charging them to the wire N
//!   times would distort the §VI-I overhead numbers.
//! * **Command sequence numbers.** Each shard stamps its own monotonic
//!   sequence. Agents filter staleness *per container*, and all of a
//!   container's commands come from its one home shard in emission
//!   order, so the per-container guarantee is unchanged; only the
//!   global numbering differs from a sequential Controller (the
//!   identity property test canonicalises seqs to per-container ranks).
//!
//! ## Ring + mutex architecture
//!
//! Each shard owns a [`SpscRing`] work ring (router is the sole
//! producer), two recycle rings returning emptied batch buffers to the
//! router, and a `Mutex<ShardCore>` holding its [`Controller`], its
//! pending action buffer, and its ingest-busy clock. The invariant tying
//! them together: **work is popped only while holding the core mutex**,
//! and everything popped is applied before the mutex is released.
//! Whoever acquires a shard's core and finds its ring empty therefore
//! sees fully up-to-date state. That one invariant buys three things:
//!
//! * **Inline control operations.** Registration, queries, drains and
//!   sink extraction no longer need request/reply channels: the router
//!   locks the core, drains the ring itself (preserving FIFO order), and
//!   operates on the books directly.
//! * **Cross-shard work stealing.** An idle worker may `try_lock` a
//!   sibling's core and drain *its* ring: per-shard FIFO order and
//!   state-under-lock make the result identical to the owner doing it,
//!   so a skewed `app % N` distribution no longer leaves threads idle
//!   while one shard backs up. Busy time is attributed to the shard
//!   whose Controller ran, not the thread that ran it.
//! * **Backpressure without blocking channels.** If a work ring fills,
//!   the router flushes that shard on its own thread and retries.
//!
//! ## Determinism
//!
//! The router (the caller's thread) is the only producer into each
//! shard's work ring, rings are FIFO, and every pop happens under the
//! shard's core mutex with the popped message applied before release —
//! so each shard's action stream is a deterministic function of the
//! routed message sequence, independent of thread scheduling and of
//! *which* thread (owner, stealer, router) did the processing.
//! [`ShardedController::drain_actions_into`] concatenates the shard
//! buffers in shard order, making the drained stream reproducible
//! run-to-run as well.

use crate::agent::ReclaimEntry;
use crate::allocator::AllocatorError;
use crate::config::EscraConfig;
use crate::controller::{Action, Controller, ControllerStats};
use crate::spsc::SpscRing;
use crate::telemetry::{CpuStatsColumns, CpuStatsEntry, ToAgent, ToController};
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_metrics::trace::{NoopSink, TraceEventKind, TraceSink};
use escra_simcore::time::SimTime;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sentinel for "container not seen by the router yet".
const NO_SHARD: u32 = u32::MAX;

/// Work-ring depth: enough to pipeline a burst of per-node batches
/// without unbounded queue growth (overflow flushes on the router).
const WORK_RING_DEPTH: usize = 256;

/// Recycle-ring depth for emptied batch buffers (row and columnar).
const RECYCLE_DEPTH: usize = 8;

/// How long an idle worker parks between scans of the work rings. A
/// router push unparks the shard's owner immediately for control
/// traffic (wire messages, ticks, reclaim reports) and whenever the
/// ring is filling; bulk telemetry below [`WAKE_DEPTH`] is left for the
/// next scan instead — an inline router drain usually gets there first,
/// and skipping the wake keeps futex churn off the ingest hot path. So
/// this bounds the pickup latency of lazily-woken telemetry and of
/// *stolen* work, both far inside the 100 ms reporting period. It is
/// deliberately coarse: a fleet of workers re-scanning every few
/// microseconds perforates the very ingest runs (and, on small hosts,
/// the router's inline drains) it is trying to help with.
const IDLE_PARK: Duration = Duration::from_millis(2);

/// Ring depth at which a telemetry push wakes the shard's owner even
/// though telemetry is normally drained lazily (see [`IDLE_PARK`]).
const WAKE_DEPTH: usize = WORK_RING_DEPTH / 4;

/// Ring depth at which the *router* helps out: after pushing telemetry
/// it try-drains the shard inline while the freshly split blocks are
/// still warm in cache. A handful of blocks per drain session keeps the
/// per-session clock reads amortised; the try-lock race keeps true
/// parallelism intact on hosts where the shard's owner got there first.
const ASSIST_DEPTH: usize = 1;

/// Entries a shard's split scratch may accumulate before the router
/// ships it as one [`ShardWork::Columns`] block. Per-node telemetry
/// blocks shrink by a factor of N when split across N shards; shipping
/// every sub-block separately would charge each one the fixed
/// pop/clear/recycle/Phase-A cost. Coalescing consecutive sub-blocks
/// (same timestamp, telemetry-only — any other message for the shard
/// flushes first, preserving per-shard FIFO order and therefore
/// decision identity) amortises that cost over a few hundred entries.
const COALESCE_ENTRIES: usize = 256;

/// One unit of work on a shard's ring. Everything here is
/// fire-and-forget: actions accumulate in the shard's pending buffer
/// until the next drain, and emptied batch buffers return to the router
/// through the recycle rings.
enum ShardWork {
    /// A routed wire message (telemetry, OOM, ack).
    Wire { now: SimTime, msg: ToController },
    /// This shard's slice of one node's row-form telemetry batch.
    Batch {
        now: SimTime,
        entries: Vec<CpuStatsEntry>,
    },
    /// This shard's slice of one node's columnar telemetry block.
    Columns {
        now: SimTime,
        columns: CpuStatsColumns,
    },
    /// Time advanced: run grant retries and the reclaim schedule.
    Tick { now: SimTime },
    /// This shard's slice of an Agent's reclamation report (possibly
    /// empty — an empty report still retries the shard's pending OOMs).
    ReclaimReport {
        now: SimTime,
        entries: Vec<ReclaimEntry>,
    },
}

/// A point-in-time copy of one application pool's books, readable
/// without borrowing into a worker thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSnapshot {
    /// The pool's global CPU limit Ω, in cores.
    pub cpu_limit_cores: f64,
    /// The pool's global memory limit, in bytes.
    pub mem_limit_bytes: u64,
    /// Σ member CPU quotas currently allocated from the pool.
    pub allocated_cpu_cores: f64,
    /// Σ member memory limits currently allocated from the pool.
    pub allocated_mem_bytes: u64,
}

/// The mutable half of a shard: its Controller, the actions it has
/// accumulated since the last drain, and its ingest-busy clock.
struct ShardCore<S: TraceSink> {
    controller: Controller<S>,
    pending: Vec<Action>,
    ingest_busy: Duration,
}

/// Everything a shard shares between the router and the workers.
struct ShardShared<S: TraceSink> {
    /// Router → shard work. Popped only under `core`'s lock.
    work: SpscRing<ShardWork>,
    /// Emptied row-batch buffers heading back to the router.
    recycle_entries: SpscRing<Vec<CpuStatsEntry>>,
    /// Emptied columnar blocks heading back to the router.
    recycle_columns: SpscRing<CpuStatsColumns>,
    /// Set by the owning worker right before it parks; the router only
    /// pays for an unpark when someone is (about to be) asleep.
    parked: AtomicBool,
    core: Mutex<ShardCore<S>>,
}

impl<S: TraceSink> std::fmt::Debug for ShardShared<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardShared").finish_non_exhaustive()
    }
}

/// Drains everything currently on `shared`'s work ring into its core.
/// The caller holds the core's mutex. Returns whether anything ran.
///
/// The ingest-busy clock is read once per *run* of consecutive
/// batch/columnar items rather than once per item: sub-batches shrink
/// as the shard count grows, and two `Instant::now` calls per 8-entry
/// block would charge more clock than ingest to the critical path.
/// The pop and buffer-recycle between consecutive blocks are charged
/// too — they are the real cost of crossing the shard boundary.
fn drain_ring<S: TraceSink>(shared: &ShardShared<S>, core: &mut ShardCore<S>) -> bool {
    let mut did = false;
    let mut ingest_t0: Option<Instant> = None;
    while let Some(work) = shared.work.pop() {
        did = true;
        let ShardCore {
            controller,
            pending,
            ingest_busy,
        } = core;
        match work {
            ShardWork::Batch { now, mut entries } => {
                if ingest_t0.is_none() {
                    ingest_t0 = Some(Instant::now());
                }
                controller.ingest_cpu_batch_at(now, &entries, pending);
                entries.clear();
                // Best effort: a full recycle ring drops the buffer and
                // the router allocates a fresh one.
                let _ = shared.recycle_entries.push(entries);
            }
            ShardWork::Columns { now, mut columns } => {
                if ingest_t0.is_none() {
                    ingest_t0 = Some(Instant::now());
                }
                controller.ingest_cpu_columns_at(now, &columns, pending);
                columns.clear();
                let _ = shared.recycle_columns.push(columns);
            }
            ShardWork::Wire { now, msg } => {
                if let Some(t0) = ingest_t0.take() {
                    *ingest_busy += t0.elapsed();
                }
                controller.handle_into(now, msg, pending);
            }
            ShardWork::Tick { now } => {
                if let Some(t0) = ingest_t0.take() {
                    *ingest_busy += t0.elapsed();
                }
                controller.tick_into(now, pending);
            }
            ShardWork::ReclaimReport { now, entries } => {
                if let Some(t0) = ingest_t0.take() {
                    *ingest_busy += t0.elapsed();
                }
                pending.extend(controller.on_reclaim_report(now, &entries));
            }
        }
    }
    if let Some(t0) = ingest_t0 {
        core.ingest_busy += t0.elapsed();
    }
    did
}

/// Non-blocking drain attempt — the work-stealing primitive. Skips the
/// shard when its ring looks empty or its core is held elsewhere.
fn try_drain<S: TraceSink>(shared: &ShardShared<S>) -> bool {
    if shared.work.is_empty() {
        return false;
    }
    let Ok(mut core) = shared.core.try_lock() else {
        return false;
    };
    drain_ring(shared, &mut core)
}

/// The worker loop for shard `me`: drain the own ring, steal from
/// siblings when idle, park when there is nothing anywhere. On shutdown
/// the worker exits only once its own ring is empty, so every message
/// accepted before teardown is applied.
fn worker_loop<S: TraceSink>(
    me: usize,
    shards: Arc<Vec<ShardShared<S>>>,
    shutdown: Arc<AtomicBool>,
) {
    let n = shards.len();
    loop {
        let mut did = try_drain(&shards[me]);
        if !did {
            for k in 1..n {
                if try_drain(&shards[(me + k) % n]) {
                    did = true;
                    break;
                }
            }
        }
        if did {
            continue;
        }
        if shutdown.load(Ordering::Acquire) {
            if shards[me].work.is_empty() {
                break;
            }
            std::thread::yield_now();
            continue;
        }
        // Nothing drained: either everything is empty or another thread
        // (typically the router, draining inline) holds the cores. Park
        // either way — spinning on a held lock would steal cycles from
        // the very drain we are waiting on. A push that races the flag
        // store skips the unpark, so pickup latency is bounded by the
        // park timeout, not unbounded.
        shards[me].parked.store(true, Ordering::Release);
        std::thread::park_timeout(IDLE_PARK);
        shards[me].parked.store(false, Ordering::Release);
    }
}

/// The multi-threaded Controller: an app-affine router in front of N
/// single-threaded [`Controller`] shards (see module docs).
///
/// Emitted [`Action`]s accumulate inside each shard and are collected —
/// in deterministic shard order, into a caller-owned buffer — with
/// [`ShardedController::drain_actions_into`].
///
/// Generic over a [`TraceSink`] like [`Controller`]: each shard's
/// Controller records into its own sink (created per shard by
/// [`ShardedController::with_sinks`]) and the router records ring
/// enqueue/dequeue depth into one more; a finished run extracts all of
/// them with [`ShardedController::take_sinks`]. The default
/// [`NoopSink`] compiles all of it out.
#[derive(Debug)]
pub struct ShardedController<S: TraceSink = NoopSink> {
    shards: Arc<Vec<ShardShared<S>>>,
    workers: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    /// Direct-mapped container → shard index (`NO_SHARD` = unknown),
    /// keyed by the raw container id exactly like the allocator's slab
    /// index (ids are sequential and never reused).
    container_shard: Vec<u32>,
    /// Per-shard scratch buffers for splitting one node's row batch.
    split_scratch: Vec<Vec<CpuStatsEntry>>,
    /// Per-shard scratch blocks for splitting one node's columnar block.
    /// Sub-blocks below [`COALESCE_ENTRIES`] are *held* here across
    /// calls and coalesced with the next block's split (see
    /// [`ShardedController::ingest_cpu_columns_at`]).
    col_scratch: Vec<CpuStatsColumns>,
    /// Total entries currently held across `col_scratch` (fast guard so
    /// non-columnar paths pay nothing for the flush check).
    col_held: usize,
    /// The timestamp of the held entries: coalescing never merges
    /// telemetry from different times (a changed `now` flushes first),
    /// so held blocks carry a single well-defined stamp.
    col_now: SimTime,
    /// Per-shard spare action buffers recycled through drain swaps.
    spares: Vec<Vec<Action>>,
    /// Nodes already broadcast to every shard.
    known_nodes: BTreeSet<NodeId>,
    /// Per-drain scratch for deduplicating cluster-wide sweep commands.
    seen_reclaims: Vec<(NodeId, u64)>,
    /// The router's own sink: shard-ring enqueue/dequeue events.
    sink: S,
    /// Work messages sent to each shard since its last drain. Only
    /// maintained when `S::ENABLED` (the depth exists for the trace).
    queue_depth: Vec<u32>,
    /// The latest time observed by the router, stamped on drain-time
    /// ring events (drains carry no `now` of their own).
    last_now: SimTime,
}

impl ShardedController {
    /// Spawns `n_shards` worker threads, each owning an independent
    /// [`Controller`] built from `cfg`, with tracing compiled out.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(cfg: EscraConfig, n_shards: usize) -> Self {
        ShardedController::with_sinks(cfg, n_shards, |_| NoopSink)
    }
}

impl<S: TraceSink + Default + Send + 'static> ShardedController<S> {
    /// Spawns `n_shards` worker threads, each owning an independent
    /// [`Controller`] built from `cfg` and recording into `mk(i)`.
    /// `mk(n_shards)` — one past the last shard — builds the router's
    /// own sink for shard-ring events.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn with_sinks(cfg: EscraConfig, n_shards: usize, mut mk: impl FnMut(usize) -> S) -> Self {
        assert!(n_shards > 0, "a sharded controller needs at least 1 shard");
        let shards: Arc<Vec<ShardShared<S>>> = Arc::new(
            (0..n_shards)
                .map(|i| ShardShared {
                    work: SpscRing::with_capacity(WORK_RING_DEPTH),
                    recycle_entries: SpscRing::with_capacity(RECYCLE_DEPTH),
                    recycle_columns: SpscRing::with_capacity(RECYCLE_DEPTH),
                    parked: AtomicBool::new(false),
                    core: Mutex::new(ShardCore {
                        controller: Controller::with_sink(cfg.clone(), mk(i)),
                        pending: Vec::new(),
                        ingest_busy: Duration::ZERO,
                    }),
                })
                .collect(),
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = (0..n_shards)
            .map(|i| {
                let shards = Arc::clone(&shards);
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("escra-shard-{i}"))
                    .spawn(move || worker_loop(i, shards, shutdown))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardedController {
            shards,
            workers,
            shutdown,
            container_shard: Vec::new(),
            split_scratch: (0..n_shards).map(|_| Vec::new()).collect(),
            col_scratch: (0..n_shards).map(|_| CpuStatsColumns::new()).collect(),
            col_held: 0,
            col_now: SimTime::ZERO,
            spares: (0..n_shards).map(|_| Vec::new()).collect(),
            known_nodes: BTreeSet::new(),
            seen_reclaims: Vec::new(),
            sink: mk(n_shards),
            queue_depth: vec![0; n_shards],
            last_now: SimTime::ZERO,
        }
    }

    /// Extracts every recorded trace: each shard Controller's sink (in
    /// shard order), then the router's own — `n_shards + 1` sinks total.
    /// The live Controllers continue recording into fresh defaults.
    pub fn take_sinks(&mut self) -> Vec<S> {
        self.flush_all_columns();
        let mut sinks = Vec::with_capacity(self.shards.len() + 1);
        for shard in 0..self.shards.len() {
            let mut core = self.lock_core(shard);
            sinks.push(core.controller.replace_sink(S::default()));
        }
        sinks.push(std::mem::take(&mut self.sink));
        sinks
    }
}

impl<S: TraceSink> ShardedController<S> {
    /// Locks a shard's core for an inline (router-thread) operation,
    /// first applying everything queued on its work ring so the books
    /// are exactly as if the shard had processed its whole message
    /// sequence — the flush that replaces the old request/reply
    /// channels.
    fn lock_core(&self, shard: usize) -> MutexGuard<'_, ShardCore<S>> {
        let shared = &self.shards[shard];
        let mut core = shared.core.lock().expect("shard core poisoned");
        drain_ring(shared, &mut core);
        core
    }

    /// Pushes one unit of work onto a shard's ring, waking its owner
    /// for control traffic or a filling ring (bulk telemetry is drained
    /// lazily — see [`IDLE_PARK`]). A full ring is flushed inline on
    /// the router thread — the router is the sole producer, so after
    /// the flush the retry cannot fail.
    fn push_work(&self, shard: usize, work: ShardWork) {
        let urgent = !matches!(work, ShardWork::Batch { .. } | ShardWork::Columns { .. });
        let shared = &self.shards[shard];
        if let Err(work) = shared.work.push(work) {
            {
                let mut core = shared.core.lock().expect("shard core poisoned");
                drain_ring(shared, &mut core);
            }
            shared
                .work
                .push(work)
                .ok()
                .expect("work ring emptied by the inline flush");
        }
        if urgent {
            if shared.parked.load(Ordering::Acquire) {
                self.workers[shard].thread().unpark();
            }
            return;
        }
        let depth = shared.work.len();
        if depth >= ASSIST_DEPTH && !try_drain(shared) && depth >= WAKE_DEPTH {
            // The owner (or a thief) holds the core and the backlog is
            // real — make sure someone is awake to chew on it.
            if shared.parked.load(Ordering::Acquire) {
                self.workers[shard].thread().unpark();
            }
        }
    }

    /// Sends a *work* message (telemetry, tick, reclaim report) to
    /// `shard`, recording ring depth into the router's sink. Control
    /// operations (registration, queries, drains) bypass this — they
    /// are not part of the §VI-I data path the trace observes.
    fn send_work(&mut self, shard: usize, work: ShardWork) {
        if S::ENABLED {
            self.queue_depth[shard] += 1;
            self.sink.emit(
                self.last_now,
                TraceEventKind::ShardEnqueue {
                    shard: shard as u32,
                    depth: self.queue_depth[shard],
                },
            );
        }
        self.push_work(shard, work);
    }

    /// Number of shards (worker threads).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing rule: the shard owning `app` and all its containers.
    pub fn route_of(&self, app: AppId) -> usize {
        (app.as_u64() % self.shards.len() as u64) as usize
    }

    /// Shard currently routing `container`, if the router has seen it.
    pub fn shard_of_container(&self, container: ContainerId) -> Option<usize> {
        let idx = container.as_u64() as usize;
        match self.container_shard.get(idx) {
            Some(&s) if s != NO_SHARD => Some(s as usize),
            _ => None,
        }
    }

    fn record_container(&mut self, container: ContainerId, shard: usize) {
        let idx = container.as_u64() as usize;
        if idx >= self.container_shard.len() {
            self.container_shard.resize(idx + 1, NO_SHARD);
        }
        self.container_shard[idx] = shard as u32;
    }

    fn clear_container(&mut self, container: ContainerId) {
        let idx = container.as_u64() as usize;
        if let Some(slot) = self.container_shard.get_mut(idx) {
            *slot = NO_SHARD;
        }
    }

    /// Routes a container-addressed message; unknown containers fall
    /// back to shard 0, which ingests-and-ignores them exactly like a
    /// sequential Controller does with stale telemetry.
    fn shard_for(&self, container: ContainerId) -> usize {
        self.shard_of_container(container).unwrap_or(0)
    }

    /// Broadcasts `node` to every shard the first time it is seen, so
    /// any shard's reclamation sweep covers the whole cluster.
    fn broadcast_node(&mut self, node: NodeId) {
        if self.known_nodes.insert(node) {
            for shard in 0..self.shards.len() {
                self.lock_core(shard).controller.note_node(node);
            }
        }
    }

    /// Registers an application's global limits on its home shard.
    pub fn register_app(&mut self, app: AppId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        self.flush_all_columns();
        let shard = self.route_of(app);
        self.lock_core(shard)
            .controller
            .register_app(app, cpu_limit_cores, mem_limit_bytes);
    }

    /// Registers a container with initial limits on its app's home
    /// shard. The cgroup-bootstrap commands a sequential Controller
    /// returns here instead appear in the next
    /// [`ShardedController::drain_actions_into`].
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError`] for unknown apps / duplicate ids.
    pub fn register_container(
        &mut self,
        container: ContainerId,
        app: AppId,
        node: NodeId,
        initial_cpu_cores: f64,
        initial_mem_bytes: u64,
    ) -> Result<(), AllocatorError> {
        self.flush_all_columns();
        self.broadcast_node(node);
        let shard = self.route_of(app);
        let result = {
            let mut core = self.lock_core(shard);
            let ShardCore {
                controller,
                pending,
                ..
            } = &mut *core;
            controller
                .register_container(container, app, node, initial_cpu_cores, initial_mem_bytes)
                .map(|actions| pending.extend(actions))
        };
        if result.is_ok() {
            self.record_container(container, shard);
        }
        result
    }

    /// Deregisters a container on its home shard.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError::UnknownContainer`].
    pub fn deregister_container(&mut self, container: ContainerId) -> Result<(), AllocatorError> {
        // Telemetry already accepted for this container must be applied
        // before the deregistration, exactly as a sequential Controller
        // would process its message sequence.
        self.flush_all_columns();
        let shard = self.shard_for(container);
        let result = self
            .lock_core(shard)
            .controller
            .deregister_container(container);
        if result.is_ok() {
            self.clear_container(container);
        }
        result
    }

    /// Routes one inbound wire message to its home shard.
    ///
    /// The caller charges the message's wire bytes
    /// ([`ToController::wire_bytes`]) exactly once *before* routing: a
    /// [`ToController::CpuStatsBatch`] (or columnar block) whose entries
    /// fan out to several shards is still one datagram on the wire — the
    /// fan-out happens after the envelope, so per-shard sub-batches must
    /// never be re-charged (a test in this module holds that property).
    pub fn handle(&mut self, now: SimTime, msg: ToController) {
        if S::ENABLED {
            self.last_now = now;
        }
        match msg {
            ToController::Register {
                container,
                app,
                node,
            } => {
                self.flush_all_columns();
                self.broadcast_node(node);
                let shard = self.route_of(app);
                // Inline on the flushed core: the wire path swallows the
                // error into `register_errors`; success means "the
                // container now belongs to `app` on this shard", which
                // is what the router records as the home shard.
                let ok = {
                    let mut core = self.lock_core(shard);
                    let ShardCore {
                        controller,
                        pending,
                        ..
                    } = &mut *core;
                    controller.handle_into(
                        now,
                        ToController::Register {
                            container,
                            app,
                            node,
                        },
                        pending,
                    );
                    controller.allocator().app_of(container) == Some(app)
                };
                if ok {
                    self.record_container(container, shard);
                }
            }
            ToController::CpuStatsBatch { node, entries } => {
                // The envelope-level ingest event is the router's (the
                // shards see only sub-batches): one per node datagram,
                // exactly like the sequential Controller's.
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::BatchIngest {
                            node: node.as_u64(),
                            entries: entries.len() as u32,
                        },
                    );
                }
                self.ingest_cpu_batch_at(now, &entries);
            }
            ToController::CpuStatsColumns { node, columns } => {
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::BatchIngest {
                            node: node.as_u64(),
                            entries: columns.len() as u32,
                        },
                    );
                }
                self.ingest_cpu_columns_at(now, &columns);
            }
            ToController::CpuStats { container, .. }
            | ToController::OomEvent { container, .. }
            | ToController::LimitAck { container, .. } => {
                let shard = self.shard_for(container);
                self.flush_shard_columns(shard);
                self.send_work(shard, ShardWork::Wire { now, msg });
            }
        }
    }

    /// Takes a recycled row-batch buffer for `shard`, or allocates one.
    fn take_entry_buf(&self, shard: usize) -> Vec<CpuStatsEntry> {
        self.shards[shard].recycle_entries.pop().unwrap_or_default()
    }

    /// Takes a recycled columnar block for `shard`, or allocates one.
    fn take_column_buf(&self, shard: usize) -> CpuStatsColumns {
        self.shards[shard].recycle_columns.pop().unwrap_or_default()
    }

    /// Splits one node's telemetry batch across home shards and feeds
    /// each shard its slice, preserving entry order within each shard.
    /// Equivalent to [`ShardedController::ingest_cpu_batch_at`] at
    /// `SimTime::ZERO` (the shard Controllers' decision logic is
    /// time-independent; the time only stamps trace events).
    ///
    /// In steady state this allocates nothing: the split buffers are
    /// recycled back from the workers once drained.
    pub fn ingest_cpu_batch(&mut self, entries: &[CpuStatsEntry]) {
        self.ingest_cpu_batch_at(SimTime::ZERO, entries);
    }

    /// Time-stamped batch ingest: like
    /// [`ShardedController::ingest_cpu_batch`], with `now` carried to
    /// the shard Controllers for their trace events.
    pub fn ingest_cpu_batch_at(&mut self, now: SimTime, entries: &[CpuStatsEntry]) {
        for e in entries {
            let shard = self.shard_for(e.container);
            self.split_scratch[shard].push(*e);
        }
        for shard in 0..self.shards.len() {
            if self.split_scratch[shard].is_empty() {
                continue;
            }
            // Held columnar telemetry for this shard arrived first; it
            // must reach the ring first.
            self.flush_shard_columns(shard);
            let replacement = self.take_entry_buf(shard);
            let batch = std::mem::replace(&mut self.split_scratch[shard], replacement);
            self.send_work(
                shard,
                ShardWork::Batch {
                    now,
                    entries: batch,
                },
            );
        }
    }

    /// Splits one node's columnar telemetry block across home shards,
    /// preserving entry order within each shard, and feeds each shard
    /// its sub-block — the columnar counterpart of
    /// [`ShardedController::ingest_cpu_batch`], at `SimTime::ZERO`.
    pub fn ingest_cpu_columns(&mut self, columns: &CpuStatsColumns) {
        self.ingest_cpu_columns_at(SimTime::ZERO, columns);
    }

    /// Time-stamped columnar ingest: like
    /// [`ShardedController::ingest_cpu_columns`], with `now` carried to
    /// the shard Controllers for their trace events. The per-shard
    /// sub-blocks are recycled column buffers — no allocation crosses
    /// the shard boundary in steady state.
    ///
    /// Sub-blocks below [`COALESCE_ENTRIES`] are *held* in the router's
    /// scratch and coalesced with subsequent columnar ingests at the
    /// same `now`, amortising the fixed per-block cost that would
    /// otherwise grow linearly with the shard count. Held telemetry is
    /// shipped automatically before anything that could observe or
    /// reorder it — a routed wire message, a row batch, a tick, a
    /// reclaim report, a drain, or a (de)registration — so each shard
    /// still sees its message sequence in exact arrival order.
    pub fn ingest_cpu_columns_at(&mut self, now: SimTime, columns: &CpuStatsColumns) {
        if self.col_held > 0 && self.col_now != now {
            self.flush_all_columns();
        }
        self.col_now = now;
        for i in 0..columns.len() {
            let container = ContainerId::new(columns.container_raw[i] as u64);
            let shard = self.shard_for(container);
            self.col_scratch[shard].push_raw(
                container,
                columns.quota_mcores[i],
                columns.unused_us[i],
                columns.usage_us[i],
                columns.throttled_bit(i),
            );
        }
        self.col_held += columns.len();
        for shard in 0..self.shards.len() {
            if self.col_scratch[shard].len() >= COALESCE_ENTRIES {
                self.flush_shard_columns(shard);
            }
        }
    }

    /// Ships `shard`'s held columnar sub-block, if any.
    fn flush_shard_columns(&mut self, shard: usize) {
        if self.col_scratch[shard].is_empty() {
            return;
        }
        let replacement = self.take_column_buf(shard);
        let block = std::mem::replace(&mut self.col_scratch[shard], replacement);
        self.col_held -= block.len();
        let now = self.col_now;
        self.send_work(
            shard,
            ShardWork::Columns {
                now,
                columns: block,
            },
        );
    }

    /// Ships every shard's held columnar sub-block. Cheap no-op when
    /// nothing is held.
    fn flush_all_columns(&mut self) {
        if self.col_held == 0 {
            return;
        }
        for shard in 0..self.shards.len() {
            self.flush_shard_columns(shard);
        }
    }

    /// Advances time on every shard: grant retries and the reclaim
    /// schedule run shard-locally; resulting commands appear in the next
    /// drain (duplicate cluster-wide sweeps are deduplicated there).
    pub fn tick(&mut self, now: SimTime) {
        if S::ENABLED {
            self.last_now = now;
        }
        self.flush_all_columns();
        for shard in 0..self.shards.len() {
            self.send_work(shard, ShardWork::Tick { now });
        }
    }

    /// Ingests an Agent's reclamation report.
    ///
    /// Entries are routed to each container's home shard; every shard
    /// receives a report (even an empty slice) because a report is also
    /// the signal to retry pending OOMs, whichever shard holds them —
    /// exactly as [`Controller::on_reclaim_report`] retries on any
    /// report.
    pub fn on_reclaim_report(&mut self, now: SimTime, entries: &[ReclaimEntry]) {
        if S::ENABLED {
            self.last_now = now;
        }
        self.flush_all_columns();
        let mut slices: Vec<Vec<ReclaimEntry>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for e in entries {
            slices[self.shard_for(e.container)].push(*e);
        }
        for (shard, entries) in slices.into_iter().enumerate() {
            self.send_work(shard, ShardWork::ReclaimReport { now, entries });
        }
    }

    /// Collects every shard's accumulated actions into `out`, in shard
    /// order, *appending without clearing* — the same caller-owned-buffer
    /// contract as [`Controller::handle_into`]. In steady state the
    /// drain allocates nothing: each shard's buffer is swapped against a
    /// spare and recycled.
    ///
    /// Identical cluster-wide [`ToAgent::ReclaimMemory`] commands are
    /// deduplicated within one drain: when all N shards launch their
    /// periodic sweep at the same tick, the Agents must see (and the
    /// wire must carry) one sweep, as under a sequential Controller.
    pub fn drain_actions_into(&mut self, out: &mut Vec<Action>) {
        self.flush_all_columns();
        self.seen_reclaims.clear();
        for shard in 0..self.shards.len() {
            if S::ENABLED {
                self.sink.emit(
                    self.last_now,
                    TraceEventKind::ShardDequeue {
                        shard: shard as u32,
                        drained: self.queue_depth[shard],
                    },
                );
                self.queue_depth[shard] = 0;
            }
            let spare = std::mem::take(&mut self.spares[shard]);
            let mut actions = {
                let mut core = self.lock_core(shard);
                std::mem::replace(&mut core.pending, spare)
            };
            for a in &actions {
                if let Action::Agent {
                    node,
                    cmd: ToAgent::ReclaimMemory { delta_bytes },
                } = a
                {
                    if self.seen_reclaims.contains(&(*node, *delta_bytes)) {
                        continue;
                    }
                    self.seen_reclaims.push((*node, *delta_bytes));
                }
                out.push(*a);
            }
            actions.clear();
            self.spares[shard] = actions;
        }
    }

    /// Convenience wrapper over [`ShardedController::drain_actions_into`]
    /// that allocates a fresh vector.
    pub fn drain_actions(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        self.drain_actions_into(&mut out);
        out
    }

    /// Work messages queued to each shard since its last drain, in shard
    /// order. All zeros unless `S::ENABLED` (the counters exist for the
    /// shard-ring trace events).
    pub fn queue_depths(&self) -> &[u32] {
        &self.queue_depth
    }

    /// Aggregate lifetime counters, merged across shards with
    /// [`ControllerStats::merge`] (see its note on `reclaim_sweeps`).
    pub fn stats(&self) -> ControllerStats {
        let mut total = ControllerStats::default();
        for s in self.per_shard_stats() {
            total.merge(&s);
        }
        total
    }

    /// Lifetime counters of each shard, in shard order.
    pub fn per_shard_stats(&self) -> Vec<ControllerStats> {
        (0..self.shards.len())
            .map(|s| self.lock_core(s).controller.stats())
            .collect()
    }

    /// The container's current CPU quota, from its home shard's books.
    pub fn quota_of(&self, container: ContainerId) -> Option<f64> {
        self.lock_core(self.shard_for(container))
            .controller
            .allocator()
            .quota_of(container)
    }

    /// The container's current memory limit, from its home shard's books.
    pub fn mem_limit_of(&self, container: ContainerId) -> Option<u64> {
        self.lock_core(self.shard_for(container))
            .controller
            .allocator()
            .mem_limit_of(container)
    }

    /// Σ tracked CPU quotas of `app`'s containers on its home shard.
    pub fn tracked_cpu_sum(&self, app: AppId) -> f64 {
        self.lock_core(self.route_of(app))
            .controller
            .allocator()
            .tracked_cpu_sum(app)
    }

    /// Σ tracked memory limits of `app`'s containers on its home shard.
    pub fn tracked_mem_sum(&self, app: AppId) -> u64 {
        self.lock_core(self.route_of(app))
            .controller
            .allocator()
            .tracked_mem_sum(app)
    }

    /// A snapshot of `app`'s Distributed Container pool books.
    pub fn app_pool(&self, app: AppId) -> Option<PoolSnapshot> {
        self.lock_core(self.route_of(app))
            .controller
            .allocator()
            .app_pool(app)
            .map(|p| PoolSnapshot {
                cpu_limit_cores: p.cpu_limit_cores(),
                mem_limit_bytes: p.mem_limit_bytes(),
                allocated_cpu_cores: p.allocated_cpu_cores(),
                allocated_mem_bytes: p.allocated_mem_bytes(),
            })
    }

    /// Total memory grants awaiting an Agent ack, across shards.
    pub fn pending_grant_count(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.lock_core(s).controller.pending_grant_count())
            .sum()
    }

    /// CPU time each shard's Controller spent inside batch/columnar
    /// ingest, in shard order — attributed to the shard whose books
    /// were updated even when a stealing sibling (or the router's
    /// inline flush) did the work.
    ///
    /// This is the per-shard critical path of telemetry processing: on a
    /// machine with one core per shard, aggregate ingest throughput is
    /// `total entries / max(per-shard busy)`. The capacity benchmark
    /// (`overhead_controller --threads`) reports exactly that quotient,
    /// which is also meaningful on CPU-starved CI hosts where wall-clock
    /// speedups cannot materialise.
    pub fn ingest_busy_per_shard(&self) -> Vec<Duration> {
        (0..self.shards.len())
            .map(|s| self.lock_core(s).ingest_busy)
            .collect()
    }

    /// Test/fault-injection hook: deliver a wire message directly to
    /// `shard`, bypassing the app-affine router — e.g. a registration
    /// arriving at the wrong shard must be *rejected and counted* in
    /// `register_errors`, never silently absorbed.
    pub fn inject_wire_to_shard(&self, shard: usize, now: SimTime, msg: ToController) {
        self.push_work(shard, ShardWork::Wire { now, msg });
    }
}

impl<S: TraceSink> Drop for ShardedController<S> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for w in &self.workers {
            w.thread().unpark();
        }
        for w in self.workers.drain(..) {
            if let Err(panic) = w.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{CPU_STATS_ENTRY_BYTES, CPU_STATS_HEADER_BYTES};
    use escra_cfs::{CpuPeriodStats, MIB};
    use escra_net::{batch_wire_bytes, BandwidthAccountant};

    fn throttled(quota: f64) -> CpuPeriodStats {
        CpuPeriodStats {
            quota_cores: quota,
            usage_us: quota * 100_000.0,
            unused_runtime_us: 0.0,
            throttled: true,
        }
    }

    fn sharded_with_apps(n_shards: usize, n_apps: u64, per_app: u64) -> ShardedController {
        let mut s = ShardedController::new(EscraConfig::default(), n_shards);
        for a in 0..n_apps {
            s.register_app(AppId::new(a), 8.0, 1024 * MIB);
            for i in 0..per_app {
                let cid = a * per_app + i;
                s.register_container(
                    ContainerId::new(cid),
                    AppId::new(a),
                    NodeId::new(cid % 2),
                    1.0,
                    64 * MIB,
                )
                .unwrap();
            }
        }
        s
    }

    #[test]
    fn routing_is_app_affine() {
        let s = sharded_with_apps(3, 6, 2);
        for a in 0..6u64 {
            assert_eq!(s.route_of(AppId::new(a)), (a % 3) as usize);
            for i in 0..2u64 {
                assert_eq!(
                    s.shard_of_container(ContainerId::new(a * 2 + i)),
                    Some((a % 3) as usize)
                );
            }
        }
    }

    #[test]
    fn registration_bootstraps_cgroups_via_drain() {
        let mut s = sharded_with_apps(2, 2, 1);
        let actions = s.drain_actions();
        // Two containers, two bootstrap commands each.
        assert_eq!(actions.len(), 4);
    }

    #[test]
    fn telemetry_routes_to_the_home_shard_and_drains() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions(); // discard bootstrap
        let quota = s.quota_of(ContainerId::new(1)).unwrap();
        s.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: ContainerId::new(1),
                stats: throttled(quota),
            },
        );
        let actions = s.drain_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::SetCpuQuota { container, .. },
                ..
            } if container == ContainerId::new(1)
        ));
        assert_eq!(s.stats().quota_updates, 1);
        assert_eq!(s.stats().cpu_stats_ingested, 1);
    }

    #[test]
    fn periodic_sweeps_are_deduplicated_across_shards() {
        let mut s = sharded_with_apps(4, 4, 1);
        s.drain_actions();
        s.tick(SimTime::from_secs(5));
        let actions = s.drain_actions();
        // 4 shards each launch a sweep over both nodes; the drain must
        // carry each node's command once.
        let reclaims: Vec<_> = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Agent {
                        cmd: ToAgent::ReclaimMemory { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(reclaims.len(), 2, "one per node, not one per shard");
        // Each shard still counted its own sweep (documented divergence).
        assert_eq!(s.stats().reclaim_sweeps, 4);
    }

    #[test]
    fn batch_fan_out_is_charged_one_envelope() {
        // A 4-entry batch spanning both shards is one datagram on the
        // wire: the embedding charges `wire_bytes()` once before routing
        // and the router's fan-out adds nothing.
        let mut s = sharded_with_apps(2, 4, 1);
        s.drain_actions();
        let entries: Vec<CpuStatsEntry> = (0..4u64)
            .map(|i| CpuStatsEntry {
                container: ContainerId::new(i),
                stats: throttled(1.0),
            })
            .collect();
        let msg = ToController::CpuStatsBatch {
            node: NodeId::new(0),
            entries,
        };
        let mut acc = BandwidthAccountant::new();
        acc.record(SimTime::ZERO, msg.wire_bytes());
        s.handle(SimTime::ZERO, msg);
        assert_eq!(
            acc.total_bytes(),
            batch_wire_bytes(CPU_STATS_HEADER_BYTES, CPU_STATS_ENTRY_BYTES, 4)
        );
        assert_eq!(s.stats().cpu_stats_ingested, 4);
    }

    #[test]
    fn unknown_telemetry_is_counted_and_ignored_like_sequential() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions();
        s.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: ContainerId::new(99),
                stats: throttled(1.0),
            },
        );
        assert!(s.drain_actions().is_empty());
        assert_eq!(s.stats().cpu_stats_ingested, 1);
    }

    #[test]
    fn wrong_shard_registration_is_rejected_and_counted() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions();
        // App 1's home is shard 1; inject its registration at shard 0.
        let wrong = ToController::Register {
            container: ContainerId::new(7),
            app: AppId::new(1),
            node: NodeId::new(0),
        };
        s.inject_wire_to_shard(0, SimTime::ZERO, wrong);
        assert!(s.drain_actions().is_empty(), "no bootstrap for a reject");
        let per_shard = s.per_shard_stats();
        assert_eq!(per_shard[0].register_errors, 1);
        assert_eq!(per_shard[1].register_errors, 0);
        assert_eq!(s.stats().register_errors, 1);
    }

    #[test]
    fn single_shard_matches_sequential_controller_exactly() {
        // With one shard the router is a pass-through: same actions, same
        // seqs, same stats as the sequential Controller.
        let mut seq = Controller::new(EscraConfig::default());
        let mut sharded = ShardedController::new(EscraConfig::default(), 1);
        seq.register_app(AppId::new(0), 8.0, 1024 * MIB);
        sharded.register_app(AppId::new(0), 8.0, 1024 * MIB);
        let mut seq_actions = seq
            .register_container(
                ContainerId::new(0),
                AppId::new(0),
                NodeId::new(0),
                1.0,
                64 * MIB,
            )
            .unwrap();
        sharded
            .register_container(
                ContainerId::new(0),
                AppId::new(0),
                NodeId::new(0),
                1.0,
                64 * MIB,
            )
            .unwrap();
        for round in 0..30u64 {
            let now = SimTime::from_millis(round * 100);
            let quota = seq.allocator().quota_of(ContainerId::new(0)).unwrap();
            let msg = ToController::CpuStats {
                container: ContainerId::new(0),
                stats: throttled(quota),
            };
            seq.handle_into(now, msg.clone(), &mut seq_actions);
            sharded.handle(now, msg);
            seq_actions.extend(seq.tick(now));
            sharded.tick(now);
        }
        let sharded_actions = sharded.drain_actions();
        assert_eq!(seq_actions, sharded_actions);
        assert_eq!(seq.stats(), sharded.stats());
    }

    #[test]
    fn columnar_ingest_matches_row_batch_ingest_across_shards() {
        // The same telemetry stream fed as columnar blocks and as row
        // batches must produce identical actions and stats, shard count
        // notwithstanding — the sharded face of the columnar identity.
        for n_shards in [1usize, 3] {
            let mut by_rows = sharded_with_apps(n_shards, 4, 2);
            let mut by_cols = sharded_with_apps(n_shards, 4, 2);
            by_rows.drain_actions();
            by_cols.drain_actions();
            for round in 0..12u64 {
                let now = SimTime::from_millis(round * 100);
                let entries: Vec<CpuStatsEntry> = (0..8u64)
                    .map(|i| CpuStatsEntry {
                        container: ContainerId::new(i),
                        stats: if (round + i) % 3 == 0 {
                            throttled(1.0)
                        } else {
                            CpuPeriodStats {
                                quota_cores: 1.0,
                                usage_us: 30_000.0,
                                unused_runtime_us: 70_000.0,
                                throttled: false,
                            }
                        },
                    })
                    .collect();
                let columns = CpuStatsColumns::from_entries(&entries);
                // Quantization is lossless for these values, so the two
                // forms carry identical statistics.
                assert_eq!(columns.to_entries(), entries);
                by_rows.handle(
                    now,
                    ToController::CpuStatsBatch {
                        node: NodeId::new(0),
                        entries,
                    },
                );
                by_cols.handle(
                    now,
                    ToController::CpuStatsColumns {
                        node: NodeId::new(0),
                        columns,
                    },
                );
            }
            assert_eq!(by_rows.drain_actions(), by_cols.drain_actions());
            assert_eq!(by_rows.stats(), by_cols.stats());
        }
    }

    #[test]
    fn skewed_routing_stays_correct_with_idle_shards() {
        // Every app hashes to shard 0 (app ids ≡ 0 mod 4): three shards
        // sit idle and are free to steal, and the result must still be
        // decision-for-decision identical to a sequential Controller.
        let mut seq = Controller::new(EscraConfig::default());
        let mut sharded = ShardedController::new(EscraConfig::default(), 4);
        for a in [0u64, 4, 8] {
            seq.register_app(AppId::new(a), 8.0, 1024 * MIB);
            sharded.register_app(AppId::new(a), 8.0, 1024 * MIB);
            assert_eq!(sharded.route_of(AppId::new(a)), 0, "skew by construction");
        }
        let mut seq_actions = Vec::new();
        for c in 0..6u64 {
            let app = AppId::new((c % 3) * 4);
            seq_actions.extend(
                seq.register_container(ContainerId::new(c), app, NodeId::new(0), 1.0, 64 * MIB)
                    .unwrap(),
            );
            sharded
                .register_container(ContainerId::new(c), app, NodeId::new(0), 1.0, 64 * MIB)
                .unwrap();
        }
        for round in 0..40u64 {
            let now = SimTime::from_millis(round * 100);
            let entries: Vec<CpuStatsEntry> = (0..6u64)
                .map(|c| CpuStatsEntry {
                    container: ContainerId::new(c),
                    stats: throttled(seq.allocator().quota_of(ContainerId::new(c)).unwrap()),
                })
                .collect();
            seq.ingest_cpu_batch_at(now, &entries, &mut seq_actions);
            sharded.ingest_cpu_batch_at(now, &entries);
        }
        assert_eq!(seq_actions, sharded.drain_actions());
        assert_eq!(seq.stats(), sharded.stats());
    }

    #[test]
    fn deregister_returns_resources_and_clears_routing() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions();
        s.deregister_container(ContainerId::new(0)).unwrap();
        assert_eq!(s.shard_of_container(ContainerId::new(0)), None);
        assert!(matches!(
            s.deregister_container(ContainerId::new(0)),
            Err(AllocatorError::UnknownContainer(_))
        ));
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let mut a = ControllerStats {
            cpu_stats_ingested: 1,
            quota_updates: 2,
            scale_ups: 3,
            scale_downs: 4,
            mem_grants: 5,
            ooms_absorbed: 6,
            ooms_fatal: 7,
            reclaim_sweeps: 8,
            reclaimed_bytes: 9,
            grant_retries: 10,
            grant_reconciles: 11,
            grants_abandoned: 12,
            register_errors: 13,
            ack_mismatches: 14,
        };
        let b = a;
        a.merge(&b);
        // Full-struct equality: a struct literal with every field named
        // means adding a counter without updating merge (and this
        // expectation) fails to compile, not silently under-merges.
        assert_eq!(
            a,
            ControllerStats {
                cpu_stats_ingested: 2,
                quota_updates: 4,
                scale_ups: 6,
                scale_downs: 8,
                mem_grants: 10,
                ooms_absorbed: 12,
                ooms_fatal: 14,
                reclaim_sweeps: 16,
                reclaimed_bytes: 18,
                grant_retries: 20,
                grant_reconciles: 22,
                grants_abandoned: 24,
                register_errors: 26,
                ack_mismatches: 28,
            }
        );
    }
}
