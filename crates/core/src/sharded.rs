//! App-sharded, multi-threaded Controller (§VI-I scalability).
//!
//! The paper's Controller is *logically* centralized; PR 2 made its
//! telemetry ingest batched and allocation-free, but it still ran on one
//! core. [`ShardedController`] removes that ceiling: N worker threads,
//! each owning an independent [`Controller`] (and therefore its own slab
//! allocator), fed over bounded `std::sync::mpsc` channels.
//!
//! ## Routing rule: by application id
//!
//! A container is routed to shard `app.as_u64() % n_shards`. All
//! Distributed Container state — the per-app CPU/memory pools, sibling
//! membership, OOM grant arithmetic — is scoped to one application, so
//! keeping an application's containers on one shard preserves
//! decision-for-decision identity with a sequential Controller: each
//! shard sees exactly the subsequence of messages its apps would have
//! seen, in the same order, against exactly the same pool state. Any
//! other partition (by container, by node) would split an application's
//! pool across threads and change grant/scale decisions.
//!
//! Two things are *not* app-scoped and need care:
//!
//! * **Node knowledge.** A sequential Controller's reclamation sweep
//!   covers every node it has ever seen. Every registered node is
//!   therefore broadcast to every shard ([`Controller::note_node`]), so
//!   a sweep launched by any one shard (e.g. for an OOM on its app)
//!   still covers the whole cluster. When all shards launch their
//!   periodic sweep on the same schedule, the duplicate
//!   [`ToAgent::ReclaimMemory`] commands are deduplicated per drain —
//!   they are idempotent on Agents, but charging them to the wire N
//!   times would distort the §VI-I overhead numbers.
//! * **Command sequence numbers.** Each shard stamps its own monotonic
//!   sequence. Agents filter staleness *per container*, and all of a
//!   container's commands come from its one home shard in emission
//!   order, so the per-container guarantee is unchanged; only the
//!   global numbering differs from a sequential Controller (the
//!   identity property test canonicalises seqs to per-container ranks).
//!
//! ## Determinism
//!
//! The router (the caller's thread) is the only producer into each
//! shard's FIFO channel, and every shard drains its channel in order,
//! so each shard's action stream is a deterministic function of the
//! routed message sequence — independent of thread scheduling.
//! [`ShardedController::drain_actions_into`] concatenates the shard
//! buffers in shard order, making the drained stream reproducible
//! run-to-run as well.

use crate::agent::ReclaimEntry;
use crate::allocator::AllocatorError;
use crate::config::EscraConfig;
use crate::controller::{Action, Controller, ControllerStats};
use crate::telemetry::{CpuStatsEntry, ToAgent, ToController};
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_metrics::trace::{NoopSink, TraceEventKind, TraceSink};
use escra_simcore::time::SimTime;
use std::collections::BTreeSet;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sentinel for "container not seen by the router yet".
const NO_SHARD: u32 = u32::MAX;

/// Router → worker channel depth: enough to pipeline a burst of per-node
/// batches without unbounded queue growth.
const SHARD_CHANNEL_DEPTH: usize = 256;

/// Worker → router recycle-channel depth for emptied batch buffers.
const RECYCLE_DEPTH: usize = 8;

/// One message to a shard worker. Fire-and-forget variants accumulate
/// actions in the shard's pending buffer; request variants reply on the
/// shard's reply channel.
enum ShardMsg {
    /// A routed wire message (telemetry, OOM, ack) — fire-and-forget.
    Wire { now: SimTime, msg: ToController },
    /// A wire registration; replies `Registered` so the router learns
    /// whether the container actually joined this shard's books.
    WireRegister {
        now: SimTime,
        container: ContainerId,
        app: AppId,
        node: NodeId,
    },
    /// This shard's slice of one node's telemetry batch. The entry
    /// buffer is returned to the router through the recycle channel.
    Batch {
        now: SimTime,
        entries: Vec<CpuStatsEntry>,
    },
    /// Time advanced: run grant retries and the reclaim schedule.
    Tick { now: SimTime },
    /// This shard's slice of an Agent's reclamation report (possibly
    /// empty — an empty report still retries the shard's pending OOMs).
    ReclaimReport {
        now: SimTime,
        entries: Vec<ReclaimEntry>,
    },
    /// Register an application's global limits.
    RegisterApp {
        app: AppId,
        cpu_limit_cores: f64,
        mem_limit_bytes: u64,
    },
    /// Typed container registration; replies `Registered`.
    RegisterContainer {
        container: ContainerId,
        app: AppId,
        node: NodeId,
        initial_cpu_cores: f64,
        initial_mem_bytes: u64,
    },
    /// Typed deregistration; replies `Deregistered`.
    Deregister { container: ContainerId },
    /// Node-knowledge broadcast (see module docs).
    NoteNode { node: NodeId },
    /// Swap the shard's pending action buffer for `spare`; replies
    /// `Actions` with the accumulated buffer.
    Drain { spare: Vec<Action> },
    /// Read-only queries; each replies with the matching variant.
    Query(ShardQuery),
    /// Swap the shard Controller's trace sink for a default one;
    /// replies `Sink` with the recorded trace.
    TakeSink,
    /// Stop the worker loop.
    Shutdown,
}

/// Read-only state queries a shard answers synchronously.
enum ShardQuery {
    Stats,
    Quota(ContainerId),
    MemLimit(ContainerId),
    TrackedCpu(AppId),
    TrackedMem(AppId),
    PoolLimits(AppId),
    PendingGrants,
    IngestBusy,
}

/// A shard worker's reply.
enum ShardReply<S> {
    Registered(Result<(), AllocatorError>),
    Deregistered(Result<(), AllocatorError>),
    Actions(Vec<Action>),
    Stats(ControllerStats),
    Quota(Option<f64>),
    MemLimit(Option<u64>),
    F64(f64),
    U64(u64),
    PoolLimits(Option<PoolSnapshot>),
    Pending(usize),
    Busy(Duration),
    Sink(S),
}

/// A point-in-time copy of one application pool's books, readable
/// without borrowing into a worker thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSnapshot {
    /// The pool's global CPU limit Ω, in cores.
    pub cpu_limit_cores: f64,
    /// The pool's global memory limit, in bytes.
    pub mem_limit_bytes: u64,
    /// Σ member CPU quotas currently allocated from the pool.
    pub allocated_cpu_cores: f64,
    /// Σ member memory limits currently allocated from the pool.
    pub allocated_mem_bytes: u64,
}

struct ShardHandle<S> {
    tx: SyncSender<ShardMsg>,
    rx: Receiver<ShardReply<S>>,
    recycle_rx: Receiver<Vec<CpuStatsEntry>>,
    join: Option<JoinHandle<()>>,
}

impl<S> ShardHandle<S> {
    fn send(&self, msg: ShardMsg) {
        self.tx
            .send(msg)
            .expect("shard worker exited while the router holds it");
    }

    fn recv(&self) -> ShardReply<S> {
        self.rx
            .recv()
            .expect("shard worker exited while a reply was pending")
    }
}

/// The multi-threaded Controller: an app-affine router in front of N
/// single-threaded [`Controller`] shards (see module docs).
///
/// Emitted [`Action`]s accumulate inside each shard and are collected —
/// in deterministic shard order, into a caller-owned buffer — with
/// [`ShardedController::drain_actions_into`].
///
/// Generic over a [`TraceSink`] like [`Controller`]: each shard's
/// Controller records into its own sink (created per shard by
/// [`ShardedController::with_sinks`]) and the router records channel
/// enqueue/dequeue depth into one more; a finished run extracts all of
/// them with [`ShardedController::take_sinks`]. The default
/// [`NoopSink`] compiles all of it out.
#[derive(Debug)]
pub struct ShardedController<S: TraceSink = NoopSink> {
    handles: Vec<ShardHandle<S>>,
    /// Direct-mapped container → shard index (`NO_SHARD` = unknown),
    /// keyed by the raw container id exactly like the allocator's slab
    /// index (ids are sequential and never reused).
    container_shard: Vec<u32>,
    /// Per-shard scratch buffers for splitting one node batch.
    split_scratch: Vec<Vec<CpuStatsEntry>>,
    /// Per-shard spare action buffers recycled through `Drain` swaps.
    spares: Vec<Vec<Action>>,
    /// Nodes already broadcast to every shard.
    known_nodes: BTreeSet<NodeId>,
    /// Per-drain scratch for deduplicating cluster-wide sweep commands.
    seen_reclaims: Vec<(NodeId, u64)>,
    /// The router's own sink: shard-channel enqueue/dequeue events.
    sink: S,
    /// Work messages sent to each shard since its last drain. Only
    /// maintained when `S::ENABLED` (the depth exists for the trace).
    queue_depth: Vec<u32>,
    /// The latest time observed by the router, stamped on drain-time
    /// channel events (drains carry no `now` of their own).
    last_now: SimTime,
}

impl<S> std::fmt::Debug for ShardHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle").finish_non_exhaustive()
    }
}

fn shard_worker<S: TraceSink + Default>(
    cfg: EscraConfig,
    sink: S,
    rx: Receiver<ShardMsg>,
    tx: SyncSender<ShardReply<S>>,
    recycle_tx: SyncSender<Vec<CpuStatsEntry>>,
) {
    let mut controller = Controller::with_sink(cfg, sink);
    let mut pending: Vec<Action> = Vec::new();
    let mut ingest_busy = Duration::ZERO;
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Wire { now, msg } => controller.handle_into(now, msg, &mut pending),
            ShardMsg::WireRegister {
                now,
                container,
                app,
                node,
            } => {
                controller.handle_into(
                    now,
                    ToController::Register {
                        container,
                        app,
                        node,
                    },
                    &mut pending,
                );
                // The wire path swallows the error into `register_errors`;
                // report success as "the container now belongs to `app` on
                // this shard" so the router can record the home shard.
                let ok = controller.allocator().app_of(container) == Some(app);
                let _ = tx.send(ShardReply::Registered(if ok {
                    Ok(())
                } else {
                    Err(AllocatorError::UnknownContainer(container))
                }));
            }
            ShardMsg::Batch { now, mut entries } => {
                let t = Instant::now();
                controller.ingest_cpu_batch_at(now, &entries, &mut pending);
                ingest_busy += t.elapsed();
                entries.clear();
                // Best effort: if the recycle channel is full the buffer
                // is simply dropped and the router allocates a fresh one.
                let _ = recycle_tx.try_send(entries);
            }
            ShardMsg::Tick { now } => pending.extend(controller.tick(now)),
            ShardMsg::ReclaimReport { now, entries } => {
                pending.extend(controller.on_reclaim_report(now, &entries));
            }
            ShardMsg::RegisterApp {
                app,
                cpu_limit_cores,
                mem_limit_bytes,
            } => controller.register_app(app, cpu_limit_cores, mem_limit_bytes),
            ShardMsg::RegisterContainer {
                container,
                app,
                node,
                initial_cpu_cores,
                initial_mem_bytes,
            } => {
                let result = controller
                    .register_container(container, app, node, initial_cpu_cores, initial_mem_bytes)
                    .map(|actions| pending.extend(actions));
                let _ = tx.send(ShardReply::Registered(result));
            }
            ShardMsg::Deregister { container } => {
                let _ = tx.send(ShardReply::Deregistered(
                    controller.deregister_container(container),
                ));
            }
            ShardMsg::NoteNode { node } => controller.note_node(node),
            ShardMsg::Drain { spare } => {
                let out = std::mem::replace(&mut pending, spare);
                let _ = tx.send(ShardReply::Actions(out));
            }
            ShardMsg::Query(q) => {
                let reply = match q {
                    ShardQuery::Stats => ShardReply::Stats(controller.stats()),
                    ShardQuery::Quota(c) => ShardReply::Quota(controller.allocator().quota_of(c)),
                    ShardQuery::MemLimit(c) => {
                        ShardReply::MemLimit(controller.allocator().mem_limit_of(c))
                    }
                    ShardQuery::TrackedCpu(app) => {
                        ShardReply::F64(controller.allocator().tracked_cpu_sum(app))
                    }
                    ShardQuery::TrackedMem(app) => {
                        ShardReply::U64(controller.allocator().tracked_mem_sum(app))
                    }
                    ShardQuery::PoolLimits(app) => {
                        ShardReply::PoolLimits(controller.allocator().app_pool(app).map(|p| {
                            PoolSnapshot {
                                cpu_limit_cores: p.cpu_limit_cores(),
                                mem_limit_bytes: p.mem_limit_bytes(),
                                allocated_cpu_cores: p.allocated_cpu_cores(),
                                allocated_mem_bytes: p.allocated_mem_bytes(),
                            }
                        }))
                    }
                    ShardQuery::PendingGrants => {
                        ShardReply::Pending(controller.pending_grant_count())
                    }
                    ShardQuery::IngestBusy => ShardReply::Busy(ingest_busy),
                };
                let _ = tx.send(reply);
            }
            ShardMsg::TakeSink => {
                let _ = tx.send(ShardReply::Sink(controller.replace_sink(S::default())));
            }
            ShardMsg::Shutdown => break,
        }
    }
}

impl ShardedController {
    /// Spawns `n_shards` worker threads, each owning an independent
    /// [`Controller`] built from `cfg`, with tracing compiled out.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(cfg: EscraConfig, n_shards: usize) -> Self {
        ShardedController::with_sinks(cfg, n_shards, |_| NoopSink)
    }
}

impl<S: TraceSink + Default + Send + 'static> ShardedController<S> {
    /// Spawns `n_shards` worker threads, each owning an independent
    /// [`Controller`] built from `cfg` and recording into `mk(i)`.
    /// `mk(n_shards)` — one past the last shard — builds the router's
    /// own sink for shard-channel events.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn with_sinks(cfg: EscraConfig, n_shards: usize, mut mk: impl FnMut(usize) -> S) -> Self {
        assert!(n_shards > 0, "a sharded controller needs at least 1 shard");
        let handles = (0..n_shards)
            .map(|i| {
                let (msg_tx, msg_rx) = sync_channel::<ShardMsg>(SHARD_CHANNEL_DEPTH);
                let (reply_tx, reply_rx) = sync_channel::<ShardReply<S>>(2);
                let (recycle_tx, recycle_rx) = sync_channel::<Vec<CpuStatsEntry>>(RECYCLE_DEPTH);
                let cfg = cfg.clone();
                let sink = mk(i);
                let join = std::thread::Builder::new()
                    .name(format!("escra-shard-{i}"))
                    .spawn(move || shard_worker(cfg, sink, msg_rx, reply_tx, recycle_tx))
                    .expect("spawn shard worker");
                ShardHandle {
                    tx: msg_tx,
                    rx: reply_rx,
                    recycle_rx,
                    join: Some(join),
                }
            })
            .collect();
        ShardedController {
            handles,
            container_shard: Vec::new(),
            split_scratch: (0..n_shards).map(|_| Vec::new()).collect(),
            spares: (0..n_shards).map(|_| Vec::new()).collect(),
            known_nodes: BTreeSet::new(),
            seen_reclaims: Vec::new(),
            sink: mk(n_shards),
            queue_depth: vec![0; n_shards],
            last_now: SimTime::ZERO,
        }
    }

    /// Extracts every recorded trace: each shard Controller's sink (in
    /// shard order), then the router's own — `n_shards + 1` sinks total.
    /// The live Controllers continue recording into fresh defaults.
    pub fn take_sinks(&mut self) -> Vec<S> {
        let mut sinks = Vec::with_capacity(self.handles.len() + 1);
        for h in &self.handles {
            h.send(ShardMsg::TakeSink);
            match h.recv() {
                ShardReply::Sink(s) => sinks.push(s),
                _ => unreachable!("take-sink replies Sink"),
            }
        }
        sinks.push(std::mem::take(&mut self.sink));
        sinks
    }
}

impl<S: TraceSink> ShardedController<S> {
    /// Sends a *work* message (telemetry, tick, reclaim report) to
    /// `shard`, recording channel depth into the router's sink. Control
    /// messages (registration, queries, drains) bypass this — they are
    /// not part of the §VI-I data path the trace observes.
    fn send_work(&mut self, shard: usize, msg: ShardMsg) {
        if S::ENABLED {
            self.queue_depth[shard] += 1;
            self.sink.emit(
                self.last_now,
                TraceEventKind::ShardEnqueue {
                    shard: shard as u32,
                    depth: self.queue_depth[shard],
                },
            );
        }
        self.handles[shard].send(msg);
    }

    /// Number of shards (worker threads).
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }

    /// The routing rule: the shard owning `app` and all its containers.
    pub fn route_of(&self, app: AppId) -> usize {
        (app.as_u64() % self.handles.len() as u64) as usize
    }

    /// Shard currently routing `container`, if the router has seen it.
    pub fn shard_of_container(&self, container: ContainerId) -> Option<usize> {
        let idx = container.as_u64() as usize;
        match self.container_shard.get(idx) {
            Some(&s) if s != NO_SHARD => Some(s as usize),
            _ => None,
        }
    }

    fn record_container(&mut self, container: ContainerId, shard: usize) {
        let idx = container.as_u64() as usize;
        if idx >= self.container_shard.len() {
            self.container_shard.resize(idx + 1, NO_SHARD);
        }
        self.container_shard[idx] = shard as u32;
    }

    fn clear_container(&mut self, container: ContainerId) {
        let idx = container.as_u64() as usize;
        if let Some(slot) = self.container_shard.get_mut(idx) {
            *slot = NO_SHARD;
        }
    }

    /// Routes a container-addressed message; unknown containers fall
    /// back to shard 0, which ingests-and-ignores them exactly like a
    /// sequential Controller does with stale telemetry.
    fn shard_for(&self, container: ContainerId) -> usize {
        self.shard_of_container(container).unwrap_or(0)
    }

    /// Broadcasts `node` to every shard the first time it is seen, so
    /// any shard's reclamation sweep covers the whole cluster.
    fn broadcast_node(&mut self, node: NodeId) {
        if self.known_nodes.insert(node) {
            for h in &self.handles {
                h.send(ShardMsg::NoteNode { node });
            }
        }
    }

    /// Registers an application's global limits on its home shard.
    pub fn register_app(&mut self, app: AppId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        let shard = self.route_of(app);
        self.handles[shard].send(ShardMsg::RegisterApp {
            app,
            cpu_limit_cores,
            mem_limit_bytes,
        });
    }

    /// Registers a container with initial limits on its app's home
    /// shard. The cgroup-bootstrap commands a sequential Controller
    /// returns here instead appear in the next
    /// [`ShardedController::drain_actions_into`].
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError`] for unknown apps / duplicate ids.
    pub fn register_container(
        &mut self,
        container: ContainerId,
        app: AppId,
        node: NodeId,
        initial_cpu_cores: f64,
        initial_mem_bytes: u64,
    ) -> Result<(), AllocatorError> {
        self.broadcast_node(node);
        let shard = self.route_of(app);
        self.handles[shard].send(ShardMsg::RegisterContainer {
            container,
            app,
            node,
            initial_cpu_cores,
            initial_mem_bytes,
        });
        match self.handles[shard].recv() {
            ShardReply::Registered(result) => {
                if result.is_ok() {
                    self.record_container(container, shard);
                }
                result
            }
            _ => unreachable!("register replies Registered"),
        }
    }

    /// Deregisters a container on its home shard.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocatorError::UnknownContainer`].
    pub fn deregister_container(&mut self, container: ContainerId) -> Result<(), AllocatorError> {
        let shard = self.shard_for(container);
        self.handles[shard].send(ShardMsg::Deregister { container });
        match self.handles[shard].recv() {
            ShardReply::Deregistered(result) => {
                if result.is_ok() {
                    self.clear_container(container);
                }
                result
            }
            _ => unreachable!("deregister replies Deregistered"),
        }
    }

    /// Routes one inbound wire message to its home shard.
    ///
    /// The caller charges the message's wire bytes
    /// ([`ToController::wire_bytes`]) exactly once *before* routing: a
    /// [`ToController::CpuStatsBatch`] whose entries fan out to several
    /// shards is still one datagram on the wire — the fan-out happens
    /// after the envelope, so per-shard sub-batches must never be
    /// re-charged (a test in this module holds that property).
    pub fn handle(&mut self, now: SimTime, msg: ToController) {
        if S::ENABLED {
            self.last_now = now;
        }
        match msg {
            ToController::Register {
                container,
                app,
                node,
            } => {
                self.broadcast_node(node);
                let shard = self.route_of(app);
                self.handles[shard].send(ShardMsg::WireRegister {
                    now,
                    container,
                    app,
                    node,
                });
                if let ShardReply::Registered(result) = self.handles[shard].recv() {
                    if result.is_ok() {
                        self.record_container(container, shard);
                    }
                }
            }
            ToController::CpuStatsBatch { node, entries } => {
                // The envelope-level ingest event is the router's (the
                // shards see only sub-batches): one per node datagram,
                // exactly like the sequential Controller's.
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        TraceEventKind::BatchIngest {
                            node: node.as_u64(),
                            entries: entries.len() as u32,
                        },
                    );
                }
                self.ingest_cpu_batch_at(now, &entries);
            }
            ToController::CpuStats { container, .. }
            | ToController::OomEvent { container, .. }
            | ToController::LimitAck { container, .. } => {
                let shard = self.shard_for(container);
                self.send_work(shard, ShardMsg::Wire { now, msg });
            }
        }
    }

    /// Takes a recycled entry buffer for `shard`, or allocates one.
    fn take_entry_buf(&self, shard: usize) -> Vec<CpuStatsEntry> {
        self.handles[shard]
            .recycle_rx
            .try_recv()
            .unwrap_or_default()
    }

    /// Splits one node's telemetry batch across home shards and feeds
    /// each shard its slice, preserving entry order within each shard.
    /// Equivalent to [`ShardedController::ingest_cpu_batch_at`] at
    /// `SimTime::ZERO` (the shard Controllers' decision logic is
    /// time-independent; the time only stamps trace events).
    ///
    /// In steady state this allocates nothing: the split buffers are
    /// recycled back from the workers once drained.
    pub fn ingest_cpu_batch(&mut self, entries: &[CpuStatsEntry]) {
        self.ingest_cpu_batch_at(SimTime::ZERO, entries);
    }

    /// Time-stamped batch ingest: like
    /// [`ShardedController::ingest_cpu_batch`], with `now` carried to
    /// the shard Controllers for their trace events.
    pub fn ingest_cpu_batch_at(&mut self, now: SimTime, entries: &[CpuStatsEntry]) {
        for e in entries {
            let shard = self.shard_for(e.container);
            self.split_scratch[shard].push(*e);
        }
        for shard in 0..self.handles.len() {
            if self.split_scratch[shard].is_empty() {
                continue;
            }
            let replacement = self.take_entry_buf(shard);
            let batch = std::mem::replace(&mut self.split_scratch[shard], replacement);
            self.send_work(
                shard,
                ShardMsg::Batch {
                    now,
                    entries: batch,
                },
            );
        }
    }

    /// Advances time on every shard: grant retries and the reclaim
    /// schedule run shard-locally; resulting commands appear in the next
    /// drain (duplicate cluster-wide sweeps are deduplicated there).
    pub fn tick(&mut self, now: SimTime) {
        if S::ENABLED {
            self.last_now = now;
        }
        for shard in 0..self.handles.len() {
            self.send_work(shard, ShardMsg::Tick { now });
        }
    }

    /// Ingests an Agent's reclamation report.
    ///
    /// Entries are routed to each container's home shard; every shard
    /// receives a report (even an empty slice) because a report is also
    /// the signal to retry pending OOMs, whichever shard holds them —
    /// exactly as [`Controller::on_reclaim_report`] retries on any
    /// report.
    pub fn on_reclaim_report(&mut self, now: SimTime, entries: &[ReclaimEntry]) {
        if S::ENABLED {
            self.last_now = now;
        }
        let mut slices: Vec<Vec<ReclaimEntry>> =
            (0..self.handles.len()).map(|_| Vec::new()).collect();
        for e in entries {
            slices[self.shard_for(e.container)].push(*e);
        }
        for (shard, entries) in slices.into_iter().enumerate() {
            self.send_work(shard, ShardMsg::ReclaimReport { now, entries });
        }
    }

    /// Collects every shard's accumulated actions into `out`, in shard
    /// order, *appending without clearing* — the same caller-owned-buffer
    /// contract as [`Controller::handle_into`]. In steady state the
    /// drain allocates nothing: each shard's buffer is swapped against a
    /// spare and recycled.
    ///
    /// Identical cluster-wide [`ToAgent::ReclaimMemory`] commands are
    /// deduplicated within one drain: when all N shards launch their
    /// periodic sweep at the same tick, the Agents must see (and the
    /// wire must carry) one sweep, as under a sequential Controller.
    pub fn drain_actions_into(&mut self, out: &mut Vec<Action>) {
        for shard in 0..self.handles.len() {
            if S::ENABLED {
                self.sink.emit(
                    self.last_now,
                    TraceEventKind::ShardDequeue {
                        shard: shard as u32,
                        drained: self.queue_depth[shard],
                    },
                );
                self.queue_depth[shard] = 0;
            }
            let spare = std::mem::take(&mut self.spares[shard]);
            self.handles[shard].send(ShardMsg::Drain { spare });
        }
        self.seen_reclaims.clear();
        for shard in 0..self.handles.len() {
            let ShardReply::Actions(mut actions) = self.handles[shard].recv() else {
                unreachable!("drain replies Actions");
            };
            for a in &actions {
                if let Action::Agent {
                    node,
                    cmd: ToAgent::ReclaimMemory { delta_bytes },
                } = a
                {
                    if self.seen_reclaims.contains(&(*node, *delta_bytes)) {
                        continue;
                    }
                    self.seen_reclaims.push((*node, *delta_bytes));
                }
                out.push(*a);
            }
            actions.clear();
            self.spares[shard] = actions;
        }
    }

    /// Convenience wrapper over [`ShardedController::drain_actions_into`]
    /// that allocates a fresh vector.
    pub fn drain_actions(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        self.drain_actions_into(&mut out);
        out
    }

    fn query(&self, shard: usize, q: ShardQuery) -> ShardReply<S> {
        self.handles[shard].send(ShardMsg::Query(q));
        self.handles[shard].recv()
    }

    /// Work messages queued to each shard since its last drain, in shard
    /// order. All zeros unless `S::ENABLED` (the counters exist for the
    /// shard-channel trace events).
    pub fn queue_depths(&self) -> &[u32] {
        &self.queue_depth
    }

    /// Aggregate lifetime counters, merged across shards with
    /// [`ControllerStats::merge`] (see its note on `reclaim_sweeps`).
    pub fn stats(&self) -> ControllerStats {
        let mut total = ControllerStats::default();
        for s in self.per_shard_stats() {
            total.merge(&s);
        }
        total
    }

    /// Lifetime counters of each shard, in shard order.
    pub fn per_shard_stats(&self) -> Vec<ControllerStats> {
        (0..self.handles.len())
            .map(|s| match self.query(s, ShardQuery::Stats) {
                ShardReply::Stats(st) => st,
                _ => unreachable!("stats query replies Stats"),
            })
            .collect()
    }

    /// The container's current CPU quota, from its home shard's books.
    pub fn quota_of(&self, container: ContainerId) -> Option<f64> {
        match self.query(self.shard_for(container), ShardQuery::Quota(container)) {
            ShardReply::Quota(q) => q,
            _ => unreachable!("quota query replies Quota"),
        }
    }

    /// The container's current memory limit, from its home shard's books.
    pub fn mem_limit_of(&self, container: ContainerId) -> Option<u64> {
        match self.query(self.shard_for(container), ShardQuery::MemLimit(container)) {
            ShardReply::MemLimit(l) => l,
            _ => unreachable!("mem-limit query replies MemLimit"),
        }
    }

    /// Σ tracked CPU quotas of `app`'s containers on its home shard.
    pub fn tracked_cpu_sum(&self, app: AppId) -> f64 {
        match self.query(self.route_of(app), ShardQuery::TrackedCpu(app)) {
            ShardReply::F64(v) => v,
            _ => unreachable!("tracked-cpu query replies F64"),
        }
    }

    /// Σ tracked memory limits of `app`'s containers on its home shard.
    pub fn tracked_mem_sum(&self, app: AppId) -> u64 {
        match self.query(self.route_of(app), ShardQuery::TrackedMem(app)) {
            ShardReply::U64(v) => v,
            _ => unreachable!("tracked-mem query replies U64"),
        }
    }

    /// A snapshot of `app`'s Distributed Container pool books.
    pub fn app_pool(&self, app: AppId) -> Option<PoolSnapshot> {
        match self.query(self.route_of(app), ShardQuery::PoolLimits(app)) {
            ShardReply::PoolLimits(p) => p,
            _ => unreachable!("pool query replies PoolLimits"),
        }
    }

    /// Total memory grants awaiting an Agent ack, across shards.
    pub fn pending_grant_count(&self) -> usize {
        (0..self.handles.len())
            .map(|s| match self.query(s, ShardQuery::PendingGrants) {
                ShardReply::Pending(n) => n,
                _ => unreachable!("pending query replies Pending"),
            })
            .sum()
    }

    /// CPU time each shard spent inside batch ingest, in shard order.
    ///
    /// This is the per-shard critical path of telemetry processing: on a
    /// machine with one core per shard, aggregate ingest throughput is
    /// `total entries / max(per-shard busy)`. The capacity benchmark
    /// (`overhead_controller --threads`) reports exactly that quotient,
    /// which is also meaningful on CPU-starved CI hosts where wall-clock
    /// speedups cannot materialise.
    pub fn ingest_busy_per_shard(&self) -> Vec<Duration> {
        (0..self.handles.len())
            .map(|s| match self.query(s, ShardQuery::IngestBusy) {
                ShardReply::Busy(d) => d,
                _ => unreachable!("busy query replies Busy"),
            })
            .collect()
    }

    /// Test/fault-injection hook: deliver a wire message directly to
    /// `shard`, bypassing the app-affine router — e.g. a registration
    /// arriving at the wrong shard must be *rejected and counted* in
    /// `register_errors`, never silently absorbed.
    pub fn inject_wire_to_shard(&self, shard: usize, now: SimTime, msg: ToController) {
        self.handles[shard].send(ShardMsg::Wire { now, msg });
    }
}

impl<S: TraceSink> Drop for ShardedController<S> {
    fn drop(&mut self) {
        for h in &self.handles {
            // The worker may already be gone if it panicked; join below
            // will surface that.
            let _ = h.tx.send(ShardMsg::Shutdown);
        }
        for h in &mut self.handles {
            if let Some(join) = h.join.take() {
                if let Err(panic) = join.join() {
                    if !std::thread::panicking() {
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{CPU_STATS_ENTRY_BYTES, CPU_STATS_HEADER_BYTES};
    use escra_cfs::{CpuPeriodStats, MIB};
    use escra_net::{batch_wire_bytes, BandwidthAccountant};

    fn throttled(quota: f64) -> CpuPeriodStats {
        CpuPeriodStats {
            quota_cores: quota,
            usage_us: quota * 100_000.0,
            unused_runtime_us: 0.0,
            throttled: true,
        }
    }

    fn sharded_with_apps(n_shards: usize, n_apps: u64, per_app: u64) -> ShardedController {
        let mut s = ShardedController::new(EscraConfig::default(), n_shards);
        for a in 0..n_apps {
            s.register_app(AppId::new(a), 8.0, 1024 * MIB);
            for i in 0..per_app {
                let cid = a * per_app + i;
                s.register_container(
                    ContainerId::new(cid),
                    AppId::new(a),
                    NodeId::new(cid % 2),
                    1.0,
                    64 * MIB,
                )
                .unwrap();
            }
        }
        s
    }

    #[test]
    fn routing_is_app_affine() {
        let s = sharded_with_apps(3, 6, 2);
        for a in 0..6u64 {
            assert_eq!(s.route_of(AppId::new(a)), (a % 3) as usize);
            for i in 0..2u64 {
                assert_eq!(
                    s.shard_of_container(ContainerId::new(a * 2 + i)),
                    Some((a % 3) as usize)
                );
            }
        }
    }

    #[test]
    fn registration_bootstraps_cgroups_via_drain() {
        let mut s = sharded_with_apps(2, 2, 1);
        let actions = s.drain_actions();
        // Two containers, two bootstrap commands each.
        assert_eq!(actions.len(), 4);
    }

    #[test]
    fn telemetry_routes_to_the_home_shard_and_drains() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions(); // discard bootstrap
        let quota = s.quota_of(ContainerId::new(1)).unwrap();
        s.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: ContainerId::new(1),
                stats: throttled(quota),
            },
        );
        let actions = s.drain_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            Action::Agent {
                cmd: ToAgent::SetCpuQuota { container, .. },
                ..
            } if container == ContainerId::new(1)
        ));
        assert_eq!(s.stats().quota_updates, 1);
        assert_eq!(s.stats().cpu_stats_ingested, 1);
    }

    #[test]
    fn periodic_sweeps_are_deduplicated_across_shards() {
        let mut s = sharded_with_apps(4, 4, 1);
        s.drain_actions();
        s.tick(SimTime::from_secs(5));
        let actions = s.drain_actions();
        // 4 shards each launch a sweep over both nodes; the drain must
        // carry each node's command once.
        let reclaims: Vec<_> = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Agent {
                        cmd: ToAgent::ReclaimMemory { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(reclaims.len(), 2, "one per node, not one per shard");
        // Each shard still counted its own sweep (documented divergence).
        assert_eq!(s.stats().reclaim_sweeps, 4);
    }

    #[test]
    fn batch_fan_out_is_charged_one_envelope() {
        // A 4-entry batch spanning both shards is one datagram on the
        // wire: the embedding charges `wire_bytes()` once before routing
        // and the router's fan-out adds nothing.
        let mut s = sharded_with_apps(2, 4, 1);
        s.drain_actions();
        let entries: Vec<CpuStatsEntry> = (0..4u64)
            .map(|i| CpuStatsEntry {
                container: ContainerId::new(i),
                stats: throttled(1.0),
            })
            .collect();
        let msg = ToController::CpuStatsBatch {
            node: NodeId::new(0),
            entries,
        };
        let mut acc = BandwidthAccountant::new();
        acc.record(SimTime::ZERO, msg.wire_bytes());
        s.handle(SimTime::ZERO, msg);
        assert_eq!(
            acc.total_bytes(),
            batch_wire_bytes(CPU_STATS_HEADER_BYTES, CPU_STATS_ENTRY_BYTES, 4)
        );
        assert_eq!(s.stats().cpu_stats_ingested, 4);
    }

    #[test]
    fn unknown_telemetry_is_counted_and_ignored_like_sequential() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions();
        s.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: ContainerId::new(99),
                stats: throttled(1.0),
            },
        );
        assert!(s.drain_actions().is_empty());
        assert_eq!(s.stats().cpu_stats_ingested, 1);
    }

    #[test]
    fn wrong_shard_registration_is_rejected_and_counted() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions();
        // App 1's home is shard 1; inject its registration at shard 0.
        let wrong = ToController::Register {
            container: ContainerId::new(7),
            app: AppId::new(1),
            node: NodeId::new(0),
        };
        s.inject_wire_to_shard(0, SimTime::ZERO, wrong);
        assert!(s.drain_actions().is_empty(), "no bootstrap for a reject");
        let per_shard = s.per_shard_stats();
        assert_eq!(per_shard[0].register_errors, 1);
        assert_eq!(per_shard[1].register_errors, 0);
        assert_eq!(s.stats().register_errors, 1);
    }

    #[test]
    fn single_shard_matches_sequential_controller_exactly() {
        // With one shard the router is a pass-through: same actions, same
        // seqs, same stats as the sequential Controller.
        let mut seq = Controller::new(EscraConfig::default());
        let mut sharded = ShardedController::new(EscraConfig::default(), 1);
        seq.register_app(AppId::new(0), 8.0, 1024 * MIB);
        sharded.register_app(AppId::new(0), 8.0, 1024 * MIB);
        let mut seq_actions = seq
            .register_container(
                ContainerId::new(0),
                AppId::new(0),
                NodeId::new(0),
                1.0,
                64 * MIB,
            )
            .unwrap();
        sharded
            .register_container(
                ContainerId::new(0),
                AppId::new(0),
                NodeId::new(0),
                1.0,
                64 * MIB,
            )
            .unwrap();
        for round in 0..30u64 {
            let now = SimTime::from_millis(round * 100);
            let quota = seq.allocator().quota_of(ContainerId::new(0)).unwrap();
            let msg = ToController::CpuStats {
                container: ContainerId::new(0),
                stats: throttled(quota),
            };
            seq.handle_into(now, msg.clone(), &mut seq_actions);
            sharded.handle(now, msg);
            seq_actions.extend(seq.tick(now));
            sharded.tick(now);
        }
        let sharded_actions = sharded.drain_actions();
        assert_eq!(seq_actions, sharded_actions);
        assert_eq!(seq.stats(), sharded.stats());
    }

    #[test]
    fn deregister_returns_resources_and_clears_routing() {
        let mut s = sharded_with_apps(2, 2, 1);
        s.drain_actions();
        s.deregister_container(ContainerId::new(0)).unwrap();
        assert_eq!(s.shard_of_container(ContainerId::new(0)), None);
        assert!(matches!(
            s.deregister_container(ContainerId::new(0)),
            Err(AllocatorError::UnknownContainer(_))
        ));
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let mut a = ControllerStats {
            cpu_stats_ingested: 1,
            quota_updates: 2,
            scale_ups: 3,
            scale_downs: 4,
            mem_grants: 5,
            ooms_absorbed: 6,
            ooms_fatal: 7,
            reclaim_sweeps: 8,
            reclaimed_bytes: 9,
            grant_retries: 10,
            grant_reconciles: 11,
            grants_abandoned: 12,
            register_errors: 13,
            ack_mismatches: 14,
        };
        let b = a;
        a.merge(&b);
        // Full-struct equality: a struct literal with every field named
        // means adding a counter without updating merge (and this
        // expectation) fails to compile, not silently under-merges.
        assert_eq!(
            a,
            ControllerStats {
                cpu_stats_ingested: 2,
                quota_updates: 4,
                scale_ups: 6,
                scale_downs: 8,
                mem_grants: 10,
                ooms_absorbed: 12,
                ooms_fatal: 14,
                reclaim_sweeps: 16,
                reclaimed_bytes: 18,
                grant_retries: 20,
                grant_reconciles: 22,
                grants_abandoned: 24,
                register_errors: 26,
                ack_mismatches: 28,
            }
        );
    }
}
