//! The Application Deployer (paper §IV-A).
//!
//! Ingests a Distributed Container configuration — a set of container
//! specs plus global CPU/memory limits — sends the global limits to the
//! Controller, and deploys the containers with initial limits
//!
//! ```text
//! cpu_init = global_cpu_limit / n_containers            (eq. 1)
//! mem_init = global_mem_limit · σ / n_containers        (eq. 2)
//! ```
//!
//! where σ withholds a fraction of the global memory for OOM grants.

use crate::config::EscraConfig;
use crate::controller::{Action, Controller};
use escra_cluster::{AppId, Cluster, ClusterError, ContainerId, ContainerSpec};
use escra_metrics::trace::TraceSink;
use escra_simcore::time::SimTime;

/// A Distributed Container configuration: the "set of YAML files" of
/// paper Fig. 1 ①.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// The application id.
    pub app: AppId,
    /// Human-readable name.
    pub name: String,
    /// Global (aggregate) CPU limit Ωl, in cores.
    pub global_cpu_cores: f64,
    /// Global (aggregate) memory limit, in bytes.
    pub global_mem_bytes: u64,
    /// Container specs to deploy. Their per-container limits are
    /// *overwritten* by the deployer's initial-limit formulas.
    pub containers: Vec<ContainerSpec>,
}

/// Initial CPU limit per container (eq. 1).
pub fn initial_cpu_limit(global_cpu_cores: f64, n_containers: usize) -> f64 {
    assert!(n_containers > 0, "application must have containers");
    global_cpu_cores / n_containers as f64
}

/// Initial memory limit per container (eq. 2).
pub fn initial_mem_limit(global_mem_bytes: u64, sigma: f64, n_containers: usize) -> u64 {
    assert!(n_containers > 0, "application must have containers");
    assert!((0.0..=1.0).contains(&sigma), "σ must be in [0,1]");
    ((global_mem_bytes as f64 * sigma) / n_containers as f64) as u64
}

/// Deploys an application under Escra management: registers the app's
/// global limits with the Controller, deploys every container with the
/// initial-limit formulas, and registers each container (the Container
/// Watcher + registration syscall path, compressed into one step — the
/// paper notes registration does not block container start-up).
///
/// Returns the deployed container ids and the bootstrap [`Action`]s the
/// Controller issued (to be applied through the Agents).
///
/// # Errors
///
/// Propagates [`ClusterError`] when placement fails.
///
/// # Panics
///
/// Panics if the config has no containers.
pub fn deploy_app<S: TraceSink>(
    cfg: &EscraConfig,
    config: &AppConfig,
    cluster: &mut Cluster,
    controller: &mut Controller<S>,
    now: SimTime,
) -> Result<(Vec<ContainerId>, Vec<Action>), ClusterError> {
    let n = config.containers.len();
    assert!(n > 0, "application {} has no containers", config.name);
    controller.register_app(config.app, config.global_cpu_cores, config.global_mem_bytes);

    let cpu_init = initial_cpu_limit(config.global_cpu_cores, n);
    let mem_init = initial_mem_limit(config.global_mem_bytes, cfg.sigma, n);

    let mut ids = Vec::with_capacity(n);
    let mut actions = Vec::new();
    for spec in &config.containers {
        // The deployer overwrites per-container limits with the formula
        // values, but a container's limit can never sit below its
        // resident set (the kernel would refuse the cgroup write).
        let mem = mem_init.max(spec.base_mem_bytes + cfg.min_mem_bytes);
        let mut spec = spec.clone();
        spec.app = config.app;
        spec.cpu_limit_cores = cpu_init.max(cfg.min_quota_cores);
        spec.mem_limit_bytes = mem;
        let id = cluster.deploy(spec, now)?;
        let node = cluster.container(id).expect("just deployed").node();
        if let Ok(mut acts) = controller.register_container(id, config.app, node, cpu_init, mem) {
            actions.append(&mut acts);
        }
        ids.push(id);
    }
    Ok((ids, actions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_cfs::MIB;
    use escra_cluster::NodeSpec;

    fn config(n: usize) -> AppConfig {
        AppConfig {
            app: AppId::new(0),
            name: "test-app".into(),
            global_cpu_cores: 8.0,
            global_mem_bytes: 2048 * MIB,
            containers: (0..n)
                .map(|i| ContainerSpec::new(format!("c{i}"), AppId::new(0)).with_base_mem(32 * MIB))
                .collect(),
        }
    }

    #[test]
    fn formulas_match_paper() {
        assert_eq!(initial_cpu_limit(8.0, 4), 2.0);
        assert_eq!(initial_mem_limit(1000, 0.8, 4), 200);
    }

    #[test]
    fn deploy_registers_everything() {
        let cfg = EscraConfig::default();
        let mut cluster = Cluster::new(vec![NodeSpec {
            cores: 16,
            mem_bytes: 32 << 30,
        }]);
        let mut controller = Controller::new(cfg.clone());
        let (ids, actions) = deploy_app(
            &cfg,
            &config(4),
            &mut cluster,
            &mut controller,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(ids.len(), 4);
        assert_eq!(actions.len(), 8); // quota + mem per container
        assert_eq!(controller.allocator().container_count(), 4);
        // Initial CPU: 8/4 = 2 cores each, fully allocating the pool.
        for id in &ids {
            assert_eq!(controller.allocator().quota_of(*id), Some(2.0));
            assert_eq!(cluster.container(*id).unwrap().spec().cpu_limit_cores, 2.0);
        }
        let pool = controller.allocator().app_pool(AppId::new(0)).unwrap();
        assert!(pool.unallocated_cpu_cores() < 1e-9);
        // Memory: σ=0.8 -> 0.8*2048/4 = 409 MiB each; 20% withheld.
        assert!(pool.unallocated_mem_bytes() >= (2048.0 * 0.2) as u64 * MIB);
    }

    #[test]
    fn mem_floor_respects_resident_set() {
        let cfg = EscraConfig::default();
        let mut c = config(4);
        c.global_mem_bytes = 64 * MIB; // formula would give 12.8 MiB each
        let mut cluster = Cluster::new(vec![NodeSpec {
            cores: 16,
            mem_bytes: 32 << 30,
        }]);
        let mut controller = Controller::new(cfg.clone());
        let (ids, _) = deploy_app(&cfg, &c, &mut cluster, &mut controller, SimTime::ZERO).unwrap();
        for id in ids {
            let limit = cluster.container(id).unwrap().mem.limit_bytes();
            assert!(limit >= 32 * MIB + cfg.min_mem_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "has no containers")]
    fn empty_app_panics() {
        let cfg = EscraConfig::default();
        let mut cluster = Cluster::new(vec![NodeSpec {
            cores: 4,
            mem_bytes: 8 << 30,
        }]);
        let mut controller = Controller::new(cfg.clone());
        let empty = AppConfig {
            app: AppId::new(0),
            name: "empty".into(),
            global_cpu_cores: 1.0,
            global_mem_bytes: MIB,
            containers: vec![],
        };
        let _ = deploy_app(&cfg, &empty, &mut cluster, &mut controller, SimTime::ZERO);
    }
}
