//! The per-node Escra Agent (paper Fig. 1, ⑤).
//!
//! Like the kubelet, one Agent runs on every worker node. It applies
//! resource updates sent by the Controller — dynamically, without
//! container restarts — and executes the memory-reclamation sweep,
//! reporting reclaimed bytes ψ per container.

use crate::telemetry::ToAgent;
use escra_cluster::{Cluster, ContainerId, NodeId};
use escra_metrics::fingerprint::StateHash;
use escra_metrics::trace::{NoopSink, TraceEventKind, TraceSink};
use escra_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of one reclamation sweep entry: the container's limit after the
/// shrink and the bytes reclaimed (ψ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclaimEntry {
    /// The container that was shrunk.
    pub container: ContainerId,
    /// Its new memory limit.
    pub new_limit_bytes: u64,
    /// Bytes reclaimed from it (ψ).
    pub psi_bytes: u64,
}

/// Outcome of applying a Controller command on the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentReport {
    /// A limit update was applied (or ignored for an unknown/dead container).
    Applied,
    /// The command's sequence number did not advance past the last one
    /// applied for that container — a duplicated or reordered delivery
    /// — so it was discarded.
    Stale,
    /// A reclamation sweep finished with these per-container results.
    Reclaimed(Vec<ReclaimEntry>),
}

/// The per-node agent process.
///
/// The agent owns no containers, only a node identity, and manipulates
/// cgroups through the cluster — mirroring how the real agent issues the
/// custom syscalls on its host. It does keep one piece of state per
/// container: the highest command sequence number applied so far, so
/// that a faulty network delivering commands late, twice, or out of
/// order can never roll a limit back to an older value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agent {
    node: NodeId,
    cpu_seq: BTreeMap<ContainerId, u64>,
    mem_seq: BTreeMap<ContainerId, u64>,
    stale_discarded: u64,
    valve_clamps: u64,
}

impl Agent {
    /// Creates the agent for `node`.
    pub fn new(node: NodeId) -> Self {
        Agent {
            node,
            cpu_seq: BTreeMap::new(),
            mem_seq: BTreeMap::new(),
            stale_discarded: 0,
            valve_clamps: 0,
        }
    }

    /// The node this agent manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of commands discarded as stale (duplicate or reordered).
    pub fn stale_discarded(&self) -> u64 {
        self.stale_discarded
    }

    /// Number of memory-limit updates clamped up by the safety valve.
    pub fn valve_clamps(&self) -> u64 {
        self.valve_clamps
    }

    /// Whether `seq` is not newer than the last applied entry in `map`.
    fn is_stale(map: &BTreeMap<ContainerId, u64>, container: ContainerId, seq: u64) -> bool {
        map.get(&container).is_some_and(|&last| seq <= last)
    }

    /// Drops all per-container state (the high-water seq entries) for a
    /// torn-down container.
    ///
    /// Must be called when a container is terminated: a later container
    /// reusing the same `ContainerId` — e.g. registered by a different
    /// controller shard whose `next_seq` space starts over — would
    /// otherwise inherit the old high-water mark and have every command
    /// silently stale-discarded until the new seq space catches up. It
    /// also keeps the maps from growing without bound under serverless
    /// churn.
    pub fn forget_container(&mut self, container: ContainerId) {
        self.cpu_seq.remove(&container);
        self.mem_seq.remove(&container);
    }

    /// Number of containers with a recorded high-water seq (either
    /// resource); teardown bookkeeping should drive this back down.
    pub fn tracked_containers(&self) -> usize {
        let mut ids: Vec<ContainerId> = self.cpu_seq.keys().copied().collect();
        ids.extend(self.mem_seq.keys().copied());
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Feeds the agent's behaviourally relevant state (node id and both
    /// seq maps; the audit counters never influence decisions) into a
    /// canonical state hash, for the model checker's visited set.
    pub fn fingerprint_into(&self, h: &mut StateHash) {
        h.write_u64(self.node.as_u64());
        h.write_u64(self.cpu_seq.len() as u64);
        for (c, s) in &self.cpu_seq {
            h.write_u64(c.as_u64());
            h.write_u64(*s);
        }
        h.write_u64(self.mem_seq.len() as u64);
        for (c, s) in &self.mem_seq {
            h.write_u64(c.as_u64());
            h.write_u64(*s);
        }
    }

    /// Applies a Controller command to this node's containers.
    ///
    /// Commands addressed to containers that no longer exist are ignored
    /// (they may have been terminated while the RPC was in flight).
    ///
    /// Untraced compatibility wrapper over [`Agent::apply_traced`];
    /// trace events are discarded.
    pub fn apply(&mut self, cluster: &mut Cluster, cmd: ToAgent) -> AgentReport {
        self.apply_traced(SimTime::ZERO, cluster, cmd, &mut NoopSink)
    }

    /// [`Agent::apply`] with a [`TraceSink`]: stale discards, safety
    /// valve clamps and per-container reclaim shrinks are recorded,
    /// stamped at `now`. The Agent does not own the sink (it stays
    /// `Clone + Eq` state), so the driver passes one in per call.
    pub fn apply_traced<S: TraceSink>(
        &mut self,
        now: SimTime,
        cluster: &mut Cluster,
        cmd: ToAgent,
        sink: &mut S,
    ) -> AgentReport {
        match cmd {
            ToAgent::SetCpuQuota {
                container,
                quota_cores,
                seq,
            } => {
                if Self::is_stale(&self.cpu_seq, container, seq) {
                    self.stale_discarded += 1;
                    if S::ENABLED {
                        sink.emit(
                            now,
                            TraceEventKind::AgentStaleDrop {
                                container: container.as_u64(),
                            },
                        );
                    }
                    return AgentReport::Stale;
                }
                self.cpu_seq.insert(container, seq);
                if let Some(c) = cluster.container_mut(container) {
                    if c.node() == self.node {
                        c.cpu.set_quota_cores(quota_cores);
                    }
                }
                AgentReport::Applied
            }
            ToAgent::SetMemLimit {
                container,
                limit_bytes,
                seq,
            } => {
                if Self::is_stale(&self.mem_seq, container, seq) {
                    self.stale_discarded += 1;
                    if S::ENABLED {
                        sink.emit(
                            now,
                            TraceEventKind::AgentStaleDrop {
                                container: container.as_u64(),
                            },
                        );
                    }
                    return AgentReport::Stale;
                }
                self.mem_seq.insert(container, seq);
                if let Some(c) = cluster.container_mut(container) {
                    if c.node() == self.node {
                        // Safety valve: when the Controller is cut off it
                        // may act on a stale picture and ask for a limit
                        // below what the container already uses. Applying
                        // that verbatim would OOM-kill on the spot, so
                        // the agent never shrinks below live usage — the
                        // next reconciliation re-synchronises the books.
                        let usage = c.mem.usage_bytes();
                        if limit_bytes < usage {
                            self.valve_clamps += 1;
                            if S::ENABLED {
                                sink.emit(
                                    now,
                                    TraceEventKind::AgentValveClamp {
                                        container: container.as_u64(),
                                        limit_bytes,
                                        usage_bytes: usage,
                                    },
                                );
                            }
                        }
                        c.mem.set_limit_bytes(limit_bytes.max(usage).max(1));
                    }
                }
                AgentReport::Applied
            }
            ToAgent::ReclaimMemory { delta_bytes } => {
                AgentReport::Reclaimed(self.reclaim_sweep_traced(now, cluster, delta_bytes, sink))
            }
        }
    }

    /// The reclamation sweep (paper §IV-C): for every container `C(i)` on
    /// this node with `limit > usage + δ`, shrink the limit to
    /// `usage + δ` and record ψ.
    pub fn reclaim_sweep(&self, cluster: &mut Cluster, delta_bytes: u64) -> Vec<ReclaimEntry> {
        self.reclaim_sweep_traced(SimTime::ZERO, cluster, delta_bytes, &mut NoopSink)
    }

    /// [`Agent::reclaim_sweep`] with a [`TraceSink`]: one
    /// [`TraceEventKind::ReclaimShrink`] per container shrunk.
    pub fn reclaim_sweep_traced<S: TraceSink>(
        &self,
        now: SimTime,
        cluster: &mut Cluster,
        delta_bytes: u64,
        sink: &mut S,
    ) -> Vec<ReclaimEntry> {
        let ids = cluster.running_on(self.node);
        let mut out = Vec::new();
        for id in ids {
            if let Some(c) = cluster.container_mut(id) {
                let usage = c.mem.usage_bytes();
                let limit = c.mem.limit_bytes();
                if limit > usage + delta_bytes {
                    let psi = c.mem.shrink_to(usage + delta_bytes);
                    if psi > 0 {
                        if S::ENABLED {
                            sink.emit(
                                now,
                                TraceEventKind::ReclaimShrink {
                                    container: id.as_u64(),
                                    new_limit_bytes: c.mem.limit_bytes(),
                                    psi_bytes: psi,
                                },
                            );
                        }
                        out.push(ReclaimEntry {
                            container: id,
                            new_limit_bytes: c.mem.limit_bytes(),
                            psi_bytes: psi,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_cfs::MIB;
    use escra_cluster::{AppId, ContainerSpec, NodeSpec};
    use escra_simcore::time::SimTime;

    fn cluster_with_two() -> (Cluster, ContainerId, ContainerId) {
        let mut cl = Cluster::new(vec![NodeSpec {
            cores: 8,
            mem_bytes: 16 << 30,
        }]);
        let spec = |n: &str| {
            ContainerSpec::new(n, AppId::new(0))
                .with_mem_limit(256 * MIB)
                .with_base_mem(64 * MIB)
        };
        let a = cl.deploy(spec("a"), SimTime::ZERO).unwrap();
        let b = cl.deploy(spec("b"), SimTime::ZERO).unwrap();
        cl.tick(SimTime::from_secs(3));
        (cl, a, b)
    }

    #[test]
    fn sets_cpu_quota_without_restart() {
        let (mut cl, a, _) = cluster_with_two();
        let mut agent = Agent::new(NodeId::new(0));
        let report = agent.apply(
            &mut cl,
            ToAgent::SetCpuQuota {
                container: a,
                quota_cores: 3.5,
                seq: 1,
            },
        );
        assert_eq!(report, AgentReport::Applied);
        assert_eq!(cl.container(a).unwrap().cpu.quota_cores(), 3.5);
        assert!(cl.container(a).unwrap().is_running()); // no restart
    }

    #[test]
    fn ignores_other_nodes_containers() {
        let mut cl = Cluster::new(vec![
            NodeSpec {
                cores: 4,
                mem_bytes: 8 << 30,
            },
            NodeSpec {
                cores: 4,
                mem_bytes: 8 << 30,
            },
        ]);
        let a = cl
            .deploy(ContainerSpec::new("a", AppId::new(0)), SimTime::ZERO)
            .unwrap(); // node 0
        let mut wrong_agent = Agent::new(NodeId::new(1));
        wrong_agent.apply(
            &mut cl,
            ToAgent::SetCpuQuota {
                container: a,
                quota_cores: 9.0,
                seq: 1,
            },
        );
        assert_eq!(cl.container(a).unwrap().cpu.quota_cores(), 1.0);
    }

    #[test]
    fn reclaim_sweep_honours_delta() {
        let (mut cl, a, b) = cluster_with_two();
        // a: usage 64 MiB, limit 256 -> shrink to 64+50=114, ψ=142.
        // b: bump usage to 240 -> 240+50 > 256, untouched.
        cl.container_mut(b).unwrap().mem.try_charge(176 * MIB);
        let mut agent = Agent::new(NodeId::new(0));
        let report = agent.apply(
            &mut cl,
            ToAgent::ReclaimMemory {
                delta_bytes: 50 * MIB,
            },
        );
        match report {
            AgentReport::Reclaimed(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].container, a);
                assert_eq!(entries[0].new_limit_bytes, 114 * MIB);
                assert_eq!(entries[0].psi_bytes, 142 * MIB);
            }
            other => panic!("expected reclaim report, got {other:?}"),
        }
        assert_eq!(cl.container(b).unwrap().mem.limit_bytes(), 256 * MIB);
    }

    #[test]
    fn reclaim_skips_starting_containers() {
        let mut cl = Cluster::new(vec![NodeSpec {
            cores: 4,
            mem_bytes: 8 << 30,
        }]);
        let _a = cl
            .deploy(ContainerSpec::new("a", AppId::new(0)), SimTime::ZERO)
            .unwrap();
        // No tick: container still cold-starting.
        let agent = Agent::new(NodeId::new(0));
        let entries = agent.reclaim_sweep(&mut cl, 0);
        assert!(entries.is_empty());
    }

    #[test]
    fn unknown_container_update_is_ignored() {
        let (mut cl, _, _) = cluster_with_two();
        let mut agent = Agent::new(NodeId::new(0));
        let report = agent.apply(
            &mut cl,
            ToAgent::SetMemLimit {
                container: ContainerId::new(999),
                limit_bytes: MIB,
                seq: 1,
            },
        );
        assert_eq!(report, AgentReport::Applied);
    }

    #[test]
    fn stale_and_duplicate_commands_are_discarded() {
        let (mut cl, a, _) = cluster_with_two();
        let mut agent = Agent::new(NodeId::new(0));
        let quota = |q: f64, seq: u64| ToAgent::SetCpuQuota {
            container: a,
            quota_cores: q,
            seq,
        };
        assert_eq!(agent.apply(&mut cl, quota(4.0, 2)), AgentReport::Applied);
        // A reordered older command must not roll the quota back...
        assert_eq!(agent.apply(&mut cl, quota(1.0, 1)), AgentReport::Stale);
        // ...nor may a duplicated delivery of the same command reapply.
        assert_eq!(agent.apply(&mut cl, quota(4.0, 2)), AgentReport::Stale);
        assert_eq!(cl.container(a).unwrap().cpu.quota_cores(), 4.0);
        assert_eq!(agent.stale_discarded(), 2);
        // A genuinely newer command still applies.
        assert_eq!(agent.apply(&mut cl, quota(2.0, 3)), AgentReport::Applied);
        assert_eq!(cl.container(a).unwrap().cpu.quota_cores(), 2.0);
    }

    #[test]
    fn seq_spaces_are_per_container_and_per_resource() {
        let (mut cl, a, b) = cluster_with_two();
        let mut agent = Agent::new(NodeId::new(0));
        let cmd = ToAgent::SetCpuQuota {
            container: a,
            quota_cores: 4.0,
            seq: 5,
        };
        assert_eq!(agent.apply(&mut cl, cmd), AgentReport::Applied);
        // Same seq for a *different container* is fine...
        let cmd = ToAgent::SetCpuQuota {
            container: b,
            quota_cores: 3.0,
            seq: 5,
        };
        assert_eq!(agent.apply(&mut cl, cmd), AgentReport::Applied);
        // ...and so is a lower seq for a different *resource* of `a`.
        let cmd = ToAgent::SetMemLimit {
            container: a,
            limit_bytes: 300 * MIB,
            seq: 2,
        };
        assert_eq!(agent.apply(&mut cl, cmd), AgentReport::Applied);
    }

    /// Regression: a reused `ContainerId` must not inherit the previous
    /// tenant's high-water seq. Before `forget_container` existed, the
    /// agent kept the old entries forever, so a fresh controller shard
    /// starting its seq space at 1 had every command stale-discarded
    /// until `next_seq` overtook the stale mark.
    #[test]
    fn container_id_reuse_starts_a_fresh_seq_space() {
        let (mut cl, a, _) = cluster_with_two();
        let mut agent = Agent::new(NodeId::new(0));
        // First tenant of id `a` ends its life at a high seq.
        let cmd = |q: f64, seq: u64| ToAgent::SetCpuQuota {
            container: a,
            quota_cores: q,
            seq,
        };
        assert_eq!(agent.apply(&mut cl, cmd(4.0, 100)), AgentReport::Applied);
        assert_eq!(
            agent.apply(
                &mut cl,
                ToAgent::SetMemLimit {
                    container: a,
                    limit_bytes: 300 * MIB,
                    seq: 101,
                }
            ),
            AgentReport::Applied
        );
        assert_eq!(agent.tracked_containers(), 1);

        // Teardown: the driver terminates the container and tells the
        // agent to drop its per-container state.
        let _ = cl.terminate(a, SimTime::from_secs(5));
        agent.forget_container(a);
        assert_eq!(agent.tracked_containers(), 0);

        // A new tenant reuses id `a` under a controller whose seq space
        // starts over (e.g. a different shard). Without the forget, seq 1
        // and 2 would be "stale" against the dead tenant's 100/101.
        let b = cl
            .deploy(
                ContainerSpec::new("a2", AppId::new(1)).with_base_mem(64 * MIB),
                SimTime::from_secs(6),
            )
            .unwrap();
        cl.tick(SimTime::from_secs(9));
        let reuse = ContainerId::new(a.as_u64()); // same raw id semantics
        assert_eq!(
            agent.apply(
                &mut cl,
                ToAgent::SetCpuQuota {
                    container: reuse,
                    quota_cores: 2.0,
                    seq: 1,
                }
            ),
            AgentReport::Applied,
            "fresh tenant's first command must not be stale-discarded"
        );
        assert_eq!(
            agent.apply(
                &mut cl,
                ToAgent::SetMemLimit {
                    container: reuse,
                    limit_bytes: 128 * MIB,
                    seq: 2,
                }
            ),
            AgentReport::Applied
        );
        assert_eq!(agent.stale_discarded(), 0);
        let _ = b;
    }

    #[test]
    fn safety_valve_never_shrinks_below_live_usage() {
        let (mut cl, a, _) = cluster_with_two();
        // Usage is 64 MiB; a cut-off Controller asks for a 32 MiB limit.
        let mut agent = Agent::new(NodeId::new(0));
        let report = agent.apply(
            &mut cl,
            ToAgent::SetMemLimit {
                container: a,
                limit_bytes: 32 * MIB,
                seq: 1,
            },
        );
        assert_eq!(report, AgentReport::Applied);
        let c = cl.container(a).unwrap();
        assert_eq!(c.mem.limit_bytes(), c.mem.usage_bytes());
        assert!(c.is_running(), "valve must prevent the instant OOM kill");
        assert_eq!(agent.valve_clamps(), 1);
    }
}
