//! The per-node Escra Agent (paper Fig. 1, ⑤).
//!
//! Like the kubelet, one Agent runs on every worker node. It applies
//! resource updates sent by the Controller — dynamically, without
//! container restarts — and executes the memory-reclamation sweep,
//! reporting reclaimed bytes ψ per container.

use crate::telemetry::ToAgent;
use escra_cluster::{Cluster, ContainerId, NodeId};
use serde::{Deserialize, Serialize};

/// Result of one reclamation sweep entry: the container's limit after the
/// shrink and the bytes reclaimed (ψ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclaimEntry {
    /// The container that was shrunk.
    pub container: ContainerId,
    /// Its new memory limit.
    pub new_limit_bytes: u64,
    /// Bytes reclaimed from it (ψ).
    pub psi_bytes: u64,
}

/// Outcome of applying a Controller command on the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentReport {
    /// A limit update was applied (or ignored for an unknown/dead container).
    Applied,
    /// A reclamation sweep finished with these per-container results.
    Reclaimed(Vec<ReclaimEntry>),
}

/// The per-node agent process.
///
/// The agent is stateless between commands; it owns no containers, only a
/// node identity, and manipulates cgroups through the cluster — mirroring
/// how the real agent issues the custom syscalls on its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Agent {
    node: NodeId,
}

impl Agent {
    /// Creates the agent for `node`.
    pub fn new(node: NodeId) -> Self {
        Agent { node }
    }

    /// The node this agent manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Applies a Controller command to this node's containers.
    ///
    /// Commands addressed to containers that no longer exist are ignored
    /// (they may have been terminated while the RPC was in flight).
    pub fn apply(&self, cluster: &mut Cluster, cmd: ToAgent) -> AgentReport {
        match cmd {
            ToAgent::SetCpuQuota {
                container,
                quota_cores,
            } => {
                if let Some(c) = cluster.container_mut(container) {
                    if c.node() == self.node {
                        c.cpu.set_quota_cores(quota_cores);
                    }
                }
                AgentReport::Applied
            }
            ToAgent::SetMemLimit {
                container,
                limit_bytes,
            } => {
                if let Some(c) = cluster.container_mut(container) {
                    if c.node() == self.node {
                        c.mem.set_limit_bytes(limit_bytes.max(1));
                    }
                }
                AgentReport::Applied
            }
            ToAgent::ReclaimMemory { delta_bytes } => {
                AgentReport::Reclaimed(self.reclaim_sweep(cluster, delta_bytes))
            }
        }
    }

    /// The reclamation sweep (paper §IV-C): for every container `C(i)` on
    /// this node with `limit > usage + δ`, shrink the limit to
    /// `usage + δ` and record ψ.
    pub fn reclaim_sweep(&self, cluster: &mut Cluster, delta_bytes: u64) -> Vec<ReclaimEntry> {
        let ids = cluster.running_on(self.node);
        let mut out = Vec::new();
        for id in ids {
            if let Some(c) = cluster.container_mut(id) {
                let usage = c.mem.usage_bytes();
                let limit = c.mem.limit_bytes();
                if limit > usage + delta_bytes {
                    let psi = c.mem.shrink_to(usage + delta_bytes);
                    if psi > 0 {
                        out.push(ReclaimEntry {
                            container: id,
                            new_limit_bytes: c.mem.limit_bytes(),
                            psi_bytes: psi,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_cfs::MIB;
    use escra_cluster::{AppId, ContainerSpec, NodeSpec};
    use escra_simcore::time::SimTime;

    fn cluster_with_two() -> (Cluster, ContainerId, ContainerId) {
        let mut cl = Cluster::new(vec![NodeSpec {
            cores: 8,
            mem_bytes: 16 << 30,
        }]);
        let spec = |n: &str| {
            ContainerSpec::new(n, AppId::new(0))
                .with_mem_limit(256 * MIB)
                .with_base_mem(64 * MIB)
        };
        let a = cl.deploy(spec("a"), SimTime::ZERO).unwrap();
        let b = cl.deploy(spec("b"), SimTime::ZERO).unwrap();
        cl.tick(SimTime::from_secs(3));
        (cl, a, b)
    }

    #[test]
    fn sets_cpu_quota_without_restart() {
        let (mut cl, a, _) = cluster_with_two();
        let agent = Agent::new(NodeId::new(0));
        let report = agent.apply(
            &mut cl,
            ToAgent::SetCpuQuota {
                container: a,
                quota_cores: 3.5,
            },
        );
        assert_eq!(report, AgentReport::Applied);
        assert_eq!(cl.container(a).unwrap().cpu.quota_cores(), 3.5);
        assert!(cl.container(a).unwrap().is_running()); // no restart
    }

    #[test]
    fn ignores_other_nodes_containers() {
        let mut cl = Cluster::new(vec![
            NodeSpec { cores: 4, mem_bytes: 8 << 30 },
            NodeSpec { cores: 4, mem_bytes: 8 << 30 },
        ]);
        let a = cl
            .deploy(ContainerSpec::new("a", AppId::new(0)), SimTime::ZERO)
            .unwrap(); // node 0
        let wrong_agent = Agent::new(NodeId::new(1));
        wrong_agent.apply(
            &mut cl,
            ToAgent::SetCpuQuota {
                container: a,
                quota_cores: 9.0,
            },
        );
        assert_eq!(cl.container(a).unwrap().cpu.quota_cores(), 1.0);
    }

    #[test]
    fn reclaim_sweep_honours_delta() {
        let (mut cl, a, b) = cluster_with_two();
        // a: usage 64 MiB, limit 256 -> shrink to 64+50=114, ψ=142.
        // b: bump usage to 240 -> 240+50 > 256, untouched.
        cl.container_mut(b).unwrap().mem.try_charge(176 * MIB);
        let agent = Agent::new(NodeId::new(0));
        let report = agent.apply(
            &mut cl,
            ToAgent::ReclaimMemory {
                delta_bytes: 50 * MIB,
            },
        );
        match report {
            AgentReport::Reclaimed(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].container, a);
                assert_eq!(entries[0].new_limit_bytes, 114 * MIB);
                assert_eq!(entries[0].psi_bytes, 142 * MIB);
            }
            other => panic!("expected reclaim report, got {other:?}"),
        }
        assert_eq!(cl.container(b).unwrap().mem.limit_bytes(), 256 * MIB);
    }

    #[test]
    fn reclaim_skips_starting_containers() {
        let mut cl = Cluster::new(vec![NodeSpec { cores: 4, mem_bytes: 8 << 30 }]);
        let _a = cl
            .deploy(ContainerSpec::new("a", AppId::new(0)), SimTime::ZERO)
            .unwrap();
        // No tick: container still cold-starting.
        let agent = Agent::new(NodeId::new(0));
        let entries = agent.reclaim_sweep(&mut cl, 0);
        assert!(entries.is_empty());
    }

    #[test]
    fn unknown_container_update_is_ignored() {
        let (mut cl, _, _) = cluster_with_two();
        let agent = Agent::new(NodeId::new(0));
        let report = agent.apply(
            &mut cl,
            ToAgent::SetMemLimit {
                container: ContainerId::new(999),
                limit_bytes: MIB,
            },
        );
        assert_eq!(report, AgentReport::Applied);
    }
}
