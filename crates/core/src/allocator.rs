//! The Escra Resource Allocator (paper §IV-D).
//!
//! The "lightweight decision-making component": it keeps the global
//! resource pool per application ([`DistributedContainer`]), ingests
//! per-period CPU telemetry, and decides scale-up / scale-down of
//! container quotas using two sliding-window statistics; it also decides
//! how to satisfy OOM events from the global memory pool.

use crate::config::EscraConfig;
use crate::distributed_container::DistributedContainer;
use escra_cfs::CpuPeriodStats;
use escra_cluster::{AppId, ContainerId, NodeId};
use std::collections::BTreeMap;

/// Sentinel in the direct-mapped container index: "no slab slot".
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// The two §IV-D decision windows of one container, fused.
///
/// Every CPU decision pushes one sample into *both* windows — the
/// throttle indicator and the period's unused runtime — so the two
/// rings advance in lockstep and can share a single set of ring
/// coordinates: one length/head bump and one eviction branch per
/// decision instead of two. The arithmetic is exactly that of the
/// standalone `escra_simcore::window` types this replaces in the slab:
///
/// * throttle side — a one-word bit ring with an exact integer
///   set-bit count ([`escra_simcore::window::BitWindow`]); its mean is
///   provably bit-identical to a `SlidingWindow` fed 0.0/1.0;
/// * unused side — an inline ring whose mean is a fresh oldest-first
///   re-sum of the retained samples on every read. The mean is therefore
///   a pure function of the window *contents*: no incremental running
///   sum whose floating-point value depends on the eviction history (an
///   earlier incremental-sum variant moved a handful of marginal
///   scale-down decisions by an ULP whenever the summation order
///   changed, drifting committed artifacts at display precision). The
///   re-sum touches at most `cap ≤ 24` in-cache f64s and the decision
///   procedure only reads it after its headroom check passes.
#[derive(Debug, Clone)]
#[repr(C)]
struct DecisionWindows {
    /// Throttle indicators; ring position `i` is bit `i`.
    bits: u64,
    /// Exact count of set bits among the retained indicators.
    ones: u16,
    /// Retained samples (both rings; they fill together).
    len: u16,
    /// Ring position of the oldest sample once full.
    head: u16,
    /// Retained-window capacity, at most [`DecisionWindows::MAX_CAPACITY`].
    cap: u16,
    /// Unused-runtime ring storage.
    buf: [f64; DecisionWindows::MAX_CAPACITY],
}

impl DecisionWindows {
    /// Largest supported window — sized for the allocator's decision
    /// windows (paper default 5 periods; the ablation sweep probes up
    /// to 20), and bounded by the one-word throttle bit ring anyway.
    const MAX_CAPACITY: usize = 24;

    /// Creates fused windows keeping the last `capacity` samples.
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(
            capacity <= DecisionWindows::MAX_CAPACITY,
            "DecisionWindows supports at most {} periods",
            DecisionWindows::MAX_CAPACITY
        );
        DecisionWindows {
            bits: 0,
            ones: 0,
            len: 0,
            head: 0,
            cap: capacity as u16,
            buf: [0.0; DecisionWindows::MAX_CAPACITY],
        }
    }

    /// Pushes one decision's samples into both rings, evicting the
    /// oldest pair when full.
    #[inline]
    fn push(&mut self, throttled: bool, unused: f64) {
        if self.len < self.cap {
            let pos = self.len as usize;
            self.bits |= (throttled as u64) << pos;
            self.ones += throttled as u16;
            self.buf[pos] = unused;
            self.len += 1;
            return;
        }
        let head = self.head as usize;
        let old_bit = (self.bits >> head) & 1;
        self.bits = (self.bits & !(1u64 << head)) | ((throttled as u64) << head);
        self.ones = self.ones + throttled as u16 - old_bit as u16;
        // SAFETY: `head < cap <= MAX_CAPACITY` is a constructor-checked
        // invariant maintained by the wrap below; this is the
        // allocator's hottest load, so the bound is not re-proved per
        // call.
        let slot = unsafe { self.buf.get_unchecked_mut(head) };
        *slot = unused;
        self.head = if head + 1 == self.cap as usize {
            0
        } else {
            self.head + 1
        };
    }

    /// Retained sample count (both rings).
    fn len(&self) -> usize {
        self.len as usize
    }

    /// Mean throttle indicator (0.0 when empty) — `BitWindow::mean`.
    #[inline]
    fn throttle_mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.ones as f64 / self.len as f64
        }
    }

    /// Mean unused runtime (0.0 when empty), computed by an exact
    /// oldest-first re-sum of the ring. Summing the same logical sample
    /// sequence in the same order every time makes the mean — and with
    /// it every scale-down decision, snapshot, and trace record —
    /// independent of how the ring happens to be maintained.
    #[inline]
    fn unused_mean(&self) -> f64 {
        let len = self.len as usize;
        if len == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut idx = if self.len < self.cap {
            0
        } else {
            self.head as usize
        };
        for _ in 0..len {
            sum += self.buf[idx];
            idx += 1;
            if idx == self.cap as usize {
                idx = 0;
            }
        }
        sum / len as f64
    }

    /// Ring position of logical sample `i` (0 = oldest).
    fn pos(&self, i: usize) -> usize {
        if self.len < self.cap {
            i
        } else {
            (self.head as usize + i) % self.cap as usize
        }
    }

    /// Throttle indicators, oldest first.
    fn throttle_samples(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len as usize).map(move |i| (self.bits >> self.pos(i)) & 1 == 1)
    }

    /// Unused-runtime samples, oldest first.
    fn unused_samples(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len as usize).map(move |i| self.buf[self.pos(i)])
    }
}

/// Per-container state tracked by the allocator, stored in a dense slab
/// slot (see [`ResourceAllocator`]).
///
/// `repr(C)` with the telemetry-hot fields first: the scalars plus the
/// fused windows' running sum, bit ring and coordinates fill the leading
/// cache line, and the handful of unused-ring entries a default-size
/// window actually uses sit on the next one, so a CPU decision touches
/// two lines of the slab, not a scatter of them.
#[derive(Debug, Clone)]
#[repr(C)]
struct Track {
    /// Index of the owning app in `ResourceAllocator::app_entries`, so
    /// the telemetry hot path reaches the pool without a map lookup.
    app_slot: u32,
    /// This track's position in its app's `members` list (kept in sync
    /// across swap-removals so deregistration stays O(1)).
    member_pos: u32,
    quota_cores: f64,
    node: NodeId,
    app: AppId,
    mem_limit_bytes: u64,
    windows: DecisionWindows,
}

/// An application's pool plus the slab slots of its live containers.
#[derive(Debug, Clone)]
struct AppEntry {
    pool: DistributedContainer,
    members: Vec<u32>,
}

/// A CPU decision for the period that just ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuDecision {
    /// Raise the container quota to this many cores.
    ScaleUp {
        /// The new quota.
        new_quota_cores: f64,
    },
    /// Lower the container quota to this many cores.
    ScaleDown {
        /// The new quota.
        new_quota_cores: f64,
    },
    /// Leave the quota unchanged.
    Hold,
}

/// A memory decision for an OOM event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OomDecision {
    /// Grow the container's memory limit to this value; the charge can
    /// then be retried and the container survives.
    Grant {
        /// The new memory limit.
        new_limit_bytes: u64,
    },
    /// The global pool is exhausted: the Controller must run an
    /// aggressive reclamation sweep and retry.
    NeedReclaim,
    /// Even after reclamation nothing is available: the container is
    /// killed by the OS, "as is standard" (§IV-D2).
    Kill,
}

/// Errors from allocator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocatorError {
    /// The application was never registered.
    UnknownApp(AppId),
    /// The container was never registered.
    UnknownContainer(ContainerId),
    /// The container id was registered twice.
    DuplicateContainer(ContainerId),
}

impl core::fmt::Display for AllocatorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocatorError::UnknownApp(a) => write!(f, "unknown application {a}"),
            AllocatorError::UnknownContainer(c) => write!(f, "unknown container {c}"),
            AllocatorError::DuplicateContainer(c) => write!(f, "container {c} already registered"),
        }
    }
}

impl std::error::Error for AllocatorError {}

/// The Resource Allocator: global pools + windowed per-container stats +
/// the scale-up/scale-down/OOM decision procedures.
///
/// Container state lives in a dense slab (`slab`) addressed through a
/// direct-mapped index keyed by the raw [`ContainerId`] — ids are
/// allocated sequentially and never reused (mirroring cgroup ids), so
/// the index is a flat `Vec<u32>` with a sentinel and every telemetry
/// lookup is O(1) instead of a `BTreeMap` walk. Freed slots are recycled
/// through a free list; each app keeps the slot list of its live members
/// so Σ-sums and deregistration never scan the whole slab.
///
/// ```
/// use escra_core::allocator::ResourceAllocator;
/// use escra_core::config::EscraConfig;
/// use escra_cluster::{AppId, ContainerId, NodeId};
///
/// let mut alloc = ResourceAllocator::new(EscraConfig::default());
/// alloc.register_app(AppId::new(0), 8.0, 1 << 30);
/// alloc
///     .register_container(ContainerId::new(0), AppId::new(0), NodeId::new(0), 2.0, 256 << 20)
///     .expect("register");
/// assert_eq!(alloc.quota_of(ContainerId::new(0)), Some(2.0));
/// ```
#[derive(Debug, Clone)]
pub struct ResourceAllocator {
    cfg: EscraConfig,
    /// Dense app storage; hot-path access goes through `Track::app_slot`,
    /// registration-time lookups through `app_index`.
    app_entries: Vec<AppEntry>,
    app_index: BTreeMap<AppId, u32>,
    /// Dense container slab; `None` marks a vacated (recyclable) slot.
    slab: Vec<Option<Track>>,
    /// Vacated slab slots awaiting reuse.
    free: Vec<u32>,
    /// Direct-mapped `raw ContainerId → slab slot` ([`NO_SLOT`] = absent).
    index: Vec<u32>,
}

impl ResourceAllocator {
    /// Creates an allocator with the given tunables.
    pub fn new(cfg: EscraConfig) -> Self {
        // The per-container windows use inline ring storage to keep the
        // telemetry hot loop off the heap; fail loudly at construction
        // rather than at first registration if the configured window
        // does not fit.
        assert!(
            cfg.window_periods <= DecisionWindows::MAX_CAPACITY,
            "window_periods {} exceeds the inline window capacity {}",
            cfg.window_periods,
            DecisionWindows::MAX_CAPACITY
        );
        ResourceAllocator {
            cfg,
            app_entries: Vec::new(),
            app_index: BTreeMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            index: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EscraConfig {
        &self.cfg
    }

    /// The slab slot of a container, if it is registered.
    #[inline]
    fn slot_of(&self, container: ContainerId) -> Option<u32> {
        match self.index.get(container.as_u64() as usize) {
            Some(&slot) if slot != NO_SLOT => Some(slot),
            _ => None,
        }
    }

    #[inline]
    fn track(&self, container: ContainerId) -> Option<&Track> {
        self.slot_of(container).map(|s| {
            self.slab[s as usize]
                .as_ref()
                .expect("indexed slot is live")
        })
    }

    /// Registers an application's global limits (the Deployer sends these
    /// before deploying any containers, §IV-A). Re-registering an app
    /// replaces its pool but keeps its member list.
    pub fn register_app(&mut self, app: AppId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        let pool = DistributedContainer::new(app, cpu_limit_cores, mem_limit_bytes);
        match self.app_index.get(&app) {
            Some(&slot) => self.app_entries[slot as usize].pool = pool,
            None => {
                let slot = self.app_entries.len() as u32;
                self.app_entries.push(AppEntry {
                    pool,
                    members: Vec::new(),
                });
                self.app_index.insert(app, slot);
            }
        }
    }

    /// The global pool of an application.
    pub fn app_pool(&self, app: AppId) -> Option<&DistributedContainer> {
        self.app_index
            .get(&app)
            .map(|&slot| &self.app_entries[slot as usize].pool)
    }

    /// Registers a container with its initial limits, drawing them from
    /// the application pool. If the pool cannot cover the request the
    /// initial grant is capped (the container starts smaller and the
    /// telemetry loop grows it on demand).
    ///
    /// Returns the `(cpu_cores, mem_bytes)` actually granted.
    ///
    /// # Errors
    ///
    /// [`AllocatorError::UnknownApp`] if the app was not registered,
    /// [`AllocatorError::DuplicateContainer`] on double registration.
    pub fn register_container(
        &mut self,
        container: ContainerId,
        app: AppId,
        node: NodeId,
        initial_cpu_cores: f64,
        initial_mem_bytes: u64,
    ) -> Result<(f64, u64), AllocatorError> {
        if self.slot_of(container).is_some() {
            return Err(AllocatorError::DuplicateContainer(container));
        }
        let app_slot = *self
            .app_index
            .get(&app)
            .ok_or(AllocatorError::UnknownApp(app))?;
        let entry = &mut self.app_entries[app_slot as usize];
        // Request at least the configured floors; track exactly what the
        // pool granted so Σ tracked == pool.allocated always holds.
        let cpu = entry
            .pool
            .try_allocate_cpu(initial_cpu_cores.max(self.cfg.min_quota_cores));
        let mem = entry
            .pool
            .try_allocate_mem(initial_mem_bytes.max(self.cfg.min_mem_bytes));
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slab.push(None);
                (self.slab.len() - 1) as u32
            }
        };
        let entry = &mut self.app_entries[app_slot as usize];
        let member_pos = entry.members.len() as u32;
        entry.members.push(slot);
        self.slab[slot as usize] = Some(Track {
            app,
            app_slot,
            member_pos,
            node,
            quota_cores: cpu,
            mem_limit_bytes: mem,
            windows: DecisionWindows::new(self.cfg.window_periods),
        });
        let raw = container.as_u64() as usize;
        if self.index.len() <= raw {
            self.index.resize(raw + 1, NO_SLOT);
        }
        self.index[raw] = slot;
        Ok((cpu, mem))
    }

    /// Deregisters a container (serverless pod teardown), returning its
    /// resources to the pool.
    ///
    /// # Errors
    ///
    /// [`AllocatorError::UnknownContainer`] for unknown ids.
    pub fn deregister_container(&mut self, container: ContainerId) -> Result<(), AllocatorError> {
        let slot = self
            .slot_of(container)
            .ok_or(AllocatorError::UnknownContainer(container))?;
        self.index[container.as_u64() as usize] = NO_SLOT;
        let track = self.slab[slot as usize]
            .take()
            .expect("indexed slot is live");
        self.free.push(slot);
        let entry = &mut self.app_entries[track.app_slot as usize];
        entry.pool.release_cpu(track.quota_cores);
        entry.pool.release_mem(track.mem_limit_bytes);
        // O(1) member removal: swap the list's tail into the vacated
        // position and re-point the moved track at its new position.
        let pos = track.member_pos as usize;
        entry.members.swap_remove(pos);
        let moved = entry.members.get(pos).copied();
        if let Some(moved_slot) = moved {
            self.slab[moved_slot as usize]
                .as_mut()
                .expect("member slot is live")
                .member_pos = pos as u32;
        }
        Ok(())
    }

    /// The allocator's view of a container's quota.
    pub fn quota_of(&self, container: ContainerId) -> Option<f64> {
        self.track(container).map(|t| t.quota_cores)
    }

    /// The allocator's view of a container's memory limit.
    pub fn mem_limit_of(&self, container: ContainerId) -> Option<u64> {
        self.track(container).map(|t| t.mem_limit_bytes)
    }

    /// The application a container belongs to.
    pub fn app_of(&self, container: ContainerId) -> Option<AppId> {
        self.track(container).map(|t| t.app)
    }

    /// The node hosting a container.
    pub fn node_of(&self, container: ContainerId) -> Option<NodeId> {
        self.track(container).map(|t| t.node)
    }

    /// Containers currently registered.
    pub fn container_count(&self) -> usize {
        self.slab.len() - self.free.len()
    }

    /// Iterates the registered container ids in ascending raw-id order.
    pub fn container_ids(&self) -> impl Iterator<Item = ContainerId> + '_ {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, &slot)| slot != NO_SLOT)
            .map(|(raw, _)| ContainerId::new(raw as u64))
    }

    /// Feeds the allocator's behaviourally relevant state into a
    /// canonical state hash: per-app pools (limits + allocated sums) and
    /// per-container tracks (quota, memory limit, node, and the exact
    /// CPU decision-window contents), all in id order. Slab layout
    /// internals (slot numbers, free-list order) are deliberately
    /// excluded: states that differ only in how the slab was recycled
    /// behave identically.
    pub fn fingerprint_into(&self, h: &mut escra_metrics::fingerprint::StateHash) {
        h.write_u64(self.app_index.len() as u64);
        for (app, &slot) in &self.app_index {
            let pool = &self.app_entries[slot as usize].pool;
            h.write_u64(app.as_u64());
            h.write_f64(pool.cpu_limit_cores());
            h.write_u64(pool.mem_limit_bytes());
            h.write_f64(pool.allocated_cpu_cores());
            h.write_u64(pool.allocated_mem_bytes());
        }
        h.write_u64(self.container_count() as u64);
        for id in self.container_ids() {
            let t = self.track(id).expect("live id has a track");
            h.write_u64(id.as_u64());
            h.write_u64(t.app.as_u64());
            h.write_u64(t.node.as_u64());
            h.write_f64(t.quota_cores);
            h.write_u64(t.mem_limit_bytes);
            // The two windows hash the same bytes as when they were both
            // `SlidingWindow`s: length, then each sample as f64 oldest
            // first (the bit window's indicators widen to 0.0/1.0).
            h.write_u64(t.windows.len() as u64);
            for s in t.windows.throttle_samples() {
                h.write_f64(if s { 1.0 } else { 0.0 });
            }
            h.write_u64(t.windows.len() as u64);
            for s in t.windows.unused_samples() {
                h.write_f64(s);
            }
        }
    }

    /// The windowed inputs behind a container's most recent CPU
    /// decision: `(throttle rate, mean unused runtime in cores)`. Read
    /// right after [`ResourceAllocator::on_cpu_stats`] these are exactly
    /// the means the decision consumed (the sample is pushed before the
    /// decision is taken) — the trace layer records them alongside each
    /// quota move.
    pub fn decision_inputs(&self, container: ContainerId) -> Option<(f64, f64)> {
        self.track(container)
            .map(|t| (t.windows.throttle_mean(), t.windows.unused_mean()))
    }

    /// Ingests one per-period CPU statistic and produces the quota
    /// decision for the next period (paper §IV-D1).
    ///
    /// Scale **up** when the period was throttled:
    /// `q[t+1] = q[t] + throttle_rate · unallocated · (Υ/100)`, capped by
    /// the pool. Scale **down** when `quota − usage > γ`:
    /// `q[t+1] = q[t] − mean_unused · κ`, floored at the minimum quota.
    ///
    /// # Errors
    ///
    /// [`AllocatorError::UnknownContainer`] for unregistered reporters.
    pub fn on_cpu_stats(
        &mut self,
        container: ContainerId,
        stats: CpuPeriodStats,
    ) -> Result<CpuDecision, AllocatorError> {
        let period = self.cfg.report_period;
        let slot = self
            .slot_of(container)
            .ok_or(AllocatorError::UnknownContainer(container))?;
        let usage_cores = stats.usage_cores(period);
        let unused_cores = stats.unused_cores(period);
        Ok(self.decide_at_slot(slot, usage_cores, unused_cores, stats.throttled))
    }

    /// The decision procedure proper, addressed by slab slot with the
    /// per-period statistics already converted to cores. This is the
    /// single implementation behind both the per-message path
    /// ([`ResourceAllocator::on_cpu_stats`]) and the columnar ingest
    /// path, which resolves slots and does the fixed-point → cores
    /// conversion over whole columns before looping over decisions.
    #[inline]
    pub(crate) fn decide_at_slot(
        &mut self,
        slot: u32,
        usage_cores: f64,
        unused_cores: f64,
        throttled: bool,
    ) -> CpuDecision {
        // SAFETY: every caller resolves `slot` through the live container
        // index (`slot_of` or the columnar Phase-A gather), which only
        // ever maps to occupied slab slots, and no deregistration can
        // interleave inside the same `&mut self` call.
        let track = unsafe {
            self.slab
                .get_unchecked_mut(slot as usize)
                .as_mut()
                .unwrap_unchecked()
        };

        track.windows.push(throttled, unused_cores);

        if throttled {
            // The pool is only touched on the two scaling branches; the
            // Hold fast path must not pay for its cache line.
            let pool = &mut self.app_entries[track.app_slot as usize].pool;
            let throttle_rate = track.windows.throttle_mean();
            let unallocated = pool.unallocated_cpu_cores();
            // Υ taken literally as printed (×20, ×35): the raw term is
            // far larger than any sane step, so the effective behaviour
            // is "grow fast toward whatever the pool can give", bounded
            // by the growth cap below — which is what lets Escra absorb
            // a burst within one or two 100 ms periods (Fig. 2).
            let want = throttle_rate * unallocated * self.cfg.upsilon;
            // Growth cap (see EscraConfig::max_quota_growth_factor): the
            // paper's term is proportional to the whole unallocated pool
            // and diverges for large pools; bound the step so a quota at
            // most doubles per period (still sub-second convergence).
            let cap = (track.quota_cores * (self.cfg.max_quota_growth_factor - 1.0))
                .max(self.cfg.min_quota_cores);
            let grant = pool.try_allocate_cpu(want.min(cap));
            if grant > 0.0 {
                track.quota_cores += grant;
                return CpuDecision::ScaleUp {
                    new_quota_cores: track.quota_cores,
                };
            }
            return CpuDecision::Hold;
        }

        // Scale down only when both this period's unused runtime and the
        // windowed mean exceed γ: the windowed statistic is what the
        // paper says the Allocator bases decisions on, and debouncing on
        // it prevents a single post-spike period from triggering a cut
        // that immediately re-throttles the container.
        if track.quota_cores - usage_cores > self.cfg.gamma_cores {
            // The windowed mean (an exact oldest-first re-sum of at most
            // `cpu_window_periods` in-cache samples) is evaluated only
            // once the headroom check passes — the common Hold path
            // exits on the subtraction alone.
            let unused_mean = track.windows.unused_mean();
            if unused_mean > self.cfg.gamma_cores {
                // Shrink the windowed-mean excess *above* γ by κ, so the
                // quota converges to usage + γ — "just above container
                // usage" — rather than overshooting below the safe margin
                // (see DESIGN.md §4 on this reading of the scale-down
                // rule).
                let dec = (unused_mean - self.cfg.gamma_cores) * self.cfg.kappa;
                let floor = self.cfg.min_quota_cores.max(usage_cores);
                let new_quota = (track.quota_cores - dec).max(floor);
                let released = track.quota_cores - new_quota;
                if released > 1e-9 {
                    let pool = &mut self.app_entries[track.app_slot as usize].pool;
                    pool.release_cpu(released);
                    track.quota_cores = new_quota;
                    return CpuDecision::ScaleDown {
                        new_quota_cores: new_quota,
                    };
                }
            }
        }
        CpuDecision::Hold
    }

    /// The node hosting the container in the given slab slot.
    #[inline]
    pub(crate) fn node_at_slot(&self, slot: u32) -> NodeId {
        // SAFETY: same caller contract as `decide_at_slot` — `slot` is
        // resolved through the live container index.
        unsafe {
            self.slab
                .get_unchecked(slot as usize)
                .as_ref()
                .unwrap_unchecked()
                .node
        }
    }

    /// The windowed decision inputs for the container in the given slab
    /// slot — the slot-addressed form of
    /// [`ResourceAllocator::decision_inputs`].
    pub(crate) fn decision_inputs_at_slot(&self, slot: u32) -> (f64, f64) {
        let t = self.slab[slot as usize]
            .as_ref()
            .expect("indexed slot is live");
        (t.windows.throttle_mean(), t.windows.unused_mean())
    }

    /// The direct-mapped `raw ContainerId → slab slot` index ([`NO_SLOT`]
    /// marks an absent id); raw ids at or beyond the length are likewise
    /// unregistered. The columnar ingest gathers slots straight off this
    /// slice instead of calling [`ResourceAllocator::slot_of`] per entry.
    pub(crate) fn raw_index(&self) -> &[u32] {
        &self.index
    }

    /// Handles an OOM event (paper §IV-D2): grant a fixed block from the
    /// pool if available, otherwise ask for a reclamation sweep.
    ///
    /// # Errors
    ///
    /// [`AllocatorError::UnknownContainer`] for unregistered containers.
    pub fn on_oom(
        &mut self,
        container: ContainerId,
        shortfall_bytes: u64,
    ) -> Result<OomDecision, AllocatorError> {
        let slot = self
            .slot_of(container)
            .ok_or(AllocatorError::UnknownContainer(container))?;
        let track = self.slab[slot as usize]
            .as_mut()
            .expect("indexed slot is live");
        let pool = &mut self.app_entries[track.app_slot as usize].pool;
        let need = shortfall_bytes.max(self.cfg.oom_grant_bytes);
        if pool.unallocated_mem_bytes() >= need {
            let granted = pool.try_allocate_mem(need);
            track.mem_limit_bytes += granted;
            Ok(OomDecision::Grant {
                new_limit_bytes: track.mem_limit_bytes,
            })
        } else {
            Ok(OomDecision::NeedReclaim)
        }
    }

    /// Retries an OOM grant after a reclamation sweep returned ψ to the
    /// pool. Grants whatever covers the shortfall, else decides `Kill`.
    ///
    /// # Errors
    ///
    /// [`AllocatorError::UnknownContainer`] for unregistered containers.
    pub fn retry_oom_after_reclaim(
        &mut self,
        container: ContainerId,
        shortfall_bytes: u64,
    ) -> Result<OomDecision, AllocatorError> {
        let slot = self
            .slot_of(container)
            .ok_or(AllocatorError::UnknownContainer(container))?;
        let track = self.slab[slot as usize]
            .as_mut()
            .expect("indexed slot is live");
        let pool = &mut self.app_entries[track.app_slot as usize].pool;
        // Best effort: take min(pool, max(shortfall, grant block)).
        let want = shortfall_bytes.max(self.cfg.oom_grant_bytes);
        let granted = pool.try_allocate_mem(want);
        if granted >= shortfall_bytes && granted > 0 {
            track.mem_limit_bytes += granted;
            Ok(OomDecision::Grant {
                new_limit_bytes: track.mem_limit_bytes,
            })
        } else {
            // Return the partial grant; the container dies anyway.
            pool.release_mem(granted);
            Ok(OomDecision::Kill)
        }
    }

    /// Records an Agent-side reclamation result for one container: the
    /// limit shrank to `new_limit_bytes`, releasing ψ to the pool.
    ///
    /// # Errors
    ///
    /// [`AllocatorError::UnknownContainer`] for unregistered containers.
    pub fn apply_reclaim(
        &mut self,
        container: ContainerId,
        new_limit_bytes: u64,
    ) -> Result<u64, AllocatorError> {
        let slot = self
            .slot_of(container)
            .ok_or(AllocatorError::UnknownContainer(container))?;
        let track = self.slab[slot as usize]
            .as_mut()
            .expect("indexed slot is live");
        let psi = track.mem_limit_bytes.saturating_sub(new_limit_bytes);
        if psi > 0 {
            track.mem_limit_bytes = new_limit_bytes;
            self.app_entries[track.app_slot as usize]
                .pool
                .release_mem(psi);
        }
        Ok(psi)
    }

    /// Σ over an app's live members, in member-list order.
    fn member_sum<T: std::iter::Sum>(&self, app: AppId, f: impl Fn(&Track) -> T) -> Option<T> {
        let &slot = self.app_index.get(&app)?;
        Some(
            self.app_entries[slot as usize]
                .members
                .iter()
                .map(|&s| f(self.slab[s as usize].as_ref().expect("member slot is live")))
                .sum(),
        )
    }

    /// Σ of tracked quotas for an app — must equal the pool's allocated
    /// CPU (checked by property tests).
    pub fn tracked_cpu_sum(&self, app: AppId) -> f64 {
        self.member_sum(app, |t| t.quota_cores).unwrap_or(0.0)
    }

    /// Σ of tracked memory limits for an app.
    pub fn tracked_mem_sum(&self, app: AppId) -> u64 {
        self.member_sum(app, |t| t.mem_limit_bytes).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_cfs::MIB;

    const APP: AppId = AppId::new(0);
    const C0: ContainerId = ContainerId::new(0);
    const C1: ContainerId = ContainerId::new(1);
    const NODE: NodeId = NodeId::new(0);

    fn stats(quota: f64, usage_cores: f64, throttled: bool) -> CpuPeriodStats {
        CpuPeriodStats {
            quota_cores: quota,
            usage_us: usage_cores * 100_000.0,
            unused_runtime_us: (quota - usage_cores).max(0.0) * 100_000.0,
            throttled,
        }
    }

    fn setup(global_cpu: f64, per_container: f64) -> ResourceAllocator {
        let mut a = ResourceAllocator::new(EscraConfig::default());
        a.register_app(APP, global_cpu, 1024 * MIB);
        a.register_container(C0, APP, NODE, per_container, 256 * MIB)
            .unwrap();
        a.register_container(C1, APP, NODE, per_container, 256 * MIB)
            .unwrap();
        a
    }

    #[test]
    fn throttled_container_scales_up_from_pool() {
        let mut a = setup(8.0, 2.0); // 4 cores unallocated
        let d = a.on_cpu_stats(C0, stats(2.0, 2.0, true)).unwrap();
        match d {
            CpuDecision::ScaleUp { new_quota_cores } => {
                // rate=1, unalloc=4, Υ=20 -> raw want 80 cores, bounded
                // by the growth cap (1.5x): quota 2.0 -> 3.0.
                assert!((new_quota_cores - 3.0).abs() < 1e-9);
            }
            other => panic!("expected scale-up, got {other:?}"),
        }
        assert!((a.tracked_cpu_sum(APP) - 5.0).abs() < 1e-9);
        assert!((a.app_pool(APP).unwrap().unallocated_cpu_cores() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn throttled_with_empty_pool_holds() {
        let mut a = setup(4.0, 2.0); // fully allocated
        let d = a.on_cpu_stats(C0, stats(2.0, 2.0, true)).unwrap();
        assert_eq!(d, CpuDecision::Hold);
    }

    #[test]
    fn idle_container_scales_down_and_releases() {
        let mut a = setup(4.0, 2.0);
        // usage 0.5, quota 2.0 -> unused 1.5 > γ=0.25 -> shrink by
        // κ·(1.5 − γ) = 1.25, converging toward usage + γ.
        let d = a.on_cpu_stats(C0, stats(2.0, 0.5, false)).unwrap();
        match d {
            CpuDecision::ScaleDown { new_quota_cores } => {
                assert!((new_quota_cores - 0.75).abs() < 1e-9);
            }
            other => panic!("expected scale-down, got {other:?}"),
        }
        assert!((a.app_pool(APP).unwrap().unallocated_cpu_cores() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn scale_down_never_cuts_below_usage() {
        let mut a = setup(4.0, 2.0);
        // Build a window with large unused, then a busy period under γ slack.
        a.on_cpu_stats(C0, stats(2.0, 0.1, false)).unwrap();
        // quota now lower; fetch and keep reporting busy usage near quota
        let q = a.quota_of(C0).unwrap();
        let d = a.on_cpu_stats(C0, stats(q, q - 0.3, false)).unwrap();
        if let CpuDecision::ScaleDown { new_quota_cores } = d {
            assert!(new_quota_cores >= q - 0.3 - 1e-9);
        }
    }

    #[test]
    fn window_smooths_throttle_rate() {
        let mut a = setup(8.0, 2.0);
        // Five periods: not throttled x4 but no slack (usage==quota), then throttled.
        for _ in 0..4 {
            let q = a.quota_of(C0).unwrap();
            a.on_cpu_stats(C0, stats(q, q, false)).unwrap();
        }
        let q = a.quota_of(C0).unwrap();
        let unalloc = a.app_pool(APP).unwrap().unallocated_cpu_cores();
        let d = a.on_cpu_stats(C0, stats(q, q, true)).unwrap();
        match d {
            CpuDecision::ScaleUp { new_quota_cores } => {
                // rate = 1/5, raw want = 0.2 * unalloc * 20 = 4*unalloc,
                // bounded by the doubling cap and the pool.
                let expect = q + (0.2 * unalloc * 20.0).min(q * 0.5).min(unalloc);
                assert!((new_quota_cores - expect).abs() < 1e-9);
            }
            other => panic!("expected scale-up, got {other:?}"),
        }
    }

    #[test]
    fn sharing_between_containers() {
        // C0 idle shrinks; C1 throttled grows into the released capacity.
        let mut a = setup(4.0, 2.0);
        a.on_cpu_stats(C0, stats(2.0, 0.2, false)).unwrap();
        let freed = a.app_pool(APP).unwrap().unallocated_cpu_cores();
        assert!(freed > 1.0);
        let d = a.on_cpu_stats(C1, stats(2.0, 2.0, true)).unwrap();
        assert!(matches!(d, CpuDecision::ScaleUp { .. }));
        // Aggregate never exceeds the Distributed Container limit.
        assert!(a.tracked_cpu_sum(APP) <= 4.0 + 1e-9);
    }

    #[test]
    fn oom_grant_from_pool() {
        let mut a = setup(4.0, 2.0); // mem pool 1024, allocated 512
        let d = a.on_oom(C0, 1).unwrap();
        assert_eq!(
            d,
            OomDecision::Grant {
                new_limit_bytes: 256 * MIB + 32 * MIB
            }
        );
        assert_eq!(a.tracked_mem_sum(APP), 544 * MIB);
    }

    #[test]
    fn oom_exhausted_pool_needs_reclaim_then_kill() {
        let mut a = ResourceAllocator::new(EscraConfig::default());
        a.register_app(APP, 4.0, 512 * MIB);
        a.register_container(C0, APP, NODE, 2.0, 512 * MIB).unwrap();
        assert_eq!(a.on_oom(C0, MIB).unwrap(), OomDecision::NeedReclaim);
        // Nothing reclaimed -> kill.
        assert_eq!(
            a.retry_oom_after_reclaim(C0, MIB).unwrap(),
            OomDecision::Kill
        );
    }

    #[test]
    fn reclaim_cycle_releases_and_regrants() {
        let mut a = ResourceAllocator::new(EscraConfig::default());
        a.register_app(APP, 4.0, 512 * MIB);
        a.register_container(C0, APP, NODE, 1.0, 256 * MIB).unwrap();
        a.register_container(C1, APP, NODE, 1.0, 256 * MIB).unwrap();
        assert_eq!(a.on_oom(C0, 8 * MIB).unwrap(), OomDecision::NeedReclaim);
        // Agent shrinks C1 to 100 MiB, ψ = 156 MiB.
        let psi = a.apply_reclaim(C1, 100 * MIB).unwrap();
        assert_eq!(psi, 156 * MIB);
        let d = a.retry_oom_after_reclaim(C0, 8 * MIB).unwrap();
        assert_eq!(
            d,
            OomDecision::Grant {
                new_limit_bytes: 256 * MIB + 32 * MIB
            }
        );
    }

    #[test]
    fn deregister_returns_resources() {
        let mut a = setup(4.0, 2.0);
        a.deregister_container(C0).unwrap();
        assert_eq!(a.container_count(), 1);
        assert!((a.app_pool(APP).unwrap().unallocated_cpu_cores() - 2.0).abs() < 1e-9);
        assert!(a.quota_of(C0).is_none());
    }

    #[test]
    fn error_paths() {
        let mut a = ResourceAllocator::new(EscraConfig::default());
        assert_eq!(
            a.register_container(C0, APP, NODE, 1.0, MIB),
            Err(AllocatorError::UnknownApp(APP))
        );
        a.register_app(APP, 1.0, MIB * 64);
        a.register_container(C0, APP, NODE, 1.0, MIB).unwrap();
        assert_eq!(
            a.register_container(C0, APP, NODE, 1.0, MIB),
            Err(AllocatorError::DuplicateContainer(C0))
        );
        assert_eq!(
            a.on_cpu_stats(C1, stats(1.0, 1.0, false)),
            Err(AllocatorError::UnknownContainer(C1))
        );
        assert_eq!(
            AllocatorError::UnknownContainer(C1).to_string(),
            "unknown container ctr-1"
        );
    }

    #[test]
    fn slab_recycles_slots_and_keeps_member_lists_consistent() {
        let mut a = ResourceAllocator::new(EscraConfig::default());
        a.register_app(APP, 16.0, 4096 * MIB);
        for i in 0..4u64 {
            a.register_container(ContainerId::new(i), APP, NODE, 1.0, 64 * MIB)
                .unwrap();
        }
        // Remove from the middle: the tail member is swapped into its
        // position and must stay addressable.
        a.deregister_container(C1).unwrap();
        assert_eq!(a.container_count(), 3);
        assert!((a.tracked_cpu_sum(APP) - 3.0).abs() < 1e-9);
        assert_eq!(a.tracked_mem_sum(APP), 3 * 64 * MIB);
        // A new registration reuses the vacated slot; the old id stays gone.
        a.register_container(ContainerId::new(9), APP, NODE, 1.0, 64 * MIB)
            .unwrap();
        assert_eq!(a.container_count(), 4);
        assert!(a.quota_of(C1).is_none());
        assert_eq!(a.quota_of(ContainerId::new(9)), Some(1.0));
        // Every surviving member still answers lookups and telemetry.
        for raw in [0u64, 2, 3, 9] {
            let cid = ContainerId::new(raw);
            assert_eq!(a.node_of(cid), Some(NODE));
            a.on_cpu_stats(cid, stats(1.0, 0.9, false)).unwrap();
        }
        // Churn the swapped-in tail again to exercise member_pos repair.
        a.deregister_container(ContainerId::new(3)).unwrap();
        a.deregister_container(ContainerId::new(9)).unwrap();
        assert!(
            (a.tracked_cpu_sum(APP) - a.app_pool(APP).unwrap().allocated_cpu_cores()).abs() < 1e-9
        );
    }

    #[test]
    fn ghost_ids_beyond_the_index_are_unknown() {
        let mut a = setup(4.0, 2.0);
        let ghost = ContainerId::new(1_000_000);
        assert_eq!(
            a.on_cpu_stats(ghost, stats(1.0, 1.0, false)),
            Err(AllocatorError::UnknownContainer(ghost))
        );
        assert_eq!(
            a.deregister_container(ghost),
            Err(AllocatorError::UnknownContainer(ghost))
        );
        assert!(a.node_of(ghost).is_none());
    }

    #[test]
    fn initial_grant_capped_by_pool() {
        let mut a = ResourceAllocator::new(EscraConfig::default());
        a.register_app(APP, 1.0, 64 * MIB);
        let (cpu, mem) = a.register_container(C0, APP, NODE, 4.0, 512 * MIB).unwrap();
        assert_eq!(cpu, 1.0);
        assert_eq!(mem, 64 * MIB);
    }
}
