//! The Container Watcher (paper Fig. 1 ①, §IV-A).
//!
//! "The Container Watcher integrates with Kubernetes to detect container
//! creation. Upon detection, the Watcher notifies the Agent located on
//! the same host as the newly created container" — which then runs the
//! registration syscall. Here the Watcher consumes the cluster's
//! lifecycle event feed and turns creations into Controller
//! registrations (and terminations into deregistrations), so containers
//! created *at runtime* — serverless pods, horizontal scale-ups — join
//! their application's Distributed Container automatically.

use crate::controller::{Action, Controller};
use escra_cluster::{Cluster, ContainerEvent, ContainerId};
use escra_metrics::trace::TraceSink;
use escra_simcore::time::SimTime;
use std::collections::BTreeSet;

/// Watches cluster lifecycle events and keeps the Controller's container
/// registry in sync.
#[derive(Debug, Default)]
pub struct ContainerWatcher {
    /// Containers the watcher has registered (so replays are idempotent).
    registered: BTreeSet<ContainerId>,
}

impl ContainerWatcher {
    /// Creates a watcher with no registered containers.
    pub fn new() -> Self {
        ContainerWatcher::default()
    }

    /// Number of containers currently registered through this watcher.
    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }

    /// Drains the cluster's pending lifecycle events and applies them to
    /// the Controller: `Created` registers the container under its
    /// spec's application with its spec limits; `Terminated`
    /// deregisters. OOM-kill/restart events need no registry change
    /// (the paper keeps the per-container socket for the container's
    /// lifetime).
    ///
    /// Returns the Controller actions to carry out (initial limit
    /// writes for new containers).
    pub fn sync<S: TraceSink>(
        &mut self,
        cluster: &mut Cluster,
        controller: &mut Controller<S>,
    ) -> Vec<Action> {
        let events = cluster.drain_events();
        let mut actions = Vec::new();
        for (_at, event) in events {
            match event {
                ContainerEvent::Created(id, node) => {
                    if !self.registered.insert(id) {
                        continue;
                    }
                    let Some(container) = cluster.container(id) else {
                        continue;
                    };
                    let spec = container.spec();
                    if let Ok(mut acts) = controller.register_container(
                        id,
                        spec.app,
                        node,
                        spec.cpu_limit_cores,
                        spec.mem_limit_bytes,
                    ) {
                        actions.append(&mut acts);
                    }
                }
                ContainerEvent::Terminated(id) => {
                    if self.registered.remove(&id) {
                        let _ = controller.deregister_container(id);
                    }
                }
                ContainerEvent::OomKilled(_) | ContainerEvent::Restarted(_) => {}
            }
        }
        actions
    }

    /// Marks a container as already registered (used when the Deployer
    /// registered it directly at deploy time, so a later event replay
    /// does not double-register).
    pub fn mark_registered(&mut self, id: ContainerId) {
        self.registered.insert(id);
    }
}

/// Convenience: watcher-driven sync at a point in time — drains events,
/// registers/deregisters, and returns the actions.
pub fn watch_once<S: TraceSink>(
    watcher: &mut ContainerWatcher,
    cluster: &mut Cluster,
    controller: &mut Controller<S>,
    _now: SimTime,
) -> Vec<Action> {
    watcher.sync(cluster, controller)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EscraConfig;
    use escra_cfs::MIB;
    use escra_cluster::{AppId, ContainerSpec, NodeSpec};

    const APP: AppId = AppId::new(0);

    fn setup() -> (Cluster, Controller, ContainerWatcher) {
        let cluster = Cluster::new(vec![NodeSpec {
            cores: 8,
            mem_bytes: 16 << 30,
        }]);
        let mut controller = Controller::new(EscraConfig::default());
        controller.register_app(APP, 8.0, 2048 * MIB);
        (cluster, controller, ContainerWatcher::new())
    }

    #[test]
    fn created_containers_are_registered() {
        let (mut cluster, mut controller, mut watcher) = setup();
        let id = cluster
            .deploy(ContainerSpec::new("web", APP), SimTime::ZERO)
            .expect("deploy");
        let actions = watcher.sync(&mut cluster, &mut controller);
        assert_eq!(actions.len(), 2, "cpu + mem bootstrap actions");
        assert_eq!(watcher.registered_count(), 1);
        assert_eq!(controller.allocator().quota_of(id), Some(1.0));
    }

    #[test]
    fn sync_is_idempotent_on_replay() {
        let (mut cluster, mut controller, mut watcher) = setup();
        let id = cluster
            .deploy(ContainerSpec::new("web", APP), SimTime::ZERO)
            .expect("deploy");
        watcher.sync(&mut cluster, &mut controller);
        watcher.mark_registered(id); // explicit no-op on top
        let actions = watcher.sync(&mut cluster, &mut controller);
        assert!(actions.is_empty());
        assert_eq!(controller.allocator().container_count(), 1);
    }

    #[test]
    fn termination_deregisters_and_frees_the_pool() {
        let (mut cluster, mut controller, mut watcher) = setup();
        let id = cluster
            .deploy(ContainerSpec::new("web", APP), SimTime::ZERO)
            .expect("deploy");
        watcher.sync(&mut cluster, &mut controller);
        let before = controller
            .allocator()
            .app_pool(APP)
            .expect("app")
            .unallocated_cpu_cores();
        cluster
            .terminate(id, SimTime::from_secs(1))
            .expect("terminate");
        watcher.sync(&mut cluster, &mut controller);
        assert_eq!(watcher.registered_count(), 0);
        assert_eq!(controller.allocator().container_count(), 0);
        let after = controller
            .allocator()
            .app_pool(APP)
            .expect("app")
            .unallocated_cpu_cores();
        assert!(after > before, "terminated container's quota returns");
    }

    #[test]
    fn oom_kill_keeps_registration() {
        let (mut cluster, mut controller, mut watcher) = setup();
        let id = cluster
            .deploy(ContainerSpec::new("web", APP), SimTime::ZERO)
            .expect("deploy");
        watcher.sync(&mut cluster, &mut controller);
        cluster.oom_kill(id, SimTime::from_secs(1)).expect("kill");
        cluster.tick(SimTime::from_secs(5));
        watcher.sync(&mut cluster, &mut controller);
        // The per-container socket persists across restarts (§IV-B).
        assert_eq!(controller.allocator().container_count(), 1);
        assert_eq!(watcher.registered_count(), 1);
    }
}
