//! The Distributed Container abstraction (paper §III, Fig. 3).
//!
//! A Distributed Container caps the *aggregate* CPU and memory of all
//! containers belonging to one application/tenant, across hosts, and —
//! unlike Kubernetes Resource Quotas, which are checked only at admission
//! — enforces the cap continuously at runtime: every quota grant draws
//! from the global pool and every shrink returns to it.

use escra_cluster::AppId;
use serde::{Deserialize, Serialize};

/// Global resource pool for one application.
///
/// Invariants (checked in debug builds and by property tests):
/// * `allocated_cpu_cores ≤ cpu_limit_cores`
/// * `allocated_mem_bytes ≤ mem_limit_bytes`
///
/// ```
/// use escra_core::distributed_container::DistributedContainer;
/// use escra_cluster::AppId;
///
/// let mut dc = DistributedContainer::new(AppId::new(0), 8.0, 1 << 30);
/// assert_eq!(dc.try_allocate_cpu(3.0), 3.0);
/// assert_eq!(dc.try_allocate_cpu(10.0), 5.0); // capped at the pool
/// dc.release_cpu(2.0);
/// assert_eq!(dc.unallocated_cpu_cores(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedContainer {
    app: AppId,
    cpu_limit_cores: f64,
    mem_limit_bytes: u64,
    allocated_cpu_cores: f64,
    allocated_mem_bytes: u64,
}

impl DistributedContainer {
    /// Creates a pool with the application's global limits (Ωl for CPU).
    ///
    /// # Panics
    ///
    /// Panics if either limit is non-positive.
    pub fn new(app: AppId, cpu_limit_cores: f64, mem_limit_bytes: u64) -> Self {
        assert!(
            cpu_limit_cores > 0.0 && cpu_limit_cores.is_finite(),
            "global CPU limit must be positive"
        );
        assert!(mem_limit_bytes > 0, "global memory limit must be positive");
        DistributedContainer {
            app,
            cpu_limit_cores,
            mem_limit_bytes,
            allocated_cpu_cores: 0.0,
            allocated_mem_bytes: 0,
        }
    }

    /// The application this pool belongs to.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The global CPU limit Ωl, in cores.
    pub fn cpu_limit_cores(&self) -> f64 {
        self.cpu_limit_cores
    }

    /// The global memory limit, in bytes.
    pub fn mem_limit_bytes(&self) -> u64 {
        self.mem_limit_bytes
    }

    /// CPU currently handed out as container quotas, in cores.
    pub fn allocated_cpu_cores(&self) -> f64 {
        self.allocated_cpu_cores
    }

    /// Memory currently handed out as container limits, in bytes.
    pub fn allocated_mem_bytes(&self) -> u64 {
        self.allocated_mem_bytes
    }

    /// Unallocated CPU runtime for the application — the
    /// `Ωl − Σ C(i)q` term of the scale-up formula.
    pub fn unallocated_cpu_cores(&self) -> f64 {
        (self.cpu_limit_cores - self.allocated_cpu_cores).max(0.0)
    }

    /// Unallocated memory available for OOM grants.
    pub fn unallocated_mem_bytes(&self) -> u64 {
        self.mem_limit_bytes
            .saturating_sub(self.allocated_mem_bytes)
    }

    /// Allocates up to `cores` from the pool; returns the amount granted
    /// (possibly less than requested, never negative).
    pub fn try_allocate_cpu(&mut self, cores: f64) -> f64 {
        debug_assert!(cores >= 0.0);
        let grant = cores.max(0.0).min(self.unallocated_cpu_cores());
        self.allocated_cpu_cores += grant;
        debug_assert!(self.allocated_cpu_cores <= self.cpu_limit_cores + 1e-9);
        grant
    }

    /// Returns `cores` to the pool (saturating at zero allocated).
    pub fn release_cpu(&mut self, cores: f64) {
        debug_assert!(cores >= 0.0);
        self.allocated_cpu_cores = (self.allocated_cpu_cores - cores.max(0.0)).max(0.0);
    }

    /// Allocates up to `bytes` of memory; returns the granted amount.
    pub fn try_allocate_mem(&mut self, bytes: u64) -> u64 {
        let grant = bytes.min(self.unallocated_mem_bytes());
        self.allocated_mem_bytes += grant;
        grant
    }

    /// Returns `bytes` to the pool — the ψ reclaimed by Agents flows back
    /// here ("global_mem_limit ← global_mem_limit + ψ" in §IV-C is the
    /// unallocated pool growing).
    pub fn release_mem(&mut self, bytes: u64) {
        self.allocated_mem_bytes = self.allocated_mem_bytes.saturating_sub(bytes);
    }

    /// Fraction of the CPU limit currently allocated, in `[0, 1]`.
    pub fn cpu_utilization_of_limit(&self) -> f64 {
        self.allocated_cpu_cores / self.cpu_limit_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc() -> DistributedContainer {
        DistributedContainer::new(AppId::new(1), 4.0, 1000)
    }

    #[test]
    fn cpu_pool_caps_at_limit() {
        let mut p = dc();
        assert_eq!(p.try_allocate_cpu(3.0), 3.0);
        assert_eq!(p.try_allocate_cpu(3.0), 1.0);
        assert_eq!(p.unallocated_cpu_cores(), 0.0);
        assert_eq!(p.try_allocate_cpu(1.0), 0.0);
    }

    #[test]
    fn cpu_release_replenishes() {
        let mut p = dc();
        p.try_allocate_cpu(4.0);
        p.release_cpu(1.5);
        assert!((p.unallocated_cpu_cores() - 1.5).abs() < 1e-12);
        // Over-release saturates rather than going negative.
        p.release_cpu(100.0);
        assert_eq!(p.allocated_cpu_cores(), 0.0);
        assert_eq!(p.unallocated_cpu_cores(), 4.0);
    }

    #[test]
    fn mem_pool_grant_and_reclaim() {
        let mut p = dc();
        assert_eq!(p.try_allocate_mem(800), 800);
        assert_eq!(p.try_allocate_mem(500), 200);
        assert_eq!(p.unallocated_mem_bytes(), 0);
        p.release_mem(300); // ψ returned by an Agent
        assert_eq!(p.unallocated_mem_bytes(), 300);
        assert_eq!(p.allocated_mem_bytes(), 700);
    }

    #[test]
    fn utilization_fraction() {
        let mut p = dc();
        p.try_allocate_cpu(2.0);
        assert_eq!(p.cpu_utilization_of_limit(), 0.5);
    }

    #[test]
    #[should_panic(expected = "global CPU limit must be positive")]
    fn invalid_limits_panic() {
        DistributedContainer::new(AppId::new(0), 0.0, 100);
    }
}
