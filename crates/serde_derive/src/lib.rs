//! Vendored derive macros for the offline `serde` shim.
//!
//! The container has no registry access, so `syn`/`quote` are
//! unavailable; the derives below hand-parse the item's token stream.
//! Supported shapes (all this workspace uses):
//!
//! - unit / named-field / tuple structs
//! - enums with unit, tuple, and struct variants (externally tagged)
//!
//! Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed outline of a struct or enum item.
enum Item {
    Unit {
        name: String,
    },
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Splits the tokens of a brace/paren group on top-level commas.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading `#[...]` attribute pairs from a token slice.
fn strip_attrs(tokens: &mut Vec<TokenTree>) {
    loop {
        let is_attr = matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '#')
            && matches!(tokens.get(1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket);
        if is_attr {
            tokens.drain(..2);
        } else {
            return;
        }
    }
}

/// Strips a leading visibility qualifier (`pub`, `pub(crate)`, ...).
fn strip_vis(tokens: &mut Vec<TokenTree>) {
    if matches!(tokens.first(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.remove(0);
        if matches!(tokens.first(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.remove(0);
        }
    }
}

/// Field names of a named-field group body (`{ a: T, b: U }`).
fn named_fields(body: Vec<TokenTree>) -> Vec<String> {
    split_commas(body)
        .into_iter()
        .filter_map(|mut field| {
            strip_attrs(&mut field);
            strip_vis(&mut field);
            match field.first() {
                Some(TokenTree::Ident(i)) => Some(i.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    strip_attrs(&mut tokens);
    strip_vis(&mut tokens);

    let kind = match tokens.first() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    let name = match tokens.get(1) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected item name".into()),
    };
    if matches!(tokens.get(2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive shim does not support generics on `{name}`"));
    }

    match kind.as_str() {
        "struct" => match tokens.get(2) {
            None | Some(TokenTree::Punct(_)) => Ok(Item::Unit { name }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: named_fields(g.stream().into_iter().collect()),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: split_commas(g.stream().into_iter().collect()).len(),
                })
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => {
            let body = match tokens.get(2) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err(format!("expected enum body for `{name}`")),
            };
            let mut variants = Vec::new();
            for mut var in split_commas(body.into_iter().collect()) {
                strip_attrs(&mut var);
                if var.is_empty() {
                    continue;
                }
                let vname = match var.first() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    _ => return Err(format!("expected variant name in `{name}`")),
                };
                let shape = match var.get(1) {
                    None => VariantShape::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        VariantShape::Named(named_fields(g.stream().into_iter().collect()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        VariantShape::Tuple(split_commas(g.stream().into_iter().collect()).len())
                    }
                    // `Variant = 3` discriminants: treat as unit.
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                    _ => return Err(format!("unsupported variant shape in `{name}`")),
                };
                variants.push(Variant { name: vname, shape });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// `#[derive(Serialize)]` — emits a `serde::Serialize` impl lowering the
/// item to the shim's `Value` tree (externally-tagged enum encoding).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let (name, body) = match item {
        Item::Unit { name } => (
            name.clone(),
            format!("serde::Value::String({name:?}.to_string())"),
        ),
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            (
                name,
                format!("serde::Value::Object(vec![{}])", pairs.join(", ")),
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                (name, "serde::Serialize::to_value(&self.0)".to_string())
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                (
                    name,
                    format!("serde::Value::Array(vec![{}])", elems.join(", ")),
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push(format!(
                        "{name}::{vn} => serde::Value::String({vn:?}.to_string()),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vn}({}) => serde::Value::Object(vec![({vn:?}.to_string(), {inner})]),",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Object(vec![({vn:?}.to_string(), serde::Value::Object(vec![{}]))]),",
                            fields.join(", "),
                            pairs.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .unwrap()
}

/// `#[derive(Deserialize)]` — emits the no-op marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = match item {
        Item::Unit { name }
        | Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::Enum { name, .. } => name,
    };
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}
