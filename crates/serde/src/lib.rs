//! Vendored, offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the minimal surface it actually uses: a [`Serialize`] trait
//! that lowers values into a JSON-like [`Value`] tree (consumed by the
//! sibling `serde_json` shim), a no-op [`Deserialize`] marker, and
//! derive macros for both (from the sibling `serde_derive` shim).
//!
//! The derive macros understand unit/named/tuple structs and enums with
//! unit, tuple, and struct variants — exactly the shapes this workspace
//! defines. Generic types are not supported.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, VecDeque};

/// A JSON-like value tree, the target of [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key/value object.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produces the value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Marker trait emitted by the no-op `#[derive(Deserialize)]`.
///
/// Nothing in this workspace deserializes; the derive exists so the
/// seed code's `#[derive(Serialize, Deserialize)]` lines keep compiling.
pub trait Deserialize {}

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $as)
            }
        })*
    };
}

impl_int!(
    u8 => UInt as u64,
    u16 => UInt as u64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
    i8 => Int as i64,
    i16 => Int as i64,
    i32 => Int as i64,
    i64 => Int as i64,
    isize => Int as i64,
);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        })*
    };
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u64.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
    }

    #[test]
    fn containers_lower_recursively() {
        let v = vec![(1.0f64, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![
                Value::Float(1.0),
                Value::Float(2.0)
            ])])
        );
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
    }
}
