//! # escra-simcore
//!
//! Deterministic discrete-event simulation core used by every other crate
//! in the Escra reproduction:
//!
//! * [`time`] — integer-microsecond [`time::SimTime`] / [`time::SimDuration`];
//! * [`events`] — a time-ordered [`events::EventQueue`] with FIFO
//!   tie-breaking and a monotone [`events::Clock`];
//! * [`rng`] — a seeded, forkable [`rng::SimRng`] with the distributions
//!   the workloads need (uniform, exponential, Poisson, normal, Pareto);
//! * [`window`] — the sliding-window statistics the Escra Resource
//!   Allocator runs on (paper §IV-D1);
//! * [`histogram`] — HDR-style log-bucketed histograms for latency and
//!   slack CDFs (paper Figs. 5–7);
//! * [`timeseries`] — limit-over-time recorders (paper Figs. 2, 8, 9);
//! * [`stats`] — percentiles and comparison helpers.
//!
//! Everything here is pure and deterministic: no wall-clock time, no
//! global state, every random draw derived from one `u64` seed.
//!
//! ```
//! use escra_simcore::prelude::*;
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_millis(100), "period boundary");
//! let mut clock = Clock::new();
//! while let Some((t, event)) = queue.pop() {
//!     clock.advance_to(t);
//!     assert_eq!(event, "period boundary");
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod histogram;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeseries;
pub mod window;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::events::{Clock, EventQueue};
    pub use crate::histogram::LogHistogram;
    pub use crate::rng::SimRng;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::timeseries::TimeSeries;
    pub use crate::window::{BitWindow, InlineWindow, SlidingWindow};
}
