//! Time-series recording.
//!
//! The limit-over-time plots (Figs. 2, 8, 9) are produced from
//! [`TimeSeries`] recorders: append-only `(time, value)` samples with
//! helpers for per-second averaging and pairwise differencing (the
//! "savings" panels).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// An append-only series of `(time, value)` samples.
///
/// ```
/// use escra_simcore::{timeseries::TimeSeries, time::SimTime};
/// let mut ts = TimeSeries::new("cpu_limit");
/// ts.record(SimTime::from_secs(0), 4.0);
/// ts.record(SimTime::from_secs(1), 6.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last(), Some(6.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name (used as a column header in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` is earlier than the last sample.
    pub fn record(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.times.last().is_none_or(|last| *last <= t),
            "time series must be recorded in order"
        );
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Most recent value.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Mean of all values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Maximum value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Averages samples into fixed `bucket_secs`-second buckets, returning
    /// `(bucket_start_secs, mean_value)` — the per-second averaging used in
    /// Figs. 8 and 9.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is zero.
    pub fn resample_secs(&self, bucket_secs: u64) -> Vec<(f64, f64)> {
        assert!(bucket_secs > 0, "bucket size must be positive");
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut bucket: Option<(u64, f64, u64)> = None; // (index, sum, n)
        for (t, v) in self.iter() {
            let idx = t.as_micros() / (bucket_secs * 1_000_000);
            match bucket {
                Some((cur, ref mut sum, ref mut n)) if cur == idx => {
                    *sum += v;
                    *n += 1;
                }
                Some((cur, sum, n)) => {
                    out.push(((cur * bucket_secs) as f64, sum / n as f64));
                    bucket = Some((idx, v, 1));
                }
                None => bucket = Some((idx, v, 1)),
            }
        }
        if let Some((cur, sum, n)) = bucket {
            out.push(((cur * bucket_secs) as f64, sum / n as f64));
        }
        out
    }

    /// Pointwise difference `self - other` on `other`'s resampled grid —
    /// the "savings" series of Figs. 8d/9d. Buckets missing from either
    /// series are skipped.
    pub fn savings_vs(&self, other: &TimeSeries, bucket_secs: u64) -> Vec<(f64, f64)> {
        let a = self.resample_secs(bucket_secs);
        let b = other.resample_secs(bucket_secs);
        let mut out = Vec::new();
        let mut j = 0;
        for (t, va) in a {
            while j < b.len() && b[j].0 < t {
                j += 1;
            }
            if j < b.len() && (b[j].0 - t).abs() < f64::EPSILON {
                out.push((t, va - b[j].1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(samples: &[(u64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new("t");
        for (ms, v) in samples {
            ts.record(SimTime::from_millis(*ms), *v);
        }
        ts
    }

    #[test]
    fn basic_accessors() {
        let ts = series(&[(0, 1.0), (500, 3.0)]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.max(), Some(3.0));
        assert_eq!(ts.name(), "t");
        let pairs: Vec<_> = ts.iter().collect();
        assert_eq!(pairs[0], (SimTime::ZERO, 1.0));
    }

    #[test]
    fn resample_averages_within_buckets() {
        let ts = series(&[(0, 2.0), (400, 4.0), (1200, 10.0), (1800, 20.0)]);
        let r = ts.resample_secs(1);
        assert_eq!(r, vec![(0.0, 3.0), (1.0, 15.0)]);
    }

    #[test]
    fn resample_skips_empty_buckets() {
        let ts = series(&[(0, 1.0), (5000, 9.0)]);
        let r = ts.resample_secs(1);
        assert_eq!(r, vec![(0.0, 1.0), (5.0, 9.0)]);
    }

    #[test]
    fn savings_is_pointwise_difference() {
        let a = series(&[(0, 10.0), (1000, 10.0)]);
        let b = series(&[(0, 4.0), (1000, 7.0)]);
        let s = a.savings_vs(&b, 1);
        assert_eq!(s, vec![(0.0, 6.0), (1.0, 3.0)]);
    }

    #[test]
    fn empty_series_behaviour() {
        let ts = TimeSeries::new("e");
        assert!(ts.is_empty());
        assert_eq!(ts.last(), None);
        assert!(ts.resample_secs(1).is_empty());
    }
}
