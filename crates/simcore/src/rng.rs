//! Deterministic random number generation.
//!
//! Every source of randomness in the simulator flows from a single `u64`
//! seed through [`SimRng`], a xoshiro256\*\* generator seeded via SplitMix64.
//! Independent logical streams (one per container, per workload, ...) are
//! derived with [`SimRng::fork`] so that adding a consumer never perturbs
//! the draws seen by existing consumers.

/// A deterministic pseudo-random number generator (xoshiro256\*\*).
///
/// ```
/// use escra_simcore::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent stream labelled by `stream`.
    ///
    /// Forking with distinct labels from the same parent yields streams
    /// that do not overlap in practice, and forking is itself deterministic.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the parent state with the label through SplitMix64.
        let mut sm = self.s[0]
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(stream ^ self.s[3].rotate_left(17));
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free multiply-shift; bias is negligible
        // for the bounds used in the simulator and determinism is what
        // matters here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given `rate` (λ).
    ///
    /// Mean is `1 / rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Inverse transform; (1 - u) avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Poisson-distributed count with mean `lambda` (Knuth's algorithm for
    /// small lambda, normal approximation above 30 for speed).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let n = self.normal(lambda, lambda.sqrt());
            return n.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Normally distributed value (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Log-normally distributed value parameterised by the mean and standard
    /// deviation of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto-distributed value with scale `xm` and shape `alpha`
    /// (heavy-tailed; useful for service-time tails).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0);
        xm / (1.0 - self.next_f64()).powf(1.0 / alpha)
    }

    /// Picks an index according to non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = SimRng::new(1);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let mut f1b = root.fork(1);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        // Distinct labels should (with overwhelming probability) differ.
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&y));
            let z = r.next_below(10);
            assert!(z < 10);
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_close() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        // Large-lambda path.
        let mean: f64 = (0..n).map(|_| r.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(17);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(19);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac = counts[2] as f64 / 30_000.0;
        assert!((frac - 0.7).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }
}
