//! Simulated time.
//!
//! All simulation time is expressed in integer **microseconds** since the
//! start of the simulation. Microsecond resolution is fine enough for the
//! paper's fastest action (limit application in "100s of microseconds")
//! while keeping arithmetic exact and deterministic.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant in simulated time (microseconds since simulation start).
///
/// `SimTime` is a transparent newtype over `u64` ([`C-NEWTYPE`]); it cannot
/// be confused with a duration thanks to the type system.
///
/// ```
/// use escra_simcore::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(100);
/// assert_eq!(t.as_micros(), 100_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier:?} > {self:?}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Rounds down to a multiple of `period` (e.g. a CFS period boundary).
    pub fn align_down(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "period must be non-zero");
        SimTime(self.0 - self.0 % period.0)
    }

    /// Rounds up to the next multiple of `period`.
    pub fn align_up(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "period must be non-zero");
        let rem = self.0 % period.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 + (period.0 - rem))
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds (rounded to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, rounding to microseconds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Number of whole `rhs` periods in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<u64> for SimDuration {
    /// Interprets a raw integer as microseconds.
    fn from(us: u64) -> Self {
        SimDuration(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(150);
        let d = SimDuration::from_millis(50);
        assert_eq!((t + d).as_millis(), 200);
        assert_eq!((t - d).as_millis(), 100);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn align_boundaries() {
        let period = SimDuration::from_millis(100);
        assert_eq!(
            SimTime::from_millis(150).align_down(period),
            SimTime::from_millis(100)
        );
        assert_eq!(
            SimTime::from_millis(150).align_up(period),
            SimTime::from_millis(200)
        );
        assert_eq!(
            SimTime::from_millis(200).align_up(period),
            SimTime::from_millis(200)
        );
        assert_eq!(
            SimTime::from_millis(200).align_down(period),
            SimTime::from_millis(200)
        );
    }

    #[test]
    fn duration_since_and_saturation() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(5);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(3));
        assert_eq!(a.saturating_sub(SimDuration::from_secs(10)), SimTime::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.1).as_millis(), 100);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_millis(100).mul_f64(0.5).as_millis(), 50);
        assert_eq!(
            SimDuration::from_secs(1) / SimDuration::from_millis(100),
            10
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }
}
