//! Discrete-event scheduling.
//!
//! [`EventQueue`] is a time-ordered priority queue with deterministic
//! FIFO tie-breaking: events scheduled for the same instant pop in the
//! order they were pushed. For simulations that need an event order
//! *independent of push order*, [`EventQueue::push_keyed`] attaches a
//! canonical `u64` key that breaks same-time ties before the FIFO
//! sequence number — the pop order then depends only on `(time, key)`
//! for distinct keys, no matter how the pushes were interleaved. The
//! payload type is generic so each layer of the simulator can define
//! its own event enum.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    key: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then
        // lowest-key-first, then lowest-sequence-first for FIFO ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
///
/// ```
/// use escra_simcore::{events::EventQueue, time::SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(20), "b");
/// q.push(SimTime::from_millis(10), "a");
/// q.push(SimTime::from_millis(20), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time` with key 0 (pure FIFO among ties).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_keyed(time, 0, event);
    }

    /// Schedules `event` at `time` with a canonical tie-breaking `key`.
    ///
    /// Among events due at the same instant, lower keys pop first; equal
    /// keys fall back to push-order FIFO. Schedulers that assign each
    /// event a unique `(time, key)` therefore observe a pop order that is
    /// a pure function of the schedule, independent of push interleaving.
    ///
    /// ```
    /// use escra_simcore::{events::EventQueue, time::SimTime};
    /// let t = SimTime::from_millis(4);
    /// let mut q = EventQueue::new();
    /// q.push_keyed(t, 2, "second");
    /// q.push_keyed(t, 1, "first");
    /// assert_eq!(q.pop(), Some((t, "first")));
    /// assert_eq!(q.pop(), Some((t, "second")));
    /// ```
    pub fn push_keyed(&mut self, time: SimTime, key: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            key,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A monotone simulation clock, advanced only by the driver loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time: simulated time
    /// never flows backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 1);
        q.push(SimTime::from_millis(1), 2);
        q.push(SimTime::from_millis(5), 3);
        q.push(SimTime::from_millis(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "x");
        assert_eq!(q.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_millis(10)),
            Some((SimTime::from_millis(10), "x"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_millis(i), i);
        }
        assert_eq!(q.len(), 10);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_millis(10));
        c.advance_to(c.now() + SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_backwards() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_millis(10));
        c.advance_to(SimTime::from_millis(5));
    }

    #[test]
    fn keys_break_ties_before_fifo() {
        let t = SimTime::from_millis(7);
        let mut q = EventQueue::new();
        q.push_keyed(t, 3, "c");
        q.push_keyed(t, 1, "a");
        q.push_keyed(t, 2, "b");
        q.push_keyed(SimTime::from_millis(6), 9, "early");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["early", "a", "b", "c"]);
    }

    #[test]
    fn keyed_order_is_push_order_independent() {
        // Any permutation of pushes with distinct (time, key) pairs pops
        // in exactly the same order.
        let mut items: Vec<(u64, u64)> = Vec::new();
        for ms in 0..5u64 {
            for key in 0..4u64 {
                items.push((ms, key));
            }
        }
        let mut rng = crate::rng::SimRng::new(77);
        let mut reference: Option<Vec<(u64, u64)>> = None;
        for _ in 0..10 {
            // Fisher–Yates shuffle of the push order.
            for i in (1..items.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                items.swap(i, j);
            }
            let mut q = EventQueue::new();
            for &(ms, key) in &items {
                q.push_keyed(SimTime::from_millis(ms), key, (ms, key));
            }
            let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            match &reference {
                None => reference = Some(order),
                Some(r) => assert_eq!(&order, r),
            }
        }
    }

    #[test]
    fn plain_push_keeps_fifo_within_key_zero() {
        let t = SimTime::from_millis(1);
        let mut q = EventQueue::new();
        q.push(t, "first");
        q.push(t, "second");
        q.push_keyed(t, 0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn large_interleaving_stays_sorted() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::SimRng::new(5);
        for i in 0..5000u64 {
            q.push(SimTime::from_micros(rng.next_below(1000)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
