//! Log-bucketed histograms for latency and slack distributions.
//!
//! [`LogHistogram`] is an HDR-style histogram: values are bucketed with
//! bounded relative error so that 50th–99.9th percentiles of latencies
//! spanning microseconds to minutes can be recorded compactly. The paper's
//! CDF figures (Figs. 5–7) are produced from these histograms.

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power of two (~1.5 % relative error).
const SUB_BUCKETS: usize = 64;

/// A log-bucketed histogram of non-negative `f64` samples.
///
/// ```
/// use escra_simcore::histogram::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) >= 2.0 && h.percentile(50.0) <= 3.1);
/// assert!(h.percentile(100.0) >= 99.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogHistogram {
    /// counts[e][s]: bucket for values in [2^(e-B), 2^(e-B+1)) split into
    /// SUB_BUCKETS linear slots; sparse map keyed by exponent.
    buckets: Vec<(i32, Vec<u64>)>,
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

fn bucket_of(value: f64) -> (i32, usize) {
    debug_assert!(value > 0.0);
    let exp = value.log2().floor() as i32;
    let base = (2.0f64).powi(exp);
    let frac = (value - base) / base; // in [0, 1)
    let sub = ((frac * SUB_BUCKETS as f64) as usize).min(SUB_BUCKETS - 1);
    (exp, sub)
}

fn bucket_midpoint(exp: i32, sub: usize) -> f64 {
    let base = (2.0f64).powi(exp);
    base + base * (sub as f64 + 0.5) / SUB_BUCKETS as f64
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Vec::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// Negative samples are clamped to zero (slack can be transiently
    /// negative during a limit update; the paper reports absolute slack).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zero_count += 1;
            return;
        }
        let (exp, sub) = bucket_of(v);
        match self.buckets.binary_search_by_key(&exp, |(e, _)| *e) {
            Ok(i) => self.buckets[i].1[sub] += 1,
            Err(i) => {
                let mut row = vec![0u64; SUB_BUCKETS];
                row[sub] = 1;
                self.buckets.insert(i, (exp, row));
            }
        }
    }

    /// Records `n` occurrences of one sample value.
    pub fn record_n(&mut self, value: f64, n: u64) {
        for _ in 0..n {
            self.record(value);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Value at percentile `p` in `[0, 100]`, with bounded relative error.
    ///
    /// Returns 0.0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0.0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero_count;
        if rank <= seen {
            return 0.0;
        }
        for (exp, row) in &self.buckets {
            for (sub, c) in row.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_midpoint(*exp, sub).min(self.max).max(self.min);
                }
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.zero_count += other.zero_count;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (exp, row) in &other.buckets {
            match self.buckets.binary_search_by_key(exp, |(e, _)| *e) {
                Ok(i) => {
                    for (s, c) in row.iter().enumerate() {
                        self.buckets[i].1[s] += c;
                    }
                }
                Err(i) => self.buckets.insert(i, (*exp, row.clone())),
            }
        }
    }

    /// Extracts an empirical CDF as `(value, cumulative_fraction)` points,
    /// one point per non-empty bucket — the series plotted in Figs. 5–7.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        if self.count == 0 {
            return points;
        }
        let total = self.count as f64;
        let mut cum = self.zero_count;
        if self.zero_count > 0 {
            points.push((0.0, cum as f64 / total));
        }
        for (exp, row) in &self.buckets {
            for (sub, c) in row.iter().enumerate() {
                if *c > 0 {
                    cum += c;
                    points.push((bucket_midpoint(*exp, sub), cum as f64 / total));
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn exact_small_values() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(0.0);
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(50.0), 0.0);
        assert!(h.percentile(99.0) > 9.0);
    }

    #[test]
    fn percentiles_within_relative_error() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        for (p, expect) in [(50.0, 5000.0), (90.0, 9000.0), (99.0, 9900.0)] {
            let got = h.percentile(p);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.03, "p{p}: got {got}, want ~{expect}");
        }
        assert_eq!(h.percentile(100.0), 10_000.0);
        assert_eq!(h.min(), 1.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for i in 0..1000 {
            let v = (i as f64) * 0.37 + 0.01;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        for p in [10.0, 50.0, 95.0, 99.9] {
            assert!((a.percentile(p) - both.percentile(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LogHistogram::new();
        let mut rng = crate::rng::SimRng::new(23);
        for _ in 0..5000 {
            h.record(rng.exponential(0.01));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut last_v = f64::NEG_INFINITY;
        let mut last_f = 0.0;
        for (v, f) in &cdf {
            assert!(*v > last_v);
            assert!(*f >= last_f);
            last_v = *v;
            last_f = *f;
        }
        assert!((last_f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_tiny_values() {
        let mut h = LogHistogram::new();
        h.record(1e-7);
        h.record(2e-7);
        assert!(h.percentile(50.0) > 0.0);
        assert!(h.percentile(50.0) < 1e-6);
    }

    #[test]
    fn record_n_matches_loop() {
        let mut a = LogHistogram::new();
        a.record_n(5.0, 10);
        assert_eq!(a.count(), 10);
        assert!((a.mean() - 5.0).abs() < 0.1);
    }
}
