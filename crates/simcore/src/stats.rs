//! Small statistics helpers shared across the workspace.

/// Exact percentile of a slice (nearest-rank method).
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
///
/// ```
/// use escra_simcore::stats::percentile;
/// let v = [5.0, 1.0, 3.0, 2.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), 3.0);
/// assert_eq!(percentile(&v, 100.0), 5.0);
/// ```
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (0.0 for fewer than two samples).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|x| (x - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Relative change from `baseline` to `new`, in percent.
///
/// `relative_change_pct(200.0, 100.0) == -50.0` (halved).
/// Returns 0.0 when the baseline is zero.
pub fn relative_change_pct(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (new - baseline) / baseline * 100.0
    }
}

/// Improvement factor `baseline / new` (e.g. "reduces slack by 10x").
///
/// Returns `f64::INFINITY` when `new` is zero but `baseline` is not, and
/// 1.0 when both are zero.
pub fn improvement_factor(baseline: f64, new: f64) -> f64 {
    if new == 0.0 {
        if baseline == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        baseline / new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 50.0), 5.0);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn change_and_factor() {
        assert_eq!(relative_change_pct(200.0, 100.0), -50.0);
        assert_eq!(relative_change_pct(100.0, 325.0), 225.0);
        assert_eq!(relative_change_pct(0.0, 5.0), 0.0);
        assert_eq!(improvement_factor(10.0, 1.0), 10.0);
        assert_eq!(improvement_factor(10.0, 0.0), f64::INFINITY);
        assert_eq!(improvement_factor(0.0, 0.0), 1.0);
    }
}
