//! Fixed-capacity sliding-window statistics.
//!
//! The Escra Resource Allocator tracks two windowed statistics per
//! container: the average throttle indicator and the average unused
//! runtime over the last `n` CFS periods (paper §IV-D1). [`SlidingWindow`]
//! provides exactly that in O(1) per update.

use std::collections::VecDeque;

/// A sliding window over the last `capacity` samples with O(1) mean/sum.
///
/// ```
/// use escra_simcore::window::SlidingWindow;
/// let mut w = SlidingWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// w.push(4.0); // evicts 1.0
/// assert_eq!(w.mean(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    samples: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    evictions_since_resum: usize,
}

impl SlidingWindow {
    /// Creates a window keeping the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            samples: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            evictions_since_resum: 0,
        }
    }

    /// Adds a sample, evicting the oldest when full.
    pub fn push(&mut self, value: f64) {
        if self.samples.len() == self.capacity {
            if let Some(old) = self.samples.pop_front() {
                self.sum -= old;
            }
            self.evictions_since_resum += 1;
        }
        self.samples.push_back(value);
        self.sum += value;
        // Re-sum every `capacity` evictions to bound floating-point
        // drift regardless of the window's mean.
        if self.evictions_since_resum >= self.capacity {
            self.sum = self.samples.iter().sum();
            self.evictions_since_resum = 0;
        }
    }

    /// Mean of the retained samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Sum of the retained samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// True when the window holds `capacity` samples.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Largest retained sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.max(x),
            })
        })
    }

    /// Most recent sample (`None` when empty).
    pub fn last(&self) -> Option<f64> {
        self.samples.back().copied()
    }

    /// Iterates the retained samples, oldest first.
    ///
    /// Exposed so canonical state hashing (the `escra-mc` model checker)
    /// can fingerprint the exact window contents — aggregate views like
    /// [`SlidingWindow::sum`] cannot distinguish permuted histories that
    /// diverge later through eviction order.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sum = 0.0;
        self.evictions_since_resum = 0;
    }
}

/// A decayed peak tracker: remembers the maximum observed value and decays
/// it multiplicatively each tick, as used by Autopilot-style recommenders.
#[derive(Debug, Clone)]
pub struct DecayingMax {
    value: f64,
    decay: f64,
}

impl DecayingMax {
    /// Creates a tracker with multiplicative `decay` per tick in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0,1]");
        DecayingMax { value: 0.0, decay }
    }

    /// Observes a sample and applies one decay step.
    pub fn observe(&mut self, sample: f64) {
        self.value = (self.value * self.decay).max(sample);
    }

    /// Current decayed maximum.
    pub fn value(&self) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_partial_window() {
        let mut w = SlidingWindow::new(5);
        assert_eq!(w.mean(), 0.0);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
    }

    #[test]
    fn eviction_keeps_exact_mean() {
        let mut w = SlidingWindow::new(3);
        for v in [1.0, 2.0, 3.0, 10.0, 20.0] {
            w.push(v);
        }
        // Window holds [3, 10, 20].
        assert!((w.mean() - 11.0).abs() < 1e-12);
        assert_eq!(w.max(), Some(20.0));
        assert_eq!(w.last(), Some(20.0));
    }

    #[test]
    fn throttle_rate_usage_pattern() {
        // The allocator pushes 0/1 throttle indicators; mean is the rate.
        let mut w = SlidingWindow::new(4);
        for v in [1.0, 0.0, 1.0, 1.0] {
            w.push(v);
        }
        assert_eq!(w.mean(), 0.75);
    }

    #[test]
    fn clear_resets() {
        let mut w = SlidingWindow::new(2);
        w.push(5.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    fn decaying_max_tracks_and_decays() {
        let mut d = DecayingMax::new(0.5);
        d.observe(8.0);
        assert_eq!(d.value(), 8.0);
        d.observe(1.0);
        assert_eq!(d.value(), 4.0); // 8*0.5 > 1
        d.observe(10.0);
        assert_eq!(d.value(), 10.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn long_run_sum_does_not_drift() {
        // A nonzero-mean stream of values chosen to be inexact in
        // binary; with the old "only re-sum when |sum| < 1e-12" guard
        // the incremental sum drifted unboundedly.
        let mut w = SlidingWindow::new(5);
        for i in 0..1_000_000u64 {
            w.push(0.1 + (i % 7) as f64 * 0.3);
        }
        let exact: f64 = w.samples.iter().sum();
        assert!(
            (w.sum() - exact).abs() < 1e-9,
            "incremental sum {} drifted from exact {}",
            w.sum(),
            exact
        );
        // Mean must stay within one ULP-ish neighborhood of the true
        // windowed mean, not merely near the stream mean.
        assert!((w.mean() - exact / 5.0).abs() < 1e-9);
    }
}
