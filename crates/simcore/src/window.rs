//! Fixed-capacity sliding-window statistics.
//!
//! The Escra Resource Allocator tracks two windowed statistics per
//! container: the average throttle indicator and the average unused
//! runtime over the last `n` CFS periods (paper §IV-D1). [`SlidingWindow`]
//! provides exactly that in O(1) per update.

/// Evictions between drift-guard re-sums of the incremental running sum.
///
/// The compensated (Neumaier) accumulator keeps the running sum within
/// one ULP of a fresh re-sum (a property test in this module holds that
/// bound), so the periodic re-scan exists only as a backstop against
/// pathological cancellation — it can be orders of magnitude rarer than
/// the old once-per-`capacity`-evictions scan that dominated the
/// allocator's ingest hot loop.
///
/// Public so downstream plain-sum rings (the allocator's fused decision
/// windows) resum on exactly the same schedule as [`InlineWindow`].
pub const RESUM_INTERVAL: u32 = 4096;

/// A sliding window over the last `capacity` samples with O(1) mean/sum.
///
/// Storage is a flat ring (no `VecDeque` head/tail masking in the hot
/// path) and the sum is maintained incrementally with Neumaier
/// compensation: each push costs two compensated accumulations instead
/// of a periodic O(capacity) re-scan.
///
/// ```
/// use escra_simcore::window::SlidingWindow;
/// let mut w = SlidingWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// w.push(4.0); // evicts 1.0
/// assert_eq!(w.mean(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    /// Ring storage; grows to `capacity` then overwrites at `head`.
    buf: Vec<f64>,
    /// Index of the oldest retained sample (0 while filling).
    head: u32,
    capacity: u32,
    /// Compensated running sum of the retained samples.
    sum: f64,
    /// Neumaier compensation term; the represented sum is `sum + comp`.
    comp: f64,
    evictions_since_resum: u32,
}

impl SlidingWindow {
    /// Creates a window keeping the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(capacity <= u32::MAX as usize, "window capacity too large");
        SlidingWindow {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity: capacity as u32,
            sum: 0.0,
            comp: 0.0,
            evictions_since_resum: 0,
        }
    }

    /// One compensated accumulation: adds `v` into `sum`, capturing the
    /// exact rounding error of the add in `comp` (Neumaier's variant of
    /// Kahan summation, correct for both |sum| ≥ |v| and |sum| < |v|).
    #[inline]
    fn accumulate(&mut self, v: f64) {
        // Branchless variant of the textbook `if |sum| >= |v|` form:
        // select big/small by magnitude (compiles to f64 cmov/minmax,
        // no unpredictable branch in the allocator's per-entry loop) —
        // `(big - t) + small` is bit-identical to the branched error
        // term on both sides of the comparison.
        let t = self.sum + v;
        let sum_is_big = self.sum.abs() >= v.abs();
        let big = if sum_is_big { self.sum } else { v };
        let small = if sum_is_big { v } else { self.sum };
        self.comp += (big - t) + small;
        self.sum = t;
    }

    /// Re-derives the compensated sum from the retained samples
    /// (oldest first, matching [`SlidingWindow::samples`] order).
    fn resum(&mut self) {
        self.sum = 0.0;
        self.comp = 0.0;
        let head = self.head as usize;
        for i in 0..self.buf.len() {
            let idx = head + i;
            let idx = if idx >= self.buf.len() {
                idx - self.buf.len()
            } else {
                idx
            };
            self.accumulate(self.buf[idx]);
        }
        self.evictions_since_resum = 0;
    }

    /// Adds a sample, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, value: f64) {
        if self.buf.len() < self.capacity as usize {
            self.buf.push(value);
            self.accumulate(value);
            return;
        }
        let head = self.head as usize;
        let old = std::mem::replace(&mut self.buf[head], value);
        self.head = if head + 1 == self.capacity as usize {
            0
        } else {
            self.head + 1
        };
        self.accumulate(value);
        self.accumulate(-old);
        self.evictions_since_resum += 1;
        if self.evictions_since_resum >= RESUM_INTERVAL {
            self.resum();
        }
    }

    /// Mean of the retained samples (0.0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            (self.sum + self.comp) / self.buf.len() as f64
        }
    }

    /// Sum of the retained samples.
    pub fn sum(&self) -> f64 {
        self.sum + self.comp
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when the window holds `capacity` samples.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity as usize
    }

    /// Largest retained sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.buf.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.max(x),
            })
        })
    }

    /// Most recent sample (`None` when empty).
    pub fn last(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.capacity as usize {
            self.buf.last().copied()
        } else {
            let head = self.head as usize;
            let idx = if head == 0 {
                self.buf.len() - 1
            } else {
                head - 1
            };
            Some(self.buf[idx])
        }
    }

    /// Iterates the retained samples, oldest first.
    ///
    /// Exposed so canonical state hashing (the `escra-mc` model checker)
    /// can fingerprint the exact window contents — aggregate views like
    /// [`SlidingWindow::sum`] cannot distinguish permuted histories that
    /// diverge later through eviction order.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        let head = self.head as usize;
        self.buf[head..]
            .iter()
            .chain(self.buf[..head].iter())
            .copied()
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.sum = 0.0;
        self.comp = 0.0;
        self.evictions_since_resum = 0;
    }
}

/// A sliding window over the last `capacity` 0/1 indicator samples,
/// packed one bit per sample with an incrementally maintained popcount.
///
/// This is the throttle-rate window of the allocator hot loop in its
/// cheapest possible form: a push is a masked bit store plus two integer
/// adds — no heap indirection, no floating-point accumulation. The mean
/// is **bit-identical** to a [`SlidingWindow`] fed the same stream as
/// `0.0`/`1.0` samples: every partial sum of small integers is exact in
/// f64 (the Neumaier compensation term is provably zero), so both
/// structures compute the same `ones as f64 / len as f64` division.
#[derive(Debug, Clone)]
pub struct BitWindow {
    /// Bit ring, LSB-first; sample `i` (in ring position, not age) is
    /// bit `i` of the word.
    bits: u64,
    /// Popcount of the retained samples.
    ones: u16,
    /// Retained sample count (`< cap` while filling).
    len: u16,
    /// Ring position of the oldest retained sample once full.
    head: u16,
    cap: u16,
}

impl BitWindow {
    /// Largest supported window, bounded so the whole ring is one word
    /// inline in the allocator's per-container track.
    pub const MAX_CAPACITY: usize = 64;

    /// Creates a window keeping the last `capacity` indicator samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds
    /// [`BitWindow::MAX_CAPACITY`].
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(
            capacity <= BitWindow::MAX_CAPACITY,
            "BitWindow supports at most {} periods",
            BitWindow::MAX_CAPACITY
        );
        BitWindow {
            bits: 0,
            ones: 0,
            len: 0,
            head: 0,
            cap: capacity as u16,
        }
    }

    #[inline]
    fn bit(&self, pos: usize) -> bool {
        (self.bits >> pos) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, pos: usize, value: bool) {
        self.bits = (self.bits & !(1u64 << pos)) | ((value as u64) << pos);
    }

    /// Adds an indicator sample, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, value: bool) {
        if self.len < self.cap {
            // Filling phase appends in ring order, exactly like
            // [`SlidingWindow::push`] appends to its buffer.
            let pos = self.len as usize;
            self.set_bit(pos, value);
            self.ones += value as u16;
            self.len += 1;
            return;
        }
        let head = self.head as usize;
        let old = self.bit(head);
        self.set_bit(head, value);
        self.ones += value as u16;
        self.ones -= old as u16;
        self.head = if head + 1 == self.cap as usize {
            0
        } else {
            self.head + 1
        };
    }

    /// Mean of the retained indicators (0.0 when empty) — the throttle
    /// *rate* over the window.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.ones as f64 / self.len as f64
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the retained indicators, oldest first (the fingerprint
    /// order shared with [`SlidingWindow::samples`]).
    pub fn samples(&self) -> impl Iterator<Item = bool> + '_ {
        let (head, len) = (self.head as usize, self.len as usize);
        let cap = self.cap as usize;
        (0..len).map(move |i| {
            let pos = if len < cap { i } else { (head + i) % cap };
            self.bit(pos)
        })
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.bits = 0;
        self.ones = 0;
        self.len = 0;
        self.head = 0;
    }
}

/// A [`SlidingWindow`] specialised for the allocator's per-container
/// telemetry hot loop: the ring lives inline in the struct (no heap
/// indirection) and the running sum is a plain two-add update instead
/// of Neumaier compensation, cutting the serial FP dependency chain of
/// a push roughly in half.
///
/// The accuracy trade is deliberate and bounded. The running sum can
/// drift from the exact sum by an ulp per eviction; a full re-summation
/// every [`RESUM_INTERVAL`] evictions resets the drift, so the error
/// never exceeds a few thousand ulps (relative error ~1e-13) — far
/// inside the tolerance of threshold comparisons against γ-scale
/// margins. Streams of exactly-representable values (integers, zeros —
/// everything the model checker and the 0/1 indicator paths feed) are
/// summed **exactly**, drift-free, just like the compensated window.
#[derive(Debug, Clone)]
#[repr(C)]
pub struct InlineWindow {
    // Hot scalars first (`repr(C)` keeps them, and the first few ring
    // entries a short window actually uses, on the leading cache line).
    /// Plain running sum of the retained samples.
    sum: f64,
    /// Retained sample count (`< cap` while filling).
    len: u16,
    /// Index of the oldest retained sample (0 while filling).
    head: u16,
    cap: u16,
    evictions_since_resum: u16,
    buf: [f64; InlineWindow::MAX_CAPACITY],
}

impl InlineWindow {
    /// Largest supported window — sized for the allocator's decision
    /// windows (paper default 5 periods; the ablation sweep probes up
    /// to 20), not for general statistics.
    pub const MAX_CAPACITY: usize = 24;

    /// Creates a window keeping the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds
    /// [`InlineWindow::MAX_CAPACITY`].
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(
            capacity <= InlineWindow::MAX_CAPACITY,
            "InlineWindow supports at most {} periods",
            InlineWindow::MAX_CAPACITY
        );
        InlineWindow {
            sum: 0.0,
            len: 0,
            head: 0,
            cap: capacity as u16,
            evictions_since_resum: 0,
            buf: [0.0; InlineWindow::MAX_CAPACITY],
        }
    }

    /// Fresh exact re-summation, oldest first — the drift guard.
    fn resum(&mut self) {
        self.sum = 0.0;
        let (head, len) = (self.head as usize, self.len as usize);
        for i in 0..len {
            let idx = head + i;
            let idx = if idx >= len { idx - len } else { idx };
            self.sum += self.buf[idx];
        }
        self.evictions_since_resum = 0;
    }

    /// Adds a sample, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, value: f64) {
        if self.len < self.cap {
            self.buf[self.len as usize] = value;
            self.len += 1;
            self.sum += value;
            return;
        }
        let head = self.head as usize;
        // SAFETY: `head < cap <= MAX_CAPACITY` is a constructor-checked
        // invariant maintained by the wrap below; the steady-state push
        // is the allocator's hottest load, so the bound is not re-proved
        // per call.
        let slot = unsafe { self.buf.get_unchecked_mut(head) };
        let old = std::mem::replace(slot, value);
        self.head = if head + 1 == self.cap as usize {
            0
        } else {
            self.head + 1
        };
        self.sum += value - old;
        self.evictions_since_resum += 1;
        if self.evictions_since_resum >= RESUM_INTERVAL as u16 {
            self.resum();
        }
    }

    /// Mean of the retained samples (0.0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.sum / self.len as f64
        }
    }

    /// Sum of the retained samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        let (head, len) = (self.head as usize, self.len as usize);
        self.buf[..len][head..]
            .iter()
            .chain(self.buf[..head].iter())
            .copied()
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
        self.sum = 0.0;
        self.evictions_since_resum = 0;
    }
}

/// A decayed peak tracker: remembers the maximum observed value and decays
/// it multiplicatively each tick, as used by Autopilot-style recommenders.
#[derive(Debug, Clone)]
pub struct DecayingMax {
    value: f64,
    decay: f64,
}

impl DecayingMax {
    /// Creates a tracker with multiplicative `decay` per tick in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0,1]");
        DecayingMax { value: 0.0, decay }
    }

    /// Observes a sample and applies one decay step.
    pub fn observe(&mut self, sample: f64) {
        self.value = (self.value * self.decay).max(sample);
    }

    /// Current decayed maximum.
    pub fn value(&self) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_over_partial_window() {
        let mut w = SlidingWindow::new(5);
        assert_eq!(w.mean(), 0.0);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
    }

    #[test]
    fn eviction_keeps_exact_mean() {
        let mut w = SlidingWindow::new(3);
        for v in [1.0, 2.0, 3.0, 10.0, 20.0] {
            w.push(v);
        }
        // Window holds [3, 10, 20].
        assert!((w.mean() - 11.0).abs() < 1e-12);
        assert_eq!(w.max(), Some(20.0));
        assert_eq!(w.last(), Some(20.0));
        assert_eq!(w.samples().collect::<Vec<_>>(), vec![3.0, 10.0, 20.0]);
    }

    #[test]
    fn throttle_rate_usage_pattern() {
        // The allocator pushes 0/1 throttle indicators; mean is the rate.
        let mut w = SlidingWindow::new(4);
        for v in [1.0, 0.0, 1.0, 1.0] {
            w.push(v);
        }
        assert_eq!(w.mean(), 0.75);
    }

    #[test]
    fn clear_resets() {
        let mut w = SlidingWindow::new(2);
        w.push(5.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        assert_eq!(w.samples().collect::<Vec<_>>(), vec![2.0, 3.0]);
    }

    #[test]
    fn decaying_max_tracks_and_decays() {
        let mut d = DecayingMax::new(0.5);
        d.observe(8.0);
        assert_eq!(d.value(), 8.0);
        d.observe(1.0);
        assert_eq!(d.value(), 4.0); // 8*0.5 > 1
        d.observe(10.0);
        assert_eq!(d.value(), 10.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn long_run_sum_does_not_drift() {
        // A nonzero-mean stream of values chosen to be inexact in
        // binary; with the old "only re-sum when |sum| < 1e-12" guard
        // the incremental sum drifted unboundedly.
        let mut w = SlidingWindow::new(5);
        for i in 0..1_000_000u64 {
            w.push(0.1 + (i % 7) as f64 * 0.3);
        }
        let exact: f64 = w.samples().sum();
        assert!(
            (w.sum() - exact).abs() < 1e-9,
            "incremental sum {} drifted from exact {}",
            w.sum(),
            exact
        );
        // Mean must stay within one ULP-ish neighborhood of the true
        // windowed mean, not merely near the stream mean.
        assert!((w.mean() - exact / 5.0).abs() < 1e-9);
    }

    #[test]
    fn ring_order_survives_many_wraps() {
        let mut w = SlidingWindow::new(3);
        for i in 0..10 {
            w.push(i as f64);
        }
        assert_eq!(w.samples().collect::<Vec<_>>(), vec![7.0, 8.0, 9.0]);
        assert_eq!(w.last(), Some(9.0));
        assert_eq!(w.max(), Some(9.0));
        assert_eq!(w.len(), 3);
    }

    /// A fresh compensated re-sum of `vals`, the reference the running
    /// sum is pinned against.
    fn neumaier(vals: impl Iterator<Item = f64>) -> f64 {
        let (mut s, mut c) = (0.0f64, 0.0f64);
        for v in vals {
            let t = s + v;
            if s.abs() >= v.abs() {
                c += (s - t) + v;
            } else {
                c += (v - t) + s;
            }
            s = t;
        }
        s + c
    }

    /// One unit in the last place of `x` (never zero).
    fn ulp(x: f64) -> f64 {
        let next = f64::from_bits(x.abs().to_bits() + 1);
        (next - x.abs()).max(f64::MIN_POSITIVE)
    }

    proptest! {
        /// The incremental running sum never strays more than 1 ULP from
        /// a fresh compensated re-sum of the retained samples — across
        /// arbitrary magnitudes, signs and window sizes, including runs
        /// long enough to cross the drift-guard re-sum boundary.
        #[test]
        fn running_sum_within_one_ulp_of_resummed(
            cap in 1usize..9,
            vals in proptest::collection::vec(-1e12f64..1e12, 1..600),
        ) {
            let mut w = SlidingWindow::new(cap);
            for &v in &vals {
                w.push(v);
                let exact = neumaier(w.samples());
                let err = (w.sum() - exact).abs();
                prop_assert!(
                    err <= ulp(exact),
                    "running sum {} vs re-summed {} (err {}, ulp {})",
                    w.sum(), exact, err, ulp(exact)
                );
            }
            // And the mean is the pinned sum over the retained count.
            let exact = neumaier(w.samples());
            let want = exact / w.len() as f64;
            prop_assert!((w.mean() - want).abs() <= ulp(want));
        }

        /// The ring keeps exactly the last `cap` samples, oldest first.
        #[test]
        fn retained_samples_are_the_stream_tail(
            cap in 1usize..9,
            vals in proptest::collection::vec(-1e6f64..1e6, 1..100),
        ) {
            let mut w = SlidingWindow::new(cap);
            for &v in &vals {
                w.push(v);
            }
            let tail: Vec<f64> =
                vals[vals.len().saturating_sub(cap)..].to_vec();
            prop_assert_eq!(w.samples().collect::<Vec<_>>(), tail);
            prop_assert_eq!(w.last(), vals.last().copied());
        }

        /// A `BitWindow` is bit-for-bit the same statistic as a
        /// `SlidingWindow` fed the stream as 0.0/1.0 samples: integer
        /// partial sums are exact in f64, so both means reduce to the
        /// identical `ones as f64 / len as f64` division.
        #[test]
        fn bit_window_matches_sliding_window_exactly(
            cap in 1usize..65,
            vals in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut bits = BitWindow::new(cap);
            let mut float = SlidingWindow::new(cap);
            for &v in &vals {
                bits.push(v);
                float.push(if v { 1.0 } else { 0.0 });
                prop_assert_eq!(
                    bits.mean().to_bits(), float.mean().to_bits());
                prop_assert_eq!(bits.len(), float.len());
            }
            let as_floats: Vec<f64> = bits
                .samples()
                .map(|b| if b { 1.0 } else { 0.0 })
                .collect();
            prop_assert_eq!(
                as_floats, float.samples().collect::<Vec<_>>());
        }

        /// An `InlineWindow` retains exactly the samples a
        /// `SlidingWindow` retains, sums exactly-representable streams
        /// drift-free, and keeps its plain running sum within the
        /// documented drift bound of a fresh re-summation — including
        /// on streams long enough to cross `RESUM_INTERVAL`.
        #[test]
        fn inline_window_matches_sliding_window(
            cap in 1usize..25,
            vals in proptest::collection::vec(-1e9f64..1e9, 1..200),
            stretch in 1usize..3,
        ) {
            let mut inline_w = InlineWindow::new(cap);
            let mut heap_w = SlidingWindow::new(cap);
            // Optionally replay the stream many times so the eviction
            // counter crosses the drift-guard re-sum threshold and the
            // resum path is exercised too.
            let reps = if stretch == 2 {
                (RESUM_INTERVAL as usize / vals.len()).max(1) + 1
            } else {
                1
            };
            let mut pushes = 0u64;
            for _ in 0..reps {
                for &v in &vals {
                    inline_w.push(v);
                    heap_w.push(v);
                    pushes += 1;
                    // Same retained count; sum within the drift bound
                    // of the exact (compensated) reference: one ulp of
                    // the peak magnitude per eviction since the last
                    // re-sum.
                    prop_assert_eq!(inline_w.len(), heap_w.len());
                    let exact = heap_w.sum();
                    let evictions =
                        (pushes.min(RESUM_INTERVAL as u64)) as f64;
                    let bound = (evictions + 2.0) * ulp(1e9 * cap as f64);
                    prop_assert!(
                        (inline_w.sum() - exact).abs() <= bound,
                        "plain sum {} vs compensated {} (bound {})",
                        inline_w.sum(), exact, bound
                    );
                }
            }
            prop_assert_eq!(
                inline_w.samples().collect::<Vec<_>>(),
                heap_w.samples().collect::<Vec<_>>());
        }

        /// Exactly-representable streams (integers — the shape of every
        /// fixed-point telemetry sample after quantisation) are summed
        /// exactly by the plain running sum: no drift, ever, and the
        /// mean is bit-identical to the compensated window's.
        #[test]
        fn inline_window_is_exact_on_integer_streams(
            cap in 1usize..25,
            vals in proptest::collection::vec(-1_000_000i32..1_000_000, 1..300),
        ) {
            let mut inline_w = InlineWindow::new(cap);
            let mut heap_w = SlidingWindow::new(cap);
            for &v in &vals {
                inline_w.push(v as f64);
                heap_w.push(v as f64);
                prop_assert_eq!(
                    inline_w.mean().to_bits(), heap_w.mean().to_bits());
                prop_assert_eq!(
                    inline_w.sum().to_bits(), heap_w.sum().to_bits());
            }
        }
    }

    /// `clear` returns both inline windows to their fresh state.
    #[test]
    fn inline_windows_clear_to_empty() {
        let mut bits = BitWindow::new(5);
        let mut vals = InlineWindow::new(5);
        for i in 0..7 {
            bits.push(i % 2 == 0);
            vals.push(i as f64);
        }
        bits.clear();
        vals.clear();
        assert!(bits.is_empty());
        assert!(vals.is_empty());
        assert_eq!(bits.mean(), 0.0);
        assert_eq!(vals.mean(), 0.0);
        assert_eq!(bits.samples().count(), 0);
        assert_eq!(vals.samples().count(), 0);
    }
}
