//! Serverless substrate: OpenWhisk-style configuration, action profiles,
//! and the two paper applications (ImageProcess, GridSearch) — §VI-F/G.

use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// OpenWhisk invoker configuration (paper §VI-F: each user-action pod
/// gets 1 vCPU and 256 MiB; the invoker `containerPool` memory bounds the
/// number of concurrent pods).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenWhiskConfig {
    /// Static per-pod CPU request/limit, in cores.
    pub pod_cpu_cores: f64,
    /// Static per-pod memory limit, in MiB.
    pub pod_mem_mib: u64,
    /// Cold-start delay for a new user-action pod.
    pub cold_start: SimDuration,
    /// Idle time after which a warm pod is torn down.
    pub idle_timeout: SimDuration,
    /// The invoker containerPool memory, in MiB — doubles as the Escra
    /// global application memory limit (§IV-E).
    pub container_pool_mem_mib: u64,
}

impl Default for OpenWhiskConfig {
    fn default() -> Self {
        OpenWhiskConfig {
            pod_cpu_cores: 1.0,
            pod_mem_mib: 256,
            cold_start: SimDuration::from_millis(500),
            idle_timeout: SimDuration::from_secs(60),
            container_pool_mem_mib: 32 * 1024,
        }
    }
}

impl OpenWhiskConfig {
    /// The implied global CPU limit when "memory and CPU scale linearly"
    /// (§IV-E): pool memory / pod memory × pod CPU.
    pub fn implied_global_cpu_cores(&self) -> f64 {
        (self.container_pool_mem_mib as f64 / self.pod_mem_mib as f64) * self.pod_cpu_cores
    }

    /// Maximum concurrent pods the containerPool admits.
    pub fn max_pods(&self) -> usize {
        (self.container_pool_mem_mib / self.pod_mem_mib.max(1)) as usize
    }
}

/// Execution profile of one serverless action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionProfile {
    /// Action name.
    pub name: String,
    /// Mean CPU work per activation, in core-milliseconds.
    pub exec_cpu_ms_mean: f64,
    /// Coefficient of variation of the CPU work (lognormal).
    pub exec_cv: f64,
    /// Non-CPU time per activation (datastore reads/writes).
    pub io_wait: SimDuration,
    /// Peak working memory during an activation, in MiB.
    pub mem_mib: u64,
    /// Idle resident memory of a warm pod, in MiB.
    pub idle_mem_mib: u64,
}

impl ActionProfile {
    /// Samples the CPU work of one activation, in core-microseconds.
    pub fn sample_exec_us(&self, rng: &mut SimRng) -> f64 {
        let mean_us = self.exec_cpu_ms_mean * 1_000.0;
        if self.exec_cv <= 0.0 {
            return mean_us;
        }
        let sigma2 = (1.0 + self.exec_cv * self.exec_cv).ln();
        let mu = mean_us.ln() - sigma2 / 2.0;
        rng.lognormal(mu, sigma2.sqrt())
    }
}

/// The ImageProcess action (§VI-F): read image → process metadata →
/// thumbnail → write back. One request every 0.8 s for 10 minutes, four
/// iterations (3 000 invocations total).
pub fn image_process() -> ActionProfile {
    ActionProfile {
        name: "image-process".into(),
        exec_cpu_ms_mean: 1_250.0,
        exec_cv: 0.35,
        io_wait: SimDuration::from_millis(350),
        mem_mib: 150,
        idle_mem_mib: 48,
    }
}

/// Interval between ImageProcess requests (0.8 s).
pub const IMAGE_PROCESS_INTERVAL: SimDuration = SimDuration::from_millis(800);

/// Length of one ImageProcess iteration (10 minutes).
pub const IMAGE_PROCESS_ITERATION: SimDuration = SimDuration::from_secs(600);

/// One GridSearch hyper-parameter task (§VI-F): scikit-learn
/// classification over an Amazon review dataset shard.
pub fn grid_search_task() -> ActionProfile {
    ActionProfile {
        name: "grid-search".into(),
        exec_cpu_ms_mean: 18_000.0,
        exec_cv: 0.25,
        io_wait: SimDuration::from_millis(1_200),
        mem_mib: 190,
        idle_mem_mib: 64,
    }
}

/// Number of GridSearch worker pods (paper: ~115).
pub const GRID_SEARCH_WORKERS: usize = 115;
/// Number of GridSearch tasks (paper: 960).
pub const GRID_SEARCH_TASKS: usize = 960;

/// The GridSearch batch job: a shared task queue 115 workers drain.
///
/// ```
/// use escra_workloads::serverless::GridSearchJob;
/// let mut job = GridSearchJob::new(3);
/// assert_eq!(job.try_claim(), Some(0));
/// assert_eq!(job.try_claim(), Some(1));
/// job.complete();
/// assert!(!job.is_done());
/// assert_eq!(job.try_claim(), Some(2));
/// job.complete();
/// job.complete();
/// assert!(job.is_done());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSearchJob {
    total: usize,
    claimed: usize,
    completed: usize,
}

impl GridSearchJob {
    /// Creates a job with `total` tasks.
    pub fn new(total: usize) -> Self {
        GridSearchJob {
            total,
            claimed: 0,
            completed: 0,
        }
    }

    /// The paper's job: 960 tasks.
    pub fn paper() -> Self {
        GridSearchJob::new(GRID_SEARCH_TASKS)
    }

    /// Claims the next task index, if any remain.
    pub fn try_claim(&mut self) -> Option<usize> {
        if self.claimed < self.total {
            let i = self.claimed;
            self.claimed += 1;
            Some(i)
        } else {
            None
        }
    }

    /// Marks one claimed task finished.
    ///
    /// # Panics
    ///
    /// Panics if more completions than claims are recorded.
    pub fn complete(&mut self) {
        assert!(self.completed < self.claimed, "completion without claim");
        self.completed += 1;
    }

    /// Returns a claimed-but-unfinished task to the queue (the worker
    /// holding it died); another worker can claim it again.
    pub fn abandon(&mut self) {
        if self.claimed > self.completed {
            self.claimed -= 1;
        }
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total tasks.
    pub fn total(&self) -> usize {
        self.total
    }

    /// True when every task has completed.
    pub fn is_done(&self) -> bool {
        self.completed == self.total
    }
}

/// Deterministic ImageProcess arrival times over one iteration starting
/// at `start`.
pub fn image_process_arrivals(start: SimTime) -> Vec<SimTime> {
    let n = IMAGE_PROCESS_ITERATION.as_micros() / IMAGE_PROCESS_INTERVAL.as_micros();
    (0..n).map(|i| start + IMAGE_PROCESS_INTERVAL * i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openwhisk_linear_cpu_scaling() {
        let c = OpenWhiskConfig::default();
        assert_eq!(c.implied_global_cpu_cores(), 128.0);
        assert_eq!(c.max_pods(), 128);
    }

    #[test]
    fn image_process_iteration_has_750_requests() {
        let arrivals = image_process_arrivals(SimTime::ZERO);
        assert_eq!(arrivals.len(), 750); // 600s / 0.8s
        assert_eq!(arrivals[1] - arrivals[0], IMAGE_PROCESS_INTERVAL);
        // Four iterations = 3000 invocations, as in the paper.
        assert_eq!(arrivals.len() * 4, 3_000);
    }

    #[test]
    fn exec_sampling_mean() {
        let p = image_process();
        let mut rng = SimRng::new(1);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| p.sample_exec_us(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1_250_000.0).abs() < 40_000.0, "mean {mean}");
    }

    #[test]
    fn grid_search_job_lifecycle() {
        let mut job = GridSearchJob::paper();
        assert_eq!(job.total(), 960);
        let mut claimed = 0;
        while job.try_claim().is_some() {
            claimed += 1;
        }
        assert_eq!(claimed, 960);
        for _ in 0..960 {
            job.complete();
        }
        assert!(job.is_done());
        assert_eq!(job.completed(), 960);
    }

    #[test]
    #[should_panic(expected = "completion without claim")]
    fn complete_without_claim_panics() {
        GridSearchJob::new(1).complete();
    }

    #[test]
    fn profiles_are_plausible() {
        let ip = image_process();
        let gs = grid_search_task();
        // GridSearch tasks are an order of magnitude heavier.
        assert!(gs.exec_cpu_ms_mean > 10.0 * ip.exec_cpu_ms_mean);
        assert!(ip.mem_mib < 256 && gs.mem_mib < 256);
    }
}
