//! A sysbench-style CPU saturation workload (paper Fig. 2).
//!
//! The paper loads one container with sysbench "saturating 1–4 CPUs at
//! any one time" and shows Escra's limit tracking the demand. This module
//! reproduces that demand signal as a deterministic phase schedule.

use escra_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A CPU demand phase: saturate `cores` for `len`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Cores of demand during the phase.
    pub cores: f64,
    /// Phase duration.
    pub len: SimDuration,
}

/// A repeating schedule of CPU-saturation phases.
///
/// ```
/// use escra_workloads::sysbench::SysbenchLoad;
/// use escra_simcore::time::SimTime;
///
/// let load = SysbenchLoad::paper_fig2();
/// assert_eq!(load.demand_at(SimTime::ZERO), 1.0);
/// assert!(load.total_len().as_secs_f64() > 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SysbenchLoad {
    phases: Vec<Phase>,
}

impl SysbenchLoad {
    /// Creates a schedule from phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero length.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|p| !p.len.is_zero() && p.cores >= 0.0),
            "phases must have positive length and non-negative demand"
        );
        SysbenchLoad { phases }
    }

    /// The Fig. 2 schedule: steps through 1 → 3 → 2 → 4 → 1 → 2 cores
    /// over 40 seconds (the figure spans 0–40 000 ms saturating 1–4 CPUs).
    pub fn paper_fig2() -> Self {
        let s = SimDuration::from_secs;
        SysbenchLoad::new(vec![
            Phase {
                cores: 1.0,
                len: s(6),
            },
            Phase {
                cores: 3.0,
                len: s(7),
            },
            Phase {
                cores: 2.0,
                len: s(6),
            },
            Phase {
                cores: 4.0,
                len: s(8),
            },
            Phase {
                cores: 1.0,
                len: s(6),
            },
            Phase {
                cores: 2.0,
                len: s(7),
            },
        ])
    }

    /// Total length of one schedule cycle.
    pub fn total_len(&self) -> SimDuration {
        self.phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.len)
    }

    /// CPU demand (cores) at `t`; the schedule repeats past its end.
    pub fn demand_at(&self, t: SimTime) -> f64 {
        let cycle = self.total_len().as_micros();
        let mut offset = t.as_micros() % cycle.max(1);
        for p in &self.phases {
            if offset < p.len.as_micros() {
                return p.cores;
            }
            offset -= p.len.as_micros();
        }
        self.phases.last().expect("non-empty").cores
    }

    /// CPU work demanded in core-microseconds over `[start, end)`.
    pub fn work_in_us(&self, start: SimTime, end: SimTime) -> f64 {
        debug_assert!(end >= start);
        // Integrate at millisecond resolution (phases are seconds-long).
        let mut total = 0.0;
        let mut t = start;
        let step = SimDuration::from_millis(1);
        while t < end {
            let chunk = step.as_micros().min((end - t).as_micros()) as f64;
            total += self.demand_at(t) * chunk;
            t += step;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_step_in_order() {
        let l = SysbenchLoad::paper_fig2();
        assert_eq!(l.demand_at(SimTime::from_secs(0)), 1.0);
        assert_eq!(l.demand_at(SimTime::from_secs(7)), 3.0);
        assert_eq!(l.demand_at(SimTime::from_secs(14)), 2.0);
        assert_eq!(l.demand_at(SimTime::from_secs(20)), 4.0);
        assert_eq!(l.demand_at(SimTime::from_secs(28)), 1.0);
        assert_eq!(l.demand_at(SimTime::from_secs(36)), 2.0);
    }

    #[test]
    fn schedule_repeats() {
        let l = SysbenchLoad::paper_fig2();
        let cycle = l.total_len();
        assert_eq!(
            l.demand_at(SimTime::from_secs(1)),
            l.demand_at(SimTime::ZERO + cycle + SimDuration::from_secs(1))
        );
    }

    #[test]
    fn work_integrates_demand() {
        let l = SysbenchLoad::new(vec![Phase {
            cores: 2.0,
            len: SimDuration::from_secs(10),
        }]);
        let w = l.work_in_us(SimTime::ZERO, SimTime::from_millis(100));
        assert!((w - 200_000.0).abs() < 1e-6); // 2 cores * 100ms
    }

    #[test]
    fn saturates_one_to_four_cores() {
        let l = SysbenchLoad::paper_fig2();
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for s in 0..40 {
            let d = l.demand_at(SimTime::from_secs(s));
            min = min.min(d);
            max = max.max(d);
        }
        assert_eq!(min, 1.0);
        assert_eq!(max, 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        SysbenchLoad::new(vec![]);
    }
}
