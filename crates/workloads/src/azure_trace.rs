//! Loader for Azure-Functions-shaped trace CSVs.
//!
//! The public Azure Functions traces ship three tables — per-app
//! invocation counts per minute, execution-duration percentiles, and
//! allocated-memory percentiles. This loader accepts the joined,
//! one-row-per-app form (see DESIGN.md §12 for the schema rationale):
//!
//! ```csv
//! app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0,m1,m2,...
//! fn-resize,96,150,230,1800,0,4,11,...
//! ```
//!
//! * `app` — unique application name;
//! * `mem_p50_mib` / `mem_p99_mib` — allocated-memory percentiles;
//! * `dur_p50_ms` / `dur_p99_ms` — duration percentiles, fitted to a
//!   lognormal via [`TraceWorkload::fit_lognormal_ms`];
//! * `m0..` — invocations per minute; every row must have the same
//!   number of minute columns.
//!
//! The loader normalizes into the shared [`TraceWorkload`] form — the
//! same shape [`crate::synthetic_trace`] generates — so the driver and
//! benchmarks are agnostic to where a trace came from.

use crate::trace_workload::{TraceApp, TraceWorkload};

/// Minimum idle (warm-pod) memory attributed to a traced app, in MiB.
pub const MIN_IDLE_MEM_MIB: u64 = 4;

/// A malformed trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AzureTraceError {
    /// The header row is missing or does not start with the expected
    /// columns.
    BadHeader,
    /// A data row is malformed; carries `(line_number, description)`.
    BadRow(usize, String),
}

impl std::fmt::Display for AzureTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AzureTraceError::BadHeader => {
                write!(
                    f,
                    "bad header: expected \
                     app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0,..."
                )
            }
            AzureTraceError::BadRow(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for AzureTraceError {}

/// The columns preceding the per-minute counts.
const FIXED_COLUMNS: usize = 5;

/// Parses an Azure-Functions-shaped CSV into a [`TraceWorkload`].
///
/// ```
/// use escra_workloads::azure_trace::parse_azure_csv;
/// let csv = "\
/// app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0,m1,m2
/// fn-a,96,150,230,1800,0,4,11
/// fn-b,48,64,50,90,120,118,121
/// ";
/// let w = parse_azure_csv(csv).unwrap();
/// assert_eq!(w.apps.len(), 2);
/// assert_eq!(w.minutes, 3);
/// assert_eq!(w.apps[1].rpm, vec![120.0, 118.0, 121.0]);
/// assert!((w.apps[0].exec_ms_median() - 230.0).abs() < 1e-9);
/// ```
///
/// # Errors
///
/// [`AzureTraceError`] on a missing/incorrect header, non-numeric or
/// negative fields, duplicate app names, or rows whose minute-column
/// count disagrees.
pub fn parse_azure_csv(csv: &str) -> Result<TraceWorkload, AzureTraceError> {
    let mut lines = csv.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, l)) if l.trim().is_empty() => continue,
            Some((_, l)) => break l,
            None => return Err(AzureTraceError::BadHeader),
        }
    };
    let head: Vec<&str> = header.split(',').map(str::trim).collect();
    if head.len() < FIXED_COLUMNS + 1
        || head[..FIXED_COLUMNS]
            != [
                "app",
                "mem_p50_mib",
                "mem_p99_mib",
                "dur_p50_ms",
                "dur_p99_ms",
            ]
    {
        return Err(AzureTraceError::BadHeader);
    }

    let mut apps: Vec<TraceApp> = Vec::new();
    let mut minutes: Option<usize> = None;
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() <= FIXED_COLUMNS {
            return Err(AzureTraceError::BadRow(
                lineno,
                "row has no minute columns".into(),
            ));
        }
        let name = fields[0];
        if name.is_empty() {
            return Err(AzureTraceError::BadRow(lineno, "empty app name".into()));
        }
        if apps.iter().any(|a| a.name == name) {
            return Err(AzureTraceError::BadRow(
                lineno,
                format!("duplicate app name {name:?}"),
            ));
        }
        let num = |col: usize| -> Result<f64, AzureTraceError> {
            let v: f64 = fields[col].parse().map_err(|_| {
                AzureTraceError::BadRow(
                    lineno,
                    format!(
                        "non-numeric {} value {:?}",
                        head[col.min(head.len() - 1)],
                        fields[col]
                    ),
                )
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(AzureTraceError::BadRow(
                    lineno,
                    format!("negative or non-finite value {v} in column {col}"),
                ));
            }
            Ok(v)
        };
        let mem_p50 = num(1)?;
        let mem_p99 = num(2)?;
        let dur_p50 = num(3)?;
        let dur_p99 = num(4)?;
        let mut rpm = Vec::with_capacity(fields.len() - FIXED_COLUMNS);
        for col in FIXED_COLUMNS..fields.len() {
            rpm.push(num(col)?);
        }
        match minutes {
            None => minutes = Some(rpm.len()),
            Some(m) if m != rpm.len() => {
                return Err(AzureTraceError::BadRow(
                    lineno,
                    format!("row has {} minute columns, expected {m}", rpm.len()),
                ));
            }
            Some(_) => {}
        }
        let (mu, sigma) = TraceWorkload::fit_lognormal_ms(dur_p50, dur_p99);
        apps.push(TraceApp {
            name: name.to_string(),
            rpm,
            exec_ms_mu: mu,
            exec_ms_sigma: sigma,
            // Peak working set is the p99 allocation; a warm, idle pod
            // retains a quarter of the median (floored).
            mem_mib: (mem_p99.max(mem_p50).round() as u64).max(1),
            idle_mem_mib: ((mem_p50 / 4.0).round() as u64).max(MIN_IDLE_MEM_MIB),
        });
    }
    Ok(TraceWorkload {
        apps,
        minutes: minutes.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0,m1
fn-a,96,150,230,1800,0,4
fn-b,48,64,50,90,120,118
";

    #[test]
    fn parses_and_normalizes() {
        let w = parse_azure_csv(GOOD).unwrap();
        assert_eq!(w.minutes, 2);
        assert_eq!(w.apps[0].name, "fn-a");
        assert_eq!(w.apps[0].mem_mib, 150);
        assert_eq!(w.apps[0].idle_mem_mib, 24);
        assert_eq!(w.apps[1].rpm, vec![120.0, 118.0]);
        // The lognormal fit reproduces both percentiles.
        let a = &w.apps[0];
        assert!((a.exec_ms_median() - 230.0).abs() < 1e-9);
        let p99 = (a.exec_ms_mu + crate::trace_workload::Z99 * a.exec_ms_sigma).exp();
        assert!((p99 - 1_800.0).abs() < 1e-6);
    }

    #[test]
    fn header_is_mandatory() {
        assert_eq!(
            parse_azure_csv("fn-a,96,150,230,1800,0,4\n"),
            Err(AzureTraceError::BadHeader)
        );
        assert_eq!(parse_azure_csv(""), Err(AzureTraceError::BadHeader));
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "\
app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0,m1
fn-a,96,150,230,1800,0,4
fn-b,48,64,50,90,120
";
        assert!(matches!(
            parse_azure_csv(csv),
            Err(AzureTraceError::BadRow(3, _))
        ));
    }

    #[test]
    fn duplicate_and_bad_values_rejected() {
        let dup = "\
app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0
fn-a,96,150,230,1800,0
fn-a,96,150,230,1800,0
";
        assert!(matches!(
            parse_azure_csv(dup),
            Err(AzureTraceError::BadRow(3, _))
        ));
        let neg = "\
app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0
fn-a,96,150,230,1800,-1
";
        assert!(matches!(
            parse_azure_csv(neg),
            Err(AzureTraceError::BadRow(2, _))
        ));
        let text = "\
app,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0
fn-a,96,x,230,1800,0
";
        assert!(matches!(
            parse_azure_csv(text),
            Err(AzureTraceError::BadRow(2, _))
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "\n\napp,mem_p50_mib,mem_p99_mib,dur_p50_ms,dur_p99_ms,m0\n\nfn-a,96,150,230,1800,6\n\n";
        let w = parse_azure_csv(csv).unwrap();
        assert_eq!(w.apps.len(), 1);
        assert_eq!(w.minutes, 1);
    }
}
