//! # escra-workloads
//!
//! The workloads and applications of the paper's evaluation (§VI):
//!
//! * [`generators`] — the four request-rate shapes (Fixed 400 req/s,
//!   Exp λ=300, Burst 50+600, trace replay);
//! * [`trace`] — the deterministic synthetic Alibaba-style trace
//!   (56–548 req/s envelope, 10×-sped-up character);
//! * [`sysbench`] — the Fig. 2 CPU-saturation phase schedule;
//! * [`microservice`] — DAG models of the four benchmark applications
//!   with the paper's container counts (MediaMicroservice 32,
//!   HipsterShop 11, TrainTicket 68, Teastore 7);
//! * [`serverless`] — OpenWhisk invoker configuration and the
//!   ImageProcess / GridSearch action profiles;
//! * [`trace_workload`] — the normalized [`TraceWorkload`] form driving
//!   the trace-mega scenarios (one Distributed Container per traced
//!   app);
//! * [`azure_trace`] — loader for Azure-Functions-shaped CSVs
//!   (per-minute invocation counts + duration/memory percentiles);
//! * [`synthetic_trace`] — seeded synthetic app populations
//!   (steady/diurnal/bursty mixes) normalizing into the same form.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod azure_trace;
pub mod generators;
pub mod microservice;
pub mod serverless;
pub mod synthetic_trace;
pub mod sysbench;
pub mod trace;
pub mod trace_workload;

pub use azure_trace::{parse_azure_csv, AzureTraceError};
pub use generators::{RequestGenerator, WorkloadKind};
pub use microservice::{
    hipster_shop, media_microservice, paper_apps, teastore, train_ticket, MicroserviceApp,
    RequestClass, ServiceTier,
};
pub use serverless::{
    grid_search_task, image_process, ActionProfile, GridSearchJob, OpenWhiskConfig,
};
pub use synthetic_trace::{
    mega_mix, synthetic_trace, AppClass, ArrivalShape, SyntheticTraceConfig,
};
pub use sysbench::{Phase, SysbenchLoad};
pub use trace::{alibaba_trace, alibaba_workload};
pub use trace_workload::{TraceApp, TraceWorkload};
