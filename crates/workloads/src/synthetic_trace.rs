//! Deterministic synthetic serverless traces.
//!
//! Generates Azure-Functions-flavoured populations — many tiny steady
//! apps, a band of diurnal mid-rate apps, a few heavy bursty ones —
//! normalized into the shared [`TraceWorkload`] form. Everything is
//! seeded: the same [`SyntheticTraceConfig`] always yields a
//! byte-identical workload, and every generated per-minute rate is
//! clamped to the config's envelope (mirroring the `alibaba_trace`
//! envelope contract).

use crate::trace_workload::{TraceApp, TraceWorkload};
use escra_simcore::rng::SimRng;

/// Shape of one app class's per-minute arrival-rate series.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalShape {
    /// Flat at the app's mean rpm.
    Steady,
    /// Sinusoid around the mean: `mean × (1 + amplitude·sin)`, one full
    /// cycle every `period_minutes`.
    Diurnal {
        /// Cycle length in minutes.
        period_minutes: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
    },
    /// The mean rpm, multiplied by `factor` for `len_minutes` every
    /// `every_minutes` (phase-shifted per app so bursts don't align).
    Bursty {
        /// Minutes between burst starts.
        every_minutes: usize,
        /// Burst length in minutes.
        len_minutes: usize,
        /// Rate multiplier during a burst.
        factor: f64,
    },
}

/// One class of synthetic apps sharing arrival/duration/memory
/// distributions (the dslab-faas `SyntheticTraceAppConfig` shape,
/// adapted to the minute-grid normal form).
#[derive(Debug, Clone, PartialEq)]
pub struct AppClass {
    /// Class name; generated apps are `"{name}-{i}"`.
    pub name: String,
    /// Number of apps drawn from this class.
    pub apps: usize,
    /// Per-app mean rpm, sampled log-uniformly from this range.
    pub rpm_range: (f64, f64),
    /// Arrival-rate shape over the minute grid.
    pub arrival: ArrivalShape,
    /// Median execution duration in ms, sampled log-uniformly.
    pub exec_ms_median_range: (f64, f64),
    /// Coefficient of variation of the lognormal execution duration
    /// (`sigma² = ln(1 + cv²)`).
    pub exec_cv: f64,
    /// Peak invocation memory in MiB, sampled uniformly (integer).
    pub mem_mib_range: (u64, u64),
}

/// A complete synthetic-trace recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTraceConfig {
    /// The app classes.
    pub classes: Vec<AppClass>,
    /// Trace length, in minutes.
    pub minutes: usize,
    /// Master seed; equal seeds give byte-identical workloads.
    pub seed: u64,
    /// Envelope `[min, max]` every generated per-minute rate is clamped
    /// to.
    pub rpm_clamp: (f64, f64),
}

/// Generates the workload described by `cfg`.
///
/// Deterministic and enveloped, like the `alibaba_trace` contract:
///
/// ```
/// use escra_workloads::synthetic_trace::{mega_mix, synthetic_trace};
/// let cfg = mega_mix(100, 3, 7);
/// let w = synthetic_trace(&cfg);
/// assert_eq!(w.apps.len(), 100);
/// assert_eq!(w, synthetic_trace(&cfg)); // same seed ⇒ identical
/// let (lo, hi) = cfg.rpm_clamp;
/// assert!(w
///     .apps
///     .iter()
///     .flat_map(|a| a.rpm.iter())
///     .all(|r| (lo..=hi).contains(r)));
/// ```
pub fn synthetic_trace(cfg: &SyntheticTraceConfig) -> TraceWorkload {
    let (lo, hi) = cfg.rpm_clamp;
    assert!(lo >= 0.0 && hi >= lo, "bad rpm envelope [{lo}, {hi}]");
    let mut apps = Vec::new();
    for (ci, class) in cfg.classes.iter().enumerate() {
        let class_rng = SimRng::new(cfg.seed)
            .fork(0x0074_7263) /* "trc" */
            .fork(ci as u64);
        for ai in 0..class.apps {
            let mut rng = class_rng.fork(ai as u64);
            let mean_rpm = log_uniform(&mut rng, class.rpm_range);
            let exec_median = log_uniform(&mut rng, class.exec_ms_median_range);
            let mem_mib = int_uniform(&mut rng, class.mem_mib_range);
            // Per-app phase so diurnal peaks and bursts don't all align.
            let phase = rng.uniform(0.0, 1.0);
            let rpm: Vec<f64> = (0..cfg.minutes)
                .map(|m| {
                    let shaped = match &class.arrival {
                        ArrivalShape::Steady => mean_rpm,
                        ArrivalShape::Diurnal {
                            period_minutes,
                            amplitude,
                        } => {
                            let x = (m as f64 / period_minutes.max(1e-9) + phase)
                                * core::f64::consts::TAU;
                            mean_rpm * (1.0 + amplitude.clamp(0.0, 1.0) * x.sin())
                        }
                        ArrivalShape::Bursty {
                            every_minutes,
                            len_minutes,
                            factor,
                        } => {
                            let every = (*every_minutes).max(1);
                            let offset = (phase * every as f64) as usize % every;
                            if (m + offset) % every < *len_minutes {
                                mean_rpm * factor
                            } else {
                                mean_rpm
                            }
                        }
                    };
                    shaped.clamp(lo, hi)
                })
                .collect();
            let sigma2 = (1.0 + class.exec_cv * class.exec_cv).ln();
            apps.push(TraceApp {
                name: format!("{}-{ai}", class.name),
                rpm,
                exec_ms_mu: exec_median.ln(),
                exec_ms_sigma: sigma2.sqrt(),
                mem_mib,
                idle_mem_mib: (mem_mib / 4).max(4),
            });
        }
    }
    TraceWorkload {
        apps,
        minutes: cfg.minutes,
    }
}

/// The `trace_mega` population: ~76 % tiny steady apps, ~19 % diurnal
/// mid-rate apps, ~5 % heavy bursty apps — the skew of the public Azure
/// Functions traces, scaled to `apps` total.
pub fn mega_mix(apps: usize, minutes: usize, seed: u64) -> SyntheticTraceConfig {
    let tiny = apps * 76 / 100;
    let diurnal = apps * 19 / 100;
    let heavy = apps - tiny - diurnal;
    SyntheticTraceConfig {
        classes: vec![
            AppClass {
                name: "tiny".into(),
                apps: tiny,
                rpm_range: (0.2, 6.0),
                arrival: ArrivalShape::Steady,
                exec_ms_median_range: (30.0, 300.0),
                exec_cv: 1.5,
                mem_mib_range: (32, 128),
            },
            AppClass {
                name: "diurnal".into(),
                apps: diurnal,
                rpm_range: (6.0, 60.0),
                arrival: ArrivalShape::Diurnal {
                    period_minutes: 12.0,
                    amplitude: 0.7,
                },
                exec_ms_median_range: (80.0, 800.0),
                exec_cv: 1.0,
                mem_mib_range: (64, 256),
            },
            AppClass {
                name: "heavy".into(),
                apps: heavy,
                rpm_range: (20.0, 120.0),
                arrival: ArrivalShape::Bursty {
                    every_minutes: 5,
                    len_minutes: 1,
                    factor: 6.0,
                },
                exec_ms_median_range: (300.0, 3_000.0),
                exec_cv: 0.6,
                mem_mib_range: (128, 512),
            },
        ],
        minutes,
        seed,
        rpm_clamp: (0.0, 600.0),
    }
}

fn log_uniform(rng: &mut SimRng, (lo, hi): (f64, f64)) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "bad log-uniform range [{lo}, {hi}]");
    rng.uniform(lo.ln(), hi.ln()).exp()
}

fn int_uniform(rng: &mut SimRng, (lo, hi): (u64, u64)) -> u64 {
    assert!(hi >= lo, "bad range [{lo}, {hi}]");
    lo + rng.next_below(hi - lo + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_byte_identical() {
        let cfg = mega_mix(500, 4, 20220701);
        let a = synthetic_trace(&cfg);
        let b = synthetic_trace(&cfg);
        assert_eq!(a, b);
        // Byte-identical once serialized, the sweep-gate currency.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // A different seed moves the draws.
        let c = synthetic_trace(&mega_mix(500, 4, 7));
        assert_ne!(a, c);
    }

    #[test]
    fn population_split_and_shapes() {
        let w = synthetic_trace(&mega_mix(1_000, 10, 1));
        assert_eq!(w.apps.len(), 1_000);
        assert_eq!(
            w.apps
                .iter()
                .filter(|a| a.name.starts_with("tiny-"))
                .count(),
            760
        );
        assert_eq!(
            w.apps
                .iter()
                .filter(|a| a.name.starts_with("diurnal-"))
                .count(),
            190
        );
        assert_eq!(
            w.apps
                .iter()
                .filter(|a| a.name.starts_with("heavy-"))
                .count(),
            50
        );
        // Bursty apps actually vary; steady ones don't.
        let heavy = w
            .apps
            .iter()
            .find(|a| a.name.starts_with("heavy-"))
            .unwrap();
        let (mn, mx) = heavy
            .rpm
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(mn, mx), &r| {
                (mn.min(r), mx.max(r))
            });
        assert!(mx > 2.0 * mn, "burst peak {mx} vs base {mn}");
        let tiny = w.apps.iter().find(|a| a.name.starts_with("tiny-")).unwrap();
        assert!(tiny.rpm.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn envelope_clamps_hold_for_tight_bounds() {
        // Force the clamp to bite: heavy bursts at factor 6 on a 120-rpm
        // mean exceed 600 and must be clamped, and a tiny floor lifts
        // quiet minutes.
        let mut cfg = mega_mix(200, 6, 3);
        cfg.rpm_clamp = (1.0, 50.0);
        let w = synthetic_trace(&cfg);
        for a in &w.apps {
            for &r in &a.rpm {
                assert!(
                    (1.0..=50.0).contains(&r),
                    "{} rpm {r} out of envelope",
                    a.name
                );
            }
        }
        // The clamp actually bit at both ends.
        assert!(w.apps.iter().any(|a| a.rpm.iter().any(|&r| r == 50.0)));
        assert!(w.apps.iter().any(|a| a.rpm.iter().any(|&r| r == 1.0)));
    }

    #[test]
    fn minutes_grid_is_uniform() {
        let w = synthetic_trace(&mega_mix(50, 7, 9));
        assert!(w.apps.iter().all(|a| a.rpm.len() == 7));
        assert_eq!(w.minutes, 7);
    }
}
