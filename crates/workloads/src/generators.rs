//! Request-rate workload generators (paper §VI-A).
//!
//! The four microservice workloads:
//!
//! * **Fixed** — a constant 400 req/s;
//! * **Exp** — a Poisson process with λ = 300 req/s;
//! * **Burst** — a fixed 50 req/s with a 10-second Poisson burst of
//!   λ = 600 every 20 seconds;
//! * **Alibaba** — a datacenter trace sped up 10×, 56–548 req/s (we ship
//!   a deterministic synthetic trace with that envelope, see
//!   [`crate::trace`]).

use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The workload shapes used in the evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Constant rate, evenly spaced arrivals.
    Fixed {
        /// Requests per second.
        rps: f64,
    },
    /// Poisson arrivals at a fixed rate.
    Exponential {
        /// Rate λ in requests per second.
        lambda: f64,
    },
    /// Base Poisson rate plus periodic bursts.
    Burst {
        /// Baseline rate (req/s).
        base_rps: f64,
        /// Burst rate λ (req/s) during the burst window.
        burst_rps: f64,
        /// Burst duration.
        burst_len: SimDuration,
        /// Time between burst starts.
        burst_interval: SimDuration,
    },
    /// Per-second rates from a trace, cycled if shorter than the run.
    Trace {
        /// Requests per second, one entry per second.
        rates: Vec<f64>,
    },
}

impl WorkloadKind {
    /// The paper's Fixed workload: 400 req/s.
    pub fn paper_fixed() -> Self {
        WorkloadKind::Fixed { rps: 400.0 }
    }

    /// The paper's Exp workload: λ = 300.
    pub fn paper_exp() -> Self {
        WorkloadKind::Exponential { lambda: 300.0 }
    }

    /// The paper's Burst workload: 50 req/s + 10 s bursts of λ = 600
    /// every 20 s.
    pub fn paper_burst() -> Self {
        WorkloadKind::Burst {
            base_rps: 50.0,
            burst_rps: 600.0,
            burst_len: SimDuration::from_secs(10),
            burst_interval: SimDuration::from_secs(20),
        }
    }

    /// Long-run average request rate (req/s) — what a developer sizing
    /// the deployment would estimate from aggregate monitoring. Profiling
    /// runs use a steady stream at this rate, which is precisely how
    /// transient peaks get underestimated (§VI-C).
    pub fn mean_rps(&self) -> f64 {
        match self {
            WorkloadKind::Fixed { rps } => *rps,
            WorkloadKind::Exponential { lambda } => *lambda,
            WorkloadKind::Burst {
                base_rps,
                burst_rps,
                burst_len,
                burst_interval,
            } => {
                let frac = burst_len.as_micros() as f64 / burst_interval.as_micros().max(1) as f64;
                base_rps + burst_rps * frac.min(1.0)
            }
            WorkloadKind::Trace { rates } => {
                if rates.is_empty() {
                    0.0
                } else {
                    rates.iter().sum::<f64>() / rates.len() as f64
                }
            }
        }
    }

    /// Instantaneous target rate at `t` (req/s).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self {
            WorkloadKind::Fixed { rps } => *rps,
            WorkloadKind::Exponential { lambda } => *lambda,
            WorkloadKind::Burst {
                base_rps,
                burst_rps,
                burst_len,
                burst_interval,
            } => {
                let phase = t.as_micros() % burst_interval.as_micros().max(1);
                if phase < burst_len.as_micros() {
                    base_rps + burst_rps
                } else {
                    *base_rps
                }
            }
            WorkloadKind::Trace { rates } => {
                if rates.is_empty() {
                    0.0
                } else {
                    rates[(t.as_micros() / 1_000_000) as usize % rates.len()]
                }
            }
        }
    }
}

/// Generates request arrival instants for consecutive, non-overlapping
/// windows.
///
/// ```
/// use escra_workloads::generators::{RequestGenerator, WorkloadKind};
/// use escra_simcore::time::SimTime;
///
/// let mut g = RequestGenerator::new(WorkloadKind::Fixed { rps: 10.0 }, 7);
/// let arrivals = g.arrivals_in(SimTime::ZERO, SimTime::from_secs(1));
/// assert_eq!(arrivals.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    kind: WorkloadKind,
    rng: SimRng,
    /// Deterministic spacing cursor for `Fixed`.
    next_fixed: SimTime,
}

impl RequestGenerator {
    /// Creates a generator; equal seeds give identical arrival streams.
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        RequestGenerator {
            kind,
            rng: SimRng::new(seed).fork(0x0067_656e), // "gen"
            next_fixed: SimTime::ZERO,
        }
    }

    /// The workload shape.
    pub fn kind(&self) -> &WorkloadKind {
        &self.kind
    }

    /// Arrival times in the half-open window `[start, end)`, sorted
    /// ascending.
    ///
    /// The window is **half-open**: an arrival landing exactly on a
    /// window boundary belongs to the *later* window and is emitted
    /// exactly once across adjacent calls — callers may tile a run with
    /// windows of arbitrary, heterogeneous sizes (the trace driver does)
    /// without double- or zero-counting boundary arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn arrivals_in(&mut self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        assert!(end >= start, "window end before start");
        match &self.kind {
            WorkloadKind::Fixed { rps } => {
                let gap = SimDuration::from_secs_f64(1.0 / rps.max(1e-9));
                let mut out = Vec::new();
                if self.next_fixed < start {
                    self.next_fixed = start;
                }
                while self.next_fixed < end {
                    out.push(self.next_fixed);
                    self.next_fixed += gap;
                }
                out
            }
            _ => {
                // Piecewise-constant thinning per millisecond chunk keeps
                // burst edges sharp while staying O(arrivals).
                let mut out = Vec::new();
                let mut t = start;
                while t < end {
                    let rate = self.kind.rate_at(t);
                    if rate > 0.0 {
                        // Sample the next exponential gap at this rate.
                        let gap = self.rng.exponential(rate);
                        let next = t + SimDuration::from_secs_f64(gap);
                        if next < end {
                            out.push(next);
                        }
                        t = next;
                    } else {
                        t += SimDuration::from_millis(10);
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_evenly_spaced_across_windows() {
        let mut g = RequestGenerator::new(WorkloadKind::Fixed { rps: 100.0 }, 1);
        let mut all = Vec::new();
        for i in 0..10 {
            all.extend(g.arrivals_in(
                SimTime::from_millis(i * 100),
                SimTime::from_millis((i + 1) * 100),
            ));
        }
        assert_eq!(all.len(), 100);
        for pair in all.windows(2) {
            assert_eq!(pair[1] - pair[0], SimDuration::from_millis(10));
        }
    }

    #[test]
    fn poisson_rate_is_close() {
        let mut g = RequestGenerator::new(WorkloadKind::paper_exp(), 2);
        let arrivals = g.arrivals_in(SimTime::ZERO, SimTime::from_secs(30));
        let rate = arrivals.len() as f64 / 30.0;
        assert!((rate - 300.0).abs() < 15.0, "rate {rate}");
    }

    #[test]
    fn burst_profile_rates() {
        let w = WorkloadKind::paper_burst();
        assert_eq!(w.rate_at(SimTime::from_secs(5)), 650.0); // in burst
        assert_eq!(w.rate_at(SimTime::from_secs(15)), 50.0); // between
        assert_eq!(w.rate_at(SimTime::from_secs(25)), 650.0); // next burst
    }

    #[test]
    fn burst_generates_more_during_burst() {
        let mut g = RequestGenerator::new(WorkloadKind::paper_burst(), 3);
        let in_burst = g
            .arrivals_in(SimTime::from_secs(0), SimTime::from_secs(10))
            .len();
        let out_burst = g
            .arrivals_in(SimTime::from_secs(10), SimTime::from_secs(20))
            .len();
        assert!(in_burst as f64 > 8.0 * out_burst as f64);
    }

    #[test]
    fn trace_cycles() {
        let w = WorkloadKind::Trace {
            rates: vec![10.0, 20.0],
        };
        assert_eq!(w.rate_at(SimTime::from_secs(0)), 10.0);
        assert_eq!(w.rate_at(SimTime::from_secs(1)), 20.0);
        assert_eq!(w.rate_at(SimTime::from_secs(2)), 10.0);
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = RequestGenerator::new(WorkloadKind::paper_exp(), 9);
        let mut b = RequestGenerator::new(WorkloadKind::paper_exp(), 9);
        assert_eq!(
            a.arrivals_in(SimTime::ZERO, SimTime::from_secs(2)),
            b.arrivals_in(SimTime::ZERO, SimTime::from_secs(2))
        );
    }

    #[test]
    fn arrivals_sorted_and_in_window() {
        let mut g = RequestGenerator::new(WorkloadKind::paper_burst(), 11);
        let start = SimTime::from_secs(3);
        let end = SimTime::from_secs(7);
        let arrivals = g.arrivals_in(start, end);
        let mut last = start;
        for a in arrivals {
            assert!(a >= last && a < end);
            last = a;
        }
    }

    /// Regression pin for the half-open `[start, end)` contract: a
    /// deterministic arrival landing exactly on a shared window boundary
    /// must be emitted exactly once, by the *later* window, for windows
    /// of heterogeneous sizes.
    #[test]
    fn boundary_arrival_emitted_exactly_once_across_heterogeneous_windows() {
        // gap = 250 ms, so arrivals land at 0, 250, 500, 750, 1000, ...
        let mut g = RequestGenerator::new(WorkloadKind::Fixed { rps: 4.0 }, 1);
        // Window edges at 500 ms and 750 ms coincide exactly with
        // arrivals; window sizes are deliberately unequal.
        let w1 = g.arrivals_in(SimTime::ZERO, SimTime::from_millis(500));
        let w2 = g.arrivals_in(SimTime::from_millis(500), SimTime::from_millis(750));
        let w3 = g.arrivals_in(SimTime::from_millis(750), SimTime::from_secs(2));
        assert_eq!(w1, vec![SimTime::ZERO, SimTime::from_millis(250)]);
        // The arrival at exactly 500 ms is excluded from [0, 500) and
        // emitted once by [500, 750).
        assert_eq!(w2, vec![SimTime::from_millis(500)]);
        assert_eq!(
            w3,
            (3..8)
                .map(|i| SimTime::from_millis(i * 250))
                .collect::<Vec<_>>()
        );
        // Exactly once overall: 8 arrivals in [0, 2 s), no duplicates.
        let mut all = [w1, w2, w3].concat();
        let n = all.len();
        all.dedup();
        assert_eq!(all.len(), n, "boundary arrival double-counted");
        assert_eq!(n, 8, "boundary arrival lost");
    }

    /// The same contract for the stochastic paths: every arrival strictly
    /// inside its half-open window, and the aggregate rate over a tiling
    /// of heterogeneous windows is preserved (double/zero-counting at the
    /// seams would skew it).
    #[test]
    fn stochastic_heterogeneous_windows_preserve_rate_and_stay_half_open() {
        let mut g = RequestGenerator::new(WorkloadKind::paper_exp(), 5);
        let sizes_ms = [100u64, 250, 70, 1_000, 330, 500];
        let mut t = SimTime::ZERO;
        let mut total = 0usize;
        let mut elapsed_ms = 0u64;
        let mut i = 0usize;
        while elapsed_ms < 30_000 {
            let size = sizes_ms[i % sizes_ms.len()];
            let end = t + SimDuration::from_millis(size);
            for a in g.arrivals_in(t, end) {
                assert!(a >= t && a < end, "arrival {a:?} outside [{t:?}, {end:?})");
                total += 1;
            }
            t = end;
            elapsed_ms += size;
            i += 1;
        }
        let rate = total as f64 / (elapsed_ms as f64 / 1_000.0);
        assert!(
            (rate - 300.0).abs() < 15.0,
            "tiled-window rate {rate} drifted from λ = 300"
        );
    }

    #[test]
    fn empty_trace_is_silent() {
        let mut g = RequestGenerator::new(WorkloadKind::Trace { rates: vec![] }, 1);
        assert!(g
            .arrivals_in(SimTime::ZERO, SimTime::from_secs(1))
            .is_empty());
    }
}
