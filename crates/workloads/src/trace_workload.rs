//! The normalized trace-workload form shared by the Azure-Functions CSV
//! loader ([`crate::azure_trace`]) and the synthetic generator
//! ([`crate::synthetic_trace`]).
//!
//! Both sources reduce to one shape: a list of traced apps, each with a
//! per-minute invocation-rate series and a lognormal execution-duration
//! model plus memory footprints. The `trace_sim` driver in
//! `escra-harness` instantiates one Distributed Container (one Escra
//! application pool) per [`TraceApp`].

use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// z-score of the 99th percentile of the standard normal — used to fit
/// a lognormal from (p50, p99) duration percentiles.
pub const Z99: f64 = 2.326_347_874_040_841;

/// One traced serverless application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceApp {
    /// Application name (the CSV `app` column, or a generated id).
    pub name: String,
    /// Invocations per minute, one entry per trace minute. The series is
    /// cycled if the simulated run outlives the trace.
    pub rpm: Vec<f64>,
    /// Lognormal location of the execution duration, in ln-milliseconds
    /// (`exp(exec_ms_mu)` is the median duration in ms).
    pub exec_ms_mu: f64,
    /// Lognormal scale of the execution duration (0 = deterministic).
    pub exec_ms_sigma: f64,
    /// Peak working memory during an invocation, in MiB.
    pub mem_mib: u64,
    /// Resident memory of a warm, idle pod, in MiB.
    pub idle_mem_mib: u64,
}

impl TraceApp {
    /// Instantaneous invocation rate at `t`, in requests per second
    /// (the minute's rpm over 60), cycling the series.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        if self.rpm.is_empty() {
            return 0.0;
        }
        let minute = (t.as_micros() / 60_000_000) as usize % self.rpm.len();
        self.rpm[minute] / 60.0
    }

    /// Mean invocations per minute over the trace.
    pub fn mean_rpm(&self) -> f64 {
        if self.rpm.is_empty() {
            0.0
        } else {
            self.rpm.iter().sum::<f64>() / self.rpm.len() as f64
        }
    }

    /// Median execution duration, in milliseconds.
    pub fn exec_ms_median(&self) -> f64 {
        self.exec_ms_mu.exp()
    }

    /// Samples one invocation's CPU work, in core-microseconds.
    pub fn sample_exec_us(&self, rng: &mut SimRng) -> f64 {
        let mu_us = self.exec_ms_mu + 1_000f64.ln();
        if self.exec_ms_sigma <= 0.0 {
            mu_us.exp()
        } else {
            rng.lognormal(mu_us, self.exec_ms_sigma)
        }
    }
}

/// A set of traced apps over a common minute grid — the single input
/// form of the `trace_sim` driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceWorkload {
    /// The traced applications.
    pub apps: Vec<TraceApp>,
    /// Trace length, in minutes (every app's `rpm` has this length).
    pub minutes: usize,
}

impl TraceWorkload {
    /// Trace length as a duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.minutes as u64 * 60)
    }

    /// Expected invocations over one pass of the trace (the sum of every
    /// app's rpm series).
    pub fn expected_invocations(&self) -> f64 {
        self.apps
            .iter()
            .map(|a| a.rpm.iter().sum::<f64>())
            .sum::<f64>()
    }

    /// Fits `(exec_ms_mu, exec_ms_sigma)` from duration percentiles:
    /// `mu = ln p50`, `sigma = ln(p99/p50) / z₉₉` (clamped at 0 for
    /// degenerate inputs).
    pub fn fit_lognormal_ms(p50_ms: f64, p99_ms: f64) -> (f64, f64) {
        let p50 = p50_ms.max(1e-6);
        let mu = p50.ln();
        let sigma = if p99_ms > p50 {
            (p99_ms / p50).ln() / Z99
        } else {
            0.0
        };
        (mu, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(rpm: Vec<f64>) -> TraceApp {
        TraceApp {
            name: "a".into(),
            rpm,
            exec_ms_mu: 100f64.ln(),
            exec_ms_sigma: 0.5,
            mem_mib: 128,
            idle_mem_mib: 16,
        }
    }

    #[test]
    fn rate_cycles_per_minute() {
        let a = app(vec![60.0, 120.0]);
        assert_eq!(a.rate_at(SimTime::from_secs(0)), 1.0);
        assert_eq!(a.rate_at(SimTime::from_secs(59)), 1.0);
        assert_eq!(a.rate_at(SimTime::from_secs(60)), 2.0);
        assert_eq!(a.rate_at(SimTime::from_secs(120)), 1.0); // cycled
        assert_eq!(a.mean_rpm(), 90.0);
    }

    #[test]
    fn empty_rpm_is_silent() {
        let a = app(Vec::new());
        assert_eq!(a.rate_at(SimTime::from_secs(5)), 0.0);
        assert_eq!(a.mean_rpm(), 0.0);
    }

    #[test]
    fn lognormal_fit_hits_percentiles() {
        let (mu, sigma) = TraceWorkload::fit_lognormal_ms(100.0, 1_000.0);
        assert!((mu.exp() - 100.0).abs() < 1e-9);
        // p99 of lognormal(mu, sigma) = exp(mu + z99 sigma).
        let p99 = (mu + Z99 * sigma).exp();
        assert!((p99 - 1_000.0).abs() < 1e-6, "p99 {p99}");
        // Degenerate: p99 <= p50 collapses to deterministic.
        let (_, s0) = TraceWorkload::fit_lognormal_ms(100.0, 100.0);
        assert_eq!(s0, 0.0);
    }

    #[test]
    fn exec_sampling_median_is_right() {
        let a = app(vec![60.0]);
        let mut rng = SimRng::new(42);
        let mut v: Vec<f64> = (0..4_001).map(|_| a.sample_exec_us(&mut rng)).collect();
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median_ms = v[2_000] / 1_000.0;
        assert!(
            (median_ms - 100.0).abs() < 10.0,
            "sampled median {median_ms} ms"
        );
    }

    #[test]
    fn expected_invocations_sums_apps() {
        let w = TraceWorkload {
            apps: vec![app(vec![10.0, 20.0]), app(vec![5.0, 5.0])],
            minutes: 2,
        };
        assert_eq!(w.expected_invocations(), 40.0);
        assert_eq!(w.duration(), SimDuration::from_secs(120));
    }
}
