//! Microservice application models (paper §VI-A).
//!
//! Each benchmark application is modelled as a DAG of **service tiers**;
//! a request belongs to a **request class** that traverses an increasing
//! sequence of tiers, costing CPU time (lognormal service times) and
//! memory (per-inflight working set plus a load-driven cache) at each
//! tier. Tier replicas match the paper's container counts:
//! MediaMicroservice 32, HipsterShop 11, TrainTicket 68, Teastore 7.
//!
//! The numbers are calibrated so the relative effects the paper reports
//! emerge: short-timescale demand spikes that coarse (1 s+) profiling
//! underestimates, hot tiers that benefit from stealing slack from cold
//! ones, and memory footprints that grow under load.

use escra_simcore::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One service tier (a Kubernetes deployment; `replicas` containers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceTier {
    /// Tier name, e.g. `"frontend"`.
    pub name: String,
    /// Number of container replicas load-balanced round-robin.
    pub replicas: usize,
    /// Mean CPU cost per request at this tier, in core-milliseconds.
    pub cpu_per_req_ms: f64,
    /// Coefficient of variation of the lognormal service time.
    pub cpu_cv: f64,
    /// Resident memory per replica, in MiB.
    pub mem_base_mib: u64,
    /// Working-set memory per in-flight request, in KiB.
    pub mem_per_inflight_kib: u64,
    /// Cache memory per replica that fills under sustained load, in MiB.
    pub mem_cache_mib: u64,
    /// Maximum cores one replica can use concurrently (thread pool).
    pub parallelism: f64,
    /// Extra CPU demand (cores) during the warm-up window after a
    /// (re)start: JIT/JVM warm-up, cache priming, connection setup.
    /// Profiling tools record these as the container's peak — one of the
    /// reasons profiled static limits sit far above steady usage (§VI-C).
    pub startup_cpu_cores: f64,
    /// Mean CPU cost of a background event (GC pause, compaction, log
    /// rotation) in core-milliseconds. Background work preempts request
    /// processing and contributes to the tail latency of *every* policy.
    pub bg_work_ms: f64,
    /// Mean interval between background events, in seconds.
    pub bg_interval_s: f64,
}

impl ServiceTier {
    fn new(name: &str, replicas: usize, cpu_per_req_ms: f64) -> Self {
        ServiceTier {
            name: name.into(),
            replicas,
            cpu_per_req_ms,
            cpu_cv: 0.3,
            mem_base_mib: 64,
            mem_per_inflight_kib: 256,
            mem_cache_mib: 96,
            parallelism: 8.0,
            startup_cpu_cores: 0.8,
            bg_work_ms: 60.0,
            bg_interval_s: 3.0,
        }
    }

    fn mem(mut self, base_mib: u64, cache_mib: u64) -> Self {
        self.mem_base_mib = base_mib;
        self.mem_cache_mib = cache_mib;
        self
    }

    /// Samples one service time in core-microseconds (lognormal with the
    /// tier's mean and CV).
    pub fn sample_service_us(&self, rng: &mut SimRng) -> f64 {
        let mean_us = self.cpu_per_req_ms * 1_000.0;
        if self.cpu_cv <= 0.0 {
            return mean_us;
        }
        let sigma2 = (1.0 + self.cpu_cv * self.cpu_cv).ln();
        let mu = mean_us.ln() - sigma2 / 2.0;
        rng.lognormal(mu, sigma2.sqrt())
    }
}

/// A request class: a weighted path through increasing tier indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestClass {
    /// Class name, e.g. `"checkout"`.
    pub name: String,
    /// Sampling weight relative to the other classes.
    pub weight: f64,
    /// Tier indices visited in order (strictly increasing).
    pub path: Vec<usize>,
}

/// A modelled microservice application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroserviceApp {
    /// Application name.
    pub name: String,
    /// The service tiers, in topological order.
    pub tiers: Vec<ServiceTier>,
    /// The request classes.
    pub classes: Vec<RequestClass>,
    /// Global (Distributed Container) CPU limit Ωl, in cores.
    pub global_cpu_cores: f64,
    /// Global memory limit, in MiB.
    pub global_mem_mib: u64,
}

impl MicroserviceApp {
    /// Total container count (Σ replicas) — matches the paper's counts.
    pub fn container_count(&self) -> usize {
        self.tiers.iter().map(|t| t.replicas).sum()
    }

    /// Samples a request class index by weight.
    pub fn sample_class(&self, rng: &mut SimRng) -> usize {
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
        rng.weighted_index(&weights)
    }

    /// Mean CPU cost of one request averaged over classes, core-ms.
    pub fn mean_request_cost_ms(&self) -> f64 {
        let total_w: f64 = self.classes.iter().map(|c| c.weight).sum();
        self.classes
            .iter()
            .map(|c| {
                let cost: f64 = c.path.iter().map(|&i| self.tiers[i].cpu_per_req_ms).sum();
                cost * c.weight / total_w
            })
            .sum()
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if any class path is empty, non-increasing, or references a
    /// missing tier, or if weights are non-positive.
    pub fn validate(&self) {
        assert!(!self.tiers.is_empty(), "{}: no tiers", self.name);
        assert!(!self.classes.is_empty(), "{}: no classes", self.name);
        for t in &self.tiers {
            assert!(
                t.replicas > 0,
                "{}: tier {} has no replicas",
                self.name,
                t.name
            );
            assert!(t.cpu_per_req_ms > 0.0);
        }
        for c in &self.classes {
            assert!(c.weight > 0.0, "{}: class {} weight", self.name, c.name);
            assert!(
                !c.path.is_empty(),
                "{}: class {} empty path",
                self.name,
                c.name
            );
            let mut last = None;
            for &i in &c.path {
                assert!(i < self.tiers.len(), "{}: bad tier index {i}", self.name);
                if let Some(l) = last {
                    assert!(i > l, "{}: class {} path not increasing", self.name, c.name);
                }
                last = Some(i);
            }
        }
    }
}

/// MediaMicroservice (DeathStarBench): 32 containers; users search,
/// review, rate and add films.
pub fn media_microservice() -> MicroserviceApp {
    let tiers = vec![
        ServiceTier::new("nginx-web", 4, 4.2).mem(96, 64),
        ServiceTier::new("unique-id", 1, 0.6).mem(32, 16),
        ServiceTier::new("movie-id", 2, 1.5).mem(48, 64),
        ServiceTier::new("text", 2, 2.4).mem(48, 48),
        ServiceTier::new("user", 2, 1.5).mem(64, 64),
        ServiceTier::new("rating", 2, 1.8).mem(48, 48),
        ServiceTier::new("compose-review", 2, 3.3).mem(64, 64),
        ServiceTier::new("review-storage", 3, 2.7).mem(96, 128),
        ServiceTier::new("user-review", 2, 1.8).mem(64, 64),
        ServiceTier::new("movie-review", 2, 1.8).mem(64, 64),
        ServiceTier::new("cast-info", 2, 1.5).mem(64, 64),
        ServiceTier::new("plot", 1, 1.2).mem(48, 48),
        ServiceTier::new("media", 2, 2.1).mem(64, 96),
        ServiceTier::new("page", 3, 3.9).mem(96, 96),
        ServiceTier::new("mongodb", 2, 2.4).mem(128, 192),
    ];
    let app = MicroserviceApp {
        name: "media-microsvc".into(),
        tiers,
        classes: vec![
            RequestClass {
                name: "read-page".into(),
                weight: 0.55,
                path: vec![0, 2, 10, 11, 12, 13, 14],
            },
            RequestClass {
                name: "compose-review".into(),
                weight: 0.25,
                path: vec![0, 1, 2, 3, 4, 5, 6, 7, 14],
            },
            RequestClass {
                name: "read-reviews".into(),
                weight: 0.20,
                path: vec![0, 7, 8, 9, 13, 14],
            },
        ],
        global_cpu_cores: 24.0,
        global_mem_mib: 10 * 1024,
    };
    app.validate();
    assert_eq!(app.container_count(), 32);
    app
}

/// HipsterShop: 11 containers; browsing and purchasing.
pub fn hipster_shop() -> MicroserviceApp {
    let tiers = vec![
        ServiceTier::new("frontend", 1, 6.0).mem(96, 96),
        ServiceTier::new("currency", 1, 1.2).mem(32, 16),
        ServiceTier::new("product-catalog", 1, 2.4).mem(64, 96),
        ServiceTier::new("recommendation", 1, 3.0).mem(96, 96),
        ServiceTier::new("ad", 1, 1.5).mem(48, 32),
        ServiceTier::new("cart", 1, 1.8).mem(64, 64),
        ServiceTier::new("redis-cart", 1, 0.9).mem(64, 128),
        ServiceTier::new("checkout", 1, 3.6).mem(64, 48),
        ServiceTier::new("payment", 1, 1.2).mem(48, 16),
        ServiceTier::new("shipping", 1, 1.5).mem(48, 16),
        ServiceTier::new("email", 1, 0.9).mem(48, 16),
    ];
    let app = MicroserviceApp {
        name: "hipster-shop".into(),
        tiers,
        classes: vec![
            RequestClass {
                name: "browse".into(),
                weight: 0.55,
                path: vec![0, 1, 2, 3, 4],
            },
            RequestClass {
                name: "cart".into(),
                weight: 0.30,
                path: vec![0, 2, 5, 6],
            },
            RequestClass {
                name: "checkout".into(),
                weight: 0.15,
                path: vec![0, 5, 7, 8, 9, 10],
            },
        ],
        global_cpu_cores: 14.0,
        global_mem_mib: 3 * 1024,
    };
    app.validate();
    assert_eq!(app.container_count(), 11);
    app
}

/// TrainTicket: 68 containers; search, book and modify train tickets.
pub fn train_ticket() -> MicroserviceApp {
    // 17 services × 4 replicas = 68 containers, with the deep call chains
    // TrainTicket is known for.
    let svc = |name: &str, cpu: f64| ServiceTier::new(name, 4, cpu).mem(64, 64);
    let tiers = vec![
        svc("ui-dashboard", 8.0),
        svc("auth", 2.5),
        svc("verification", 2.0),
        svc("station", 2.5),
        svc("train", 2.5),
        svc("route", 3.5),
        svc("travel", 5.0),
        svc("basic-info", 3.0),
        svc("ticket-info", 3.5),
        svc("seat", 4.0),
        svc("order", 5.0),
        svc("preserve", 6.0),
        svc("price", 2.0),
        svc("payment", 3.0),
        svc("notification", 2.0),
        svc("food", 2.5),
        svc("mysql", 4.5),
    ];
    let app = MicroserviceApp {
        name: "train-ticket".into(),
        tiers,
        classes: vec![
            RequestClass {
                name: "search".into(),
                weight: 0.50,
                path: vec![0, 3, 4, 5, 6, 7, 8, 16],
            },
            RequestClass {
                name: "book".into(),
                weight: 0.30,
                path: vec![0, 1, 6, 8, 9, 10, 11, 12, 13, 16],
            },
            RequestClass {
                name: "modify".into(),
                weight: 0.20,
                path: vec![0, 1, 2, 10, 13, 14, 15, 16],
            },
        ],
        global_cpu_cores: 40.0,
        global_mem_mib: 16 * 1024,
    };
    app.validate();
    assert_eq!(app.container_count(), 68);
    app
}

/// Teastore: 7 containers; browsing and purchasing teas.
pub fn teastore() -> MicroserviceApp {
    let tiers = vec![
        ServiceTier::new("webui", 2, 6.0).mem(128, 96),
        ServiceTier::new("auth", 1, 1.8).mem(64, 32),
        ServiceTier::new("persistence", 1, 2.7).mem(96, 128),
        ServiceTier::new("recommender", 1, 3.9).mem(128, 96),
        ServiceTier::new("image", 1, 4.5).mem(128, 128),
        ServiceTier::new("registry-db", 1, 1.2).mem(96, 96),
    ];
    let app = MicroserviceApp {
        name: "teastore".into(),
        tiers,
        classes: vec![
            RequestClass {
                name: "browse".into(),
                weight: 0.6,
                path: vec![0, 2, 3, 4],
            },
            RequestClass {
                name: "login-buy".into(),
                weight: 0.4,
                path: vec![0, 1, 2, 5],
            },
        ],
        global_cpu_cores: 14.0,
        global_mem_mib: 2 * 1024 + 512,
    };
    app.validate();
    assert_eq!(app.container_count(), 7);
    app
}

/// All four paper applications.
pub fn paper_apps() -> Vec<MicroserviceApp> {
    vec![
        media_microservice(),
        hipster_shop(),
        train_ticket(),
        teastore(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_counts_match_paper() {
        assert_eq!(media_microservice().container_count(), 32);
        assert_eq!(hipster_shop().container_count(), 11);
        assert_eq!(train_ticket().container_count(), 68);
        assert_eq!(teastore().container_count(), 7);
    }

    #[test]
    fn all_apps_validate() {
        for app in paper_apps() {
            app.validate();
            assert!(app.mean_request_cost_ms() > 0.0);
            assert!(app.global_cpu_cores > 0.0);
        }
    }

    #[test]
    fn service_times_have_requested_mean() {
        let tier = ServiceTier::new("t", 1, 2.0); // 2 core-ms
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| tier.sample_service_us(&mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2_000.0).abs() < 100.0, "mean {mean}");
    }

    #[test]
    fn service_times_are_bursty() {
        // Lognormal service times: the p99 request costs well above the
        // mean — the per-period demand spikes that 1 s-aggregated
        // profiling smooths away (§VI-C).
        let tier = ServiceTier::new("t", 1, 1.0);
        let mut rng = SimRng::new(6);
        let mut xs: Vec<f64> = (0..10_000)
            .map(|_| tier.sample_service_us(&mut rng))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let p99 = xs[9_900];
        assert!(p99 > 1_700.0, "p99 {p99} should be >1.7x the 1ms mean");
    }

    #[test]
    fn class_sampling_follows_weights() {
        let app = hipster_shop();
        let mut rng = SimRng::new(7);
        let mut counts = vec![0usize; app.classes.len()];
        for _ in 0..30_000 {
            counts[app.sample_class(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn mean_request_cost_is_weighted() {
        let app = hipster_shop();
        let m = app.mean_request_cost_ms();
        assert!(m > 9.0 && m < 18.0, "mean cost {m}");
    }

    #[test]
    #[should_panic(expected = "path not increasing")]
    fn non_increasing_path_panics() {
        let mut app = teastore();
        app.classes[0].path = vec![2, 1];
        app.validate();
    }
}
