//! The Alibaba-style trace (paper §VI-A).
//!
//! The paper replays an Alibaba cluster trace sped up 10×, producing
//! request rates between 56 and 548 req/s. The original trace is a large
//! external download; we substitute a deterministic synthetic trace with
//! the same envelope: a diurnal-style slow wave, shorter-period load
//! swings, spike minutes, all clamped to [56, 548] (see DESIGN.md §2).

use crate::generators::WorkloadKind;

/// Minimum rate in the paper's replay.
pub const ALIBABA_MIN_RPS: f64 = 56.0;
/// Maximum rate in the paper's replay.
pub const ALIBABA_MAX_RPS: f64 = 548.0;

/// Builds the synthetic Alibaba-style trace with one rate per second.
///
/// Deterministic: the same `seconds` always yields the same trace.
///
/// ```
/// use escra_workloads::trace::{alibaba_trace, ALIBABA_MAX_RPS, ALIBABA_MIN_RPS};
/// let rates = alibaba_trace(120);
/// assert_eq!(rates.len(), 120);
/// assert!(rates.iter().all(|r| (ALIBABA_MIN_RPS..=ALIBABA_MAX_RPS).contains(r)));
/// ```
pub fn alibaba_trace(seconds: usize) -> Vec<f64> {
    let mid = (ALIBABA_MAX_RPS + ALIBABA_MIN_RPS) / 2.0;
    let half_span = (ALIBABA_MAX_RPS - ALIBABA_MIN_RPS) / 2.0;
    (0..seconds)
        .map(|s| {
            let t = s as f64;
            // Slow "diurnal" wave (10×-sped-up day ≈ 8.6 min here we use
            // a 240 s fundamental so short runs still see it move).
            let slow = (t * core::f64::consts::TAU / 240.0).sin() * 0.55;
            // Mid-scale swings (~37 s) and fast jitter (~7 s).
            let mid_wave = (t * core::f64::consts::TAU / 37.0).sin() * 0.25;
            let fast = (t * core::f64::consts::TAU / 7.0 + 1.3).sin() * 0.12;
            // Deterministic spike pattern: every 53 s, a 3-second spike.
            let spike = if s % 53 < 3 { 0.5 } else { 0.0 };
            let x = mid + half_span * (slow + mid_wave + fast + spike);
            x.clamp(ALIBABA_MIN_RPS, ALIBABA_MAX_RPS)
        })
        .collect()
}

/// The Alibaba workload as a [`WorkloadKind`] trace of `seconds` length.
pub fn alibaba_workload(seconds: usize) -> WorkloadKind {
    WorkloadKind::Trace {
        rates: alibaba_trace(seconds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_respected() {
        let rates = alibaba_trace(600);
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(0.0f64, f64::max);
        assert!(min >= ALIBABA_MIN_RPS);
        assert!(max <= ALIBABA_MAX_RPS);
        // The trace actually explores a good part of the envelope.
        assert!(max - min > 0.5 * (ALIBABA_MAX_RPS - ALIBABA_MIN_RPS));
    }

    #[test]
    fn deterministic() {
        assert_eq!(alibaba_trace(100), alibaba_trace(100));
    }

    #[test]
    fn has_spikes() {
        let rates = alibaba_trace(120);
        // Spike seconds should exceed their neighbours.
        assert!(rates[53] > rates[50]);
    }

    #[test]
    fn variable_not_constant() {
        let rates = alibaba_trace(60);
        let first = rates[0];
        assert!(rates.iter().any(|r| (r - first).abs() > 20.0));
    }
}
