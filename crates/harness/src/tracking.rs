//! The Fig. 2 experiment: Escra's CPU limit tracking a dynamic
//! sysbench-style load on a single container.

use escra_cfs::MIB;
use escra_cluster::{AppId, Cluster, ContainerSpec, NodeSpec};
use escra_core::telemetry::ToController;
use escra_core::{deploy_app, Action, Agent, AppConfig, Controller, EscraConfig};
use escra_simcore::time::{SimDuration, SimTime};
use escra_simcore::timeseries::TimeSeries;
use escra_workloads::SysbenchLoad;

/// Result of the tracking experiment: limit and usage over time, both in
/// cores, sampled once per CFS period — exactly the two series of Fig. 2.
#[derive(Debug)]
pub struct TrackingResult {
    /// The container's CPU limit over time.
    pub limit: TimeSeries,
    /// The container's CPU usage over time.
    pub usage: TimeSeries,
    /// Number of throttled periods.
    pub throttles: u64,
}

impl TrackingResult {
    /// Mean absolute slack (limit − usage) in cores over the run.
    pub fn mean_slack_cores(&self) -> f64 {
        let n = self.limit.len().min(self.usage.len());
        if n == 0 {
            return 0.0;
        }
        self.limit
            .iter()
            .zip(self.usage.iter())
            .map(|((_, l), (_, u))| (l - u).max(0.0))
            .sum::<f64>()
            / n as f64
    }
}

/// Runs the Fig. 2 experiment: one container, the given demand schedule,
/// Escra allocation with a global limit of `global_cpu_cores`.
pub fn run_tracking(
    cfg: &EscraConfig,
    load: &SysbenchLoad,
    global_cpu_cores: f64,
    duration: SimDuration,
) -> TrackingResult {
    let app_id = AppId::new(0);
    let mut cluster = Cluster::new(vec![NodeSpec {
        cores: 8,
        mem_bytes: 16 * 1024 * MIB,
    }]);
    let mut controller = Controller::new(cfg.clone());
    let app = AppConfig {
        app: app_id,
        name: "sysbench".into(),
        global_cpu_cores,
        global_mem_bytes: 1024 * MIB,
        containers: vec![
            ContainerSpec::new("sysbench", app_id).with_restart_delay(SimDuration::ZERO)
        ],
    };
    let (ids, actions) =
        deploy_app(cfg, &app, &mut cluster, &mut controller, SimTime::ZERO).expect("deploy");
    let cid = ids[0];
    let mut agent = Agent::new(cluster.nodes()[0].id());
    for a in &actions {
        if let Action::Agent { cmd, .. } = a {
            agent.apply(&mut cluster, *cmd);
        }
    }
    cluster.tick(SimTime::ZERO);

    let period = cfg.report_period;
    let period_us = period.as_micros() as f64;
    let mut limit = TimeSeries::new("limit_cores");
    let mut usage = TimeSeries::new("usage_cores");
    let mut throttles = 0;
    let mut backlog_us = 0.0f64;

    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + duration {
        let t_next = t + period;
        // Demand for this period plus any backlog from throttled periods
        // (sysbench threads keep the work queued).
        let demand = load.work_in_us(t, t_next) + backlog_us;
        let c = cluster.container_mut(cid).expect("container");
        let granted = c.cpu.consume(demand);
        backlog_us = (demand - granted).min(8.0 * period_us); // bounded queue
        let stats = c.cpu.end_period();
        if stats.throttled {
            throttles += 1;
        }
        limit.record(t_next, stats.quota_cores);
        usage.record(t_next, stats.usage_us / period_us);
        let actions = controller.handle(
            t_next,
            ToController::CpuStats {
                container: cid,
                stats,
            },
        );
        for a in &actions {
            if let Action::Agent { cmd, .. } = a {
                agent.apply(&mut cluster, *cmd);
            }
        }
        for a in controller.tick(t_next) {
            if let Action::Agent { cmd, .. } = a {
                agent.apply(&mut cluster, cmd);
            }
        }
        t = t_next;
    }
    TrackingResult {
        limit,
        usage,
        throttles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_tracks_demand_phases() {
        let result = run_tracking(
            &EscraConfig::default(),
            &SysbenchLoad::paper_fig2(),
            5.0,
            SimDuration::from_secs(40),
        );
        assert_eq!(result.limit.len(), 400);
        // Late in the 4-core phase (t≈26s) the limit must have grown to
        // cover the demand...
        let around = |ts: &TimeSeries, sec: f64| -> f64 {
            ts.iter()
                .filter(|(t, _)| (t.as_secs_f64() - sec).abs() < 0.5)
                .map(|(_, v)| v)
                .sum::<f64>()
                / ts.iter()
                    .filter(|(t, _)| (t.as_secs_f64() - sec).abs() < 0.5)
                    .count()
                    .max(1) as f64
        };
        assert!(
            around(&result.limit, 26.0) > 3.5,
            "limit at 26s: {}",
            around(&result.limit, 26.0)
        );
        // ...and during the later 1-core phase it must have shrunk back.
        assert!(
            around(&result.limit, 32.0) < 2.0,
            "limit at 32s: {}",
            around(&result.limit, 32.0)
        );
        // Mean slack stays small: the whole point of Fig. 2.
        assert!(
            result.mean_slack_cores() < 0.8,
            "slack {}",
            result.mean_slack_cores()
        );
    }

    #[test]
    fn deterministic() {
        let a = run_tracking(
            &EscraConfig::default(),
            &SysbenchLoad::paper_fig2(),
            5.0,
            SimDuration::from_secs(10),
        );
        let b = run_tracking(
            &EscraConfig::default(),
            &SysbenchLoad::paper_fig2(),
            5.0,
            SimDuration::from_secs(10),
        );
        assert_eq!(a.limit.last(), b.limit.last());
        assert_eq!(a.throttles, b.throttles);
    }
}
