//! Trace-driven mega-scenario driver.
//!
//! Instantiates one Distributed Container per traced app — every app of
//! a [`TraceWorkload`] (Azure-shaped CSV or synthetic population) gets
//! its own Escra app pool whose pods cold-start on demand, scale out
//! under queueing, and tear down after an idle timeout — and drives tens
//! of thousands of such apps across hundreds of nodes on the simcore
//! event heap.
//!
//! The loop reuses the machinery of the other drivers:
//!
//! * per-node **batched/columnar telemetry** on a [`ReportPlan`]-derived
//!   flush schedule (node `n` flushes every `period ×
//!   multipliers[n % len]`, phase-jittered per node);
//! * **idle fast-forward** across globally quiet stretches, replaying
//!   only the observable residue of each skipped window — controller
//!   ticks, per-second zero-limit samples, and crucially any node flush
//!   that falls due inside the skipped span, so jitter-desynchronized
//!   node timers are never jumped over (output is bit-identical with
//!   the flag off);
//! * the shared [`ServerlessStats`] recorders (cold starts, wasted
//!   resource-time, absolute exec/total slowdown) next to the paper's
//!   [`RunMetrics`].
//!
//! Scale comes from the *active set*: a window only touches apps that
//! currently hold pods or queued arrivals. Everything else sleeps in the
//! event heap as a single `Wake` entry per app at its next Poisson
//! arrival (piecewise-constant rate from the trace's per-minute grid;
//! the per-minute restart is exact by memorylessness).

use crate::microsim::{apply_limit_updates, ReportPlan};
use crate::policy::BaselineScalerKind;
use crate::serverless_sim::drive_actions;
use escra_baselines::{PeriodicScaler, UsageSample};
use escra_cfs::{node::arbitrate, ChargeOutcome, MIB};
use escra_cluster::{AppId, Cluster, ContainerId, ContainerSpec, ContainerState, NodeSpec};
use escra_core::telemetry::{
    CpuStatsColumns, CpuStatsEntry, ToController, CPU_STATS_ENTRY_BYTES, CPU_STATS_HEADER_BYTES,
    OOM_EVENT_WIRE_BYTES, REGISTER_WIRE_BYTES,
};
use escra_core::{Agent, Controller, EscraConfig};
use escra_metrics::{RunMetrics, ServerlessStats};
use escra_simcore::events::EventQueue;
use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use escra_workloads::{TraceApp, TraceWorkload};
use std::collections::VecDeque;

/// Maximum cores one traced invocation can exploit (mirrors the
/// serverless driver: some phases of real actions are parallel).
const TRACE_PARALLELISM: f64 = 1.2;

/// Configuration of one trace-driven run (typically one shard of the
/// `trace_mega` grid).
#[derive(Debug, Clone)]
pub struct TraceSimConfig {
    /// `Some` enables Escra management (one Distributed Container per
    /// traced app); `None` runs static per-pod limits.
    pub escra: Option<EscraConfig>,
    /// `Some` runs a [`PeriodicScaler`] baseline (tiny autoscaler or
    /// ARC-V) over the pod population — mutually exclusive with `escra`.
    pub baseline: Option<BaselineScalerKind>,
    /// Master seed; all per-app arrival/duration streams fork from it.
    pub seed: u64,
    /// Worker nodes.
    pub nodes: usize,
    /// Cores per node.
    pub node_cores: u32,
    /// Memory per node, in MiB.
    pub node_mem_mib: u64,
    /// Per-node telemetry flush schedule (multipliers + phase jitter).
    pub report_plan: ReportPlan,
    /// Flush telemetry as columnar datagrams (`CpuStatsColumns`) instead
    /// of row batches.
    pub columnar: bool,
    /// Fast-forward across globally idle windows (see module docs).
    pub fast_forward_idle: bool,
    /// Warm-pod teardown timeout.
    pub idle_timeout: SimDuration,
    /// Pod cold-start delay.
    pub cold_start: SimDuration,
    /// Static per-pod CPU limit, in cores.
    pub pod_cpu_cores: f64,
    /// Scale-out cap: at most this many concurrent pods per app.
    pub max_pods_per_app: usize,
    /// Run only the first N trace minutes (`None` = the whole trace).
    pub minutes_cap: Option<usize>,
}

impl TraceSimConfig {
    /// Paper-like defaults: Υ = 35 / growth cap 2.5 when Escra is on
    /// (short-lived actions, as in §VI-F), 48-core / 64 GiB nodes,
    /// OpenWhisk-style 500 ms cold starts and 60 s idle timeout,
    /// columnar telemetry on the aligned report plan.
    pub fn paper_like(escra: Option<EscraConfig>, seed: u64, nodes: usize) -> Self {
        TraceSimConfig {
            escra: escra.map(|c| {
                let mut c = c.with_upsilon(35.0);
                c.max_quota_growth_factor = 2.5;
                c
            }),
            baseline: None,
            seed,
            nodes,
            node_cores: 48,
            node_mem_mib: 64 * 1024,
            report_plan: ReportPlan::aligned(),
            columnar: true,
            fast_forward_idle: true,
            idle_timeout: SimDuration::from_secs(60),
            cold_start: SimDuration::from_millis(500),
            pod_cpu_cores: 1.0,
            max_pods_per_app: 8,
            minutes_cap: None,
        }
    }
}

/// Output of one trace-driven run.
#[derive(Debug)]
pub struct TraceSimOutput {
    /// The paper's metrics: per-invocation latency, slack distributions,
    /// aggregate limit series, OOM kills.
    pub metrics: RunMetrics,
    /// Serverless-style statistics (cold starts, wasted resource-time,
    /// absolute slowdowns).
    pub serverless: ServerlessStats,
    /// Live container report-periods simulated (the scale currency).
    pub container_periods: u64,
    /// Report-periods that ended throttled (throttle rate =
    /// `throttled_periods / container_periods`).
    pub throttled_periods: u64,
    /// Peak concurrent pods.
    pub peak_pods: usize,
    /// Pods cold-started over the run.
    pub pods_spawned: u64,
    /// Control-plane bytes (telemetry, registrations, OOM events;
    /// 0 without Escra).
    pub control_bytes: u64,
    /// Windows executed in full.
    pub rounds_executed: u64,
    /// Idle windows fast-forwarded across.
    pub rounds_fast_forwarded: u64,
}

#[derive(Debug, Clone, Copy)]
enum PodState {
    Starting,
    Idle {
        since: SimTime,
    },
    Exec {
        arrival: SimTime,
        exec_start: SimTime,
        work_us: f64,
        remaining_us: f64,
    },
}

#[derive(Debug)]
struct PodRt {
    cid: ContainerId,
    state: PodState,
    /// CPU-time consumed since the last 1 s sample, in µs — the usage
    /// integral a baseline [`PeriodicScaler`] observes.
    sec_usage_us: f64,
}

#[derive(Debug)]
struct AppRt {
    rng_arrival: SimRng,
    rng_exec: SimRng,
    pods: Vec<PodRt>,
    pending: VecDeque<SimTime>,
    active: bool,
}

#[derive(Debug, Clone, Copy)]
enum TraceEv {
    /// A window close.
    Round,
    /// An arrival for app `i` (apps with no pods and no queue sleep in
    /// the heap as exactly one of these).
    Wake(u32),
}

/// Next arrival of `app` strictly after `from`, under the trace's
/// piecewise-constant per-minute rate. Exponential gaps are drawn at the
/// current minute's rate and re-drawn from each minute boundary the gap
/// crosses — exact for a Poisson process by memorylessness.
fn next_arrival(app: &TraceApp, rng: &mut SimRng, from: SimTime, end: SimTime) -> Option<SimTime> {
    let minute = SimDuration::from_secs(60);
    let mut t = from;
    while t < end {
        let rate = app.rate_at(t);
        let m = t.duration_since(SimTime::ZERO).as_micros() / 60_000_000;
        let minute_end = SimTime::ZERO + minute * (m + 1);
        if rate <= 1e-12 {
            t = minute_end;
            continue;
        }
        let cand = t + SimDuration::from_secs_f64(rng.exponential(rate));
        if cand < minute_end {
            return (cand < end).then_some(cand);
        }
        t = minute_end;
    }
    None
}

struct TraceSim<'a> {
    workload: &'a TraceWorkload,
    cfg: &'a TraceSimConfig,
    period: SimDuration,
    period_us: f64,
    end: SimTime,
    cluster: Cluster,
    controller: Option<Controller>,
    scaler: Option<Box<dyn PeriodicScaler>>,
    scaler_update_secs: u64,
    agents: Vec<Agent>,
    apps: Vec<AppRt>,
    active: Vec<usize>,
    // Per-node telemetry buffers + their ReportPlan-derived schedule.
    node_buf: Vec<Vec<CpuStatsEntry>>,
    next_flush: Vec<SimTime>,
    node_period: Vec<SimDuration>,
    node_exec: Vec<Vec<(usize, usize)>>,
    metrics: RunMetrics,
    serverless: ServerlessStats,
    next_second: SimTime,
    total_pods: usize,
    peak_pods: usize,
    pods_spawned: u64,
    container_periods: u64,
    throttled_periods: u64,
    control_bytes: u64,
    rounds_executed: u64,
    rounds_fast_forwarded: u64,
    t_final: SimTime,
}

/// Runs one trace-driven experiment.
pub fn run_trace_sim(workload: &TraceWorkload, cfg: &TraceSimConfig) -> TraceSimOutput {
    let mut sim = TraceSim::new(workload, cfg);
    sim.run()
}

impl<'a> TraceSim<'a> {
    fn new(workload: &'a TraceWorkload, cfg: &'a TraceSimConfig) -> Self {
        assert!(
            cfg.escra.is_none() || cfg.baseline.is_none(),
            "escra and a baseline scaler are mutually exclusive"
        );
        let period = cfg
            .escra
            .as_ref()
            .map(|c| c.report_period)
            .unwrap_or(SimDuration::from_millis(100));
        let minutes = cfg
            .minutes_cap
            .map(|cap| cap.min(workload.minutes))
            .unwrap_or(workload.minutes);
        let end = SimTime::ZERO + SimDuration::from_secs(60 * minutes as u64);
        let cluster = Cluster::new(vec![
            NodeSpec {
                cores: cfg.node_cores,
                mem_bytes: cfg.node_mem_mib * MIB,
            };
            cfg.nodes.max(1)
        ]);
        let controller = cfg.escra.as_ref().map(|ecfg| {
            let mut c = Controller::new(ecfg.clone());
            let scale_out = cfg.max_pods_per_app.max(1) as u64;
            for (i, app) in workload.apps.iter().enumerate() {
                // The Distributed Container's global limits: enough for a
                // fully scaled-out app at its static reservation.
                c.register_app(
                    AppId::new(i as u64),
                    cfg.pod_cpu_cores * scale_out as f64,
                    app.mem_mib * 2 * scale_out * MIB,
                );
            }
            for n in cluster.nodes() {
                c.note_node(n.id());
            }
            c
        });
        let agents = cluster.nodes().iter().map(|n| Agent::new(n.id())).collect();
        let n_nodes = cfg.nodes.max(1);
        let node_period: Vec<SimDuration> = (0..n_nodes)
            .map(|n| {
                let ms = &cfg.report_plan.period_multipliers;
                let m = if ms.is_empty() {
                    1
                } else {
                    ms[n % ms.len()].max(1)
                };
                period * m as u64
            })
            .collect();
        let next_flush = (0..n_nodes)
            .map(|n| {
                let phase = if cfg.report_plan.jitter_frac > 0.0 {
                    let p = node_period[n].as_secs_f64();
                    let mut r = SimRng::new(cfg.seed).fork(0x7265_7074).fork(n as u64);
                    SimDuration::from_secs_f64(
                        r.uniform(0.0, cfg.report_plan.jitter_frac.min(1.0) * p),
                    )
                } else {
                    SimDuration::ZERO
                };
                SimTime::ZERO + phase + node_period[n]
            })
            .collect();
        let apps = (0..workload.apps.len())
            .map(|i| {
                let base = SimRng::new(cfg.seed)
                    .fork(0x7472_6373) /* "trcs" */
                    .fork(i as u64);
                AppRt {
                    rng_arrival: base.fork(0),
                    rng_exec: base.fork(1),
                    pods: Vec::new(),
                    pending: VecDeque::new(),
                    active: false,
                }
            })
            .collect();
        TraceSim {
            workload,
            cfg,
            period,
            period_us: period.as_micros() as f64,
            end,
            cluster,
            controller,
            scaler: cfg.baseline.as_ref().map(|k| k.build()),
            scaler_update_secs: cfg
                .baseline
                .as_ref()
                .map(|k| (k.update_period().as_micros() / 1_000_000).max(1))
                .unwrap_or(1),
            agents,
            apps,
            active: Vec::new(),
            node_buf: vec![Vec::new(); n_nodes],
            next_flush,
            node_period,
            node_exec: vec![Vec::new(); n_nodes],
            metrics: RunMetrics::new(if cfg.escra.is_some() {
                "escra-trace".to_string()
            } else if let Some(k) = &cfg.baseline {
                format!("{}-trace", k.name())
            } else {
                "static-trace".to_string()
            }),
            serverless: ServerlessStats::new(),
            next_second: SimTime::from_secs(1),
            total_pods: 0,
            peak_pods: 0,
            pods_spawned: 0,
            container_periods: 0,
            throttled_periods: 0,
            control_bytes: 0,
            rounds_executed: 0,
            rounds_fast_forwarded: 0,
            t_final: SimTime::ZERO,
        }
    }

    fn run(&mut self) -> TraceSimOutput {
        let mut q: EventQueue<TraceEv> = EventQueue::new();
        for i in 0..self.apps.len() {
            if let Some(at) = next_arrival(
                &self.workload.apps[i],
                &mut self.apps[i].rng_arrival,
                SimTime::ZERO,
                self.end,
            ) {
                // Key i+1: a Wake landing exactly on a window close pops
                // after that close's Round (key 0) — the arrival belongs
                // to the next window, the half-open contract.
                q.push_keyed(at, i as u64 + 1, TraceEv::Wake(i as u32));
            }
        }
        q.push_keyed(SimTime::ZERO + self.period, 0, TraceEv::Round);
        while let Some((t_ev, ev)) = q.pop() {
            match ev {
                TraceEv::Wake(i) => {
                    let i = i as usize;
                    self.apps[i].pending.push_back(t_ev);
                    if !self.apps[i].active {
                        self.apps[i].active = true;
                        self.active.push(i);
                    }
                    if let Some(at) = next_arrival(
                        &self.workload.apps[i],
                        &mut self.apps[i].rng_arrival,
                        t_ev,
                        self.end,
                    ) {
                        q.push_keyed(at, i as u64 + 1, TraceEv::Wake(i as u32));
                    }
                }
                TraceEv::Round => self.round(t_ev, &mut q),
            }
        }
        self.metrics.duration = self.t_final.duration_since(SimTime::ZERO);
        self.metrics.oom_kills = self.cluster.total_oom_kills();
        TraceSimOutput {
            metrics: std::mem::replace(&mut self.metrics, RunMetrics::new("")),
            serverless: std::mem::take(&mut self.serverless),
            container_periods: self.container_periods,
            throttled_periods: self.throttled_periods,
            peak_pods: self.peak_pods,
            pods_spawned: self.pods_spawned,
            control_bytes: self.control_bytes,
            rounds_executed: self.rounds_executed,
            rounds_fast_forwarded: self.rounds_fast_forwarded,
        }
    }

    /// One full window `[t_next - period, t_next)`, resolved at its close.
    fn round(&mut self, t_next: SimTime, q: &mut EventQueue<TraceEv>) {
        let t = t_next - self.period;
        self.rounds_executed += 1;
        self.cluster.tick(t);

        // Promote started pods; assign queued arrivals; scale out.
        for k in 0..self.active.len() {
            let ai = self.active[k];
            for pi in 0..self.apps[ai].pods.len() {
                if matches!(self.apps[ai].pods[pi].state, PodState::Starting)
                    && self
                        .cluster
                        .container(self.apps[ai].pods[pi].cid)
                        .is_some_and(|c| c.is_running())
                {
                    self.apps[ai].pods[pi].state = PodState::Idle { since: t };
                }
            }
            for pi in 0..self.apps[ai].pods.len() {
                if self.apps[ai].pending.is_empty() {
                    break;
                }
                if let PodState::Idle { .. } = self.apps[ai].pods[pi].state {
                    let arrival = self.apps[ai].pending.pop_front().expect("non-empty");
                    let work = self.workload.apps[ai].sample_exec_us(&mut self.apps[ai].rng_exec);
                    self.apps[ai].pods[pi].state = PodState::Exec {
                        arrival,
                        exec_start: t,
                        work_us: work,
                        remaining_us: work,
                    };
                }
            }
            let cap = self.cfg.max_pods_per_app.max(1);
            let mut to_spawn = self.apps[ai]
                .pending
                .len()
                .min(cap.saturating_sub(self.apps[ai].pods.len()));
            while to_spawn > 0 {
                self.spawn_pod(ai, t);
                to_spawn -= 1;
            }
        }
        self.peak_pods = self.peak_pods.max(self.total_pods);

        // CPU: arbitrate execution among busy pods, per node.
        for k in 0..self.active.len() {
            let ai = self.active[k];
            for (pi, pod) in self.apps[ai].pods.iter().enumerate() {
                if let PodState::Exec { .. } = pod.state {
                    let c = self.cluster.container(pod.cid).expect("pod container");
                    if c.is_running() {
                        self.node_exec[c.node().as_u64() as usize].push((ai, pi));
                    }
                }
            }
        }
        for node in 0..self.node_exec.len() {
            if self.node_exec[node].is_empty() {
                continue;
            }
            let capacity = self.cfg.node_cores as f64 * self.period_us;
            let mut want = Vec::with_capacity(self.node_exec[node].len());
            for &(ai, pi) in &self.node_exec[node] {
                let c = self
                    .cluster
                    .container(self.apps[ai].pods[pi].cid)
                    .expect("pod container");
                let remaining = match self.apps[ai].pods[pi].state {
                    PodState::Exec { remaining_us, .. } => remaining_us,
                    _ => 0.0,
                };
                want.push(
                    remaining
                        .min(TRACE_PARALLELISM * self.period_us)
                        .min(c.cpu.runtime_remaining_us()),
                );
            }
            let grants = arbitrate(capacity, &want);
            for (g, &(ai, pi)) in self.node_exec[node].iter().enumerate() {
                let granted = grants[g];
                let cid = self.apps[ai].pods[pi].cid;
                if let PodState::Exec {
                    arrival,
                    exec_start,
                    work_us,
                    remaining_us,
                } = self.apps[ai].pods[pi].state
                {
                    let c = self.cluster.container_mut(cid).expect("pod container");
                    c.cpu.consume(granted);
                    let left = remaining_us - granted;
                    if left <= 1.0 {
                        // Completed mid-window; interpolate completion.
                        let frac = if granted > 0.0 {
                            (remaining_us / granted).clamp(0.0, 1.0)
                        } else {
                            1.0
                        };
                        let done_at = t + self.period.mul_f64(frac);
                        let total = done_at.duration_since(arrival);
                        self.serverless.record_completion(
                            SimDuration::from_secs_f64(work_us / TRACE_PARALLELISM / 1e6),
                            done_at.duration_since(exec_start),
                            total,
                        );
                        self.metrics.latency.record_success(total);
                        self.apps[ai].pods[pi].state = PodState::Idle { since: done_at };
                    } else {
                        if c.cpu.runtime_remaining_us() <= self.period_us * 0.01 {
                            c.cpu.mark_throttled();
                        }
                        self.apps[ai].pods[pi].state = PodState::Exec {
                            arrival,
                            exec_start,
                            work_us,
                            remaining_us: left,
                        };
                    }
                }
            }
        }
        for members in self.node_exec.iter_mut() {
            members.clear();
        }

        // Memory targets + OOM handling.
        for k in 0..self.active.len() {
            let ai = self.active[k];
            for pi in 0..self.apps[ai].pods.len() {
                self.pod_memory(ai, pi, t_next);
            }
        }

        // Telemetry: close the CPU period for every pod; buffer stats of
        // running ones on their node (flushed on the node's schedule).
        for k in 0..self.active.len() {
            let ai = self.active[k];
            for pi in 0..self.apps[ai].pods.len() {
                let cid = self.apps[ai].pods[pi].cid;
                let c = self.cluster.container_mut(cid).expect("pod container");
                let stats = c.cpu.end_period();
                self.apps[ai].pods[pi].sec_usage_us += stats.usage_us;
                let c = self.cluster.container(cid).expect("pod container");
                if !matches!(c.state(), ContainerState::Running) {
                    continue;
                }
                self.container_periods += 1;
                self.throttled_periods += stats.throttled as u64;
                let window_secs = self.period_us / 1e6;
                self.serverless.record_wasted(
                    c.cpu.quota_cores() * window_secs - stats.usage_us / 1e6,
                    (c.mem.limit_bytes().saturating_sub(c.mem.usage_bytes())) as f64 / MIB as f64
                        * window_secs,
                );
                // The billing integral: what the pod *reserves* this
                // window, priced by metrics::cost.
                self.serverless.record_allocated(
                    c.cpu.quota_cores() * window_secs,
                    c.mem.limit_bytes() as f64 / MIB as f64 * window_secs,
                );
                if self.controller.is_some() {
                    let node = c.node().as_u64() as usize;
                    self.node_buf[node].push(CpuStatsEntry {
                        container: cid,
                        stats,
                    });
                }
            }
        }
        self.flush_due(t_next);
        if let Some(ctl) = self.controller.as_mut() {
            let actions = ctl.tick(t_next);
            drive_actions(&mut self.cluster, &mut self.agents, ctl, actions, t_next);
        }

        // Idle-timeout teardown.
        for k in 0..self.active.len() {
            let ai = self.active[k];
            let mut pi = 0;
            while pi < self.apps[ai].pods.len() {
                let dead = matches!(self.apps[ai].pods[pi].state, PodState::Idle { since }
                    if t_next.duration_since(since) >= self.cfg.idle_timeout);
                if dead {
                    let cid = self.apps[ai].pods[pi].cid;
                    let _ = self.cluster.terminate(cid, t_next);
                    if let Some(ctl) = self.controller.as_mut() {
                        let _ = ctl.deregister_container(cid);
                    }
                    if let Some(s) = self.scaler.as_mut() {
                        s.forget(cid);
                    }
                    for agent in self.agents.iter_mut() {
                        agent.forget_container(cid);
                    }
                    self.apps[ai].pods.swap_remove(pi);
                    self.total_pods -= 1;
                } else {
                    pi += 1;
                }
            }
        }

        // Per-second aggregate limits + slack sampling (and, in the
        // baseline-scaler mode, the observe → recommend → apply loop).
        while self.next_second <= t_next {
            let mut agg_cpu = 0.0;
            let mut agg_mem = 0.0;
            for k in 0..self.active.len() {
                let ai = self.active[k];
                for pod in &mut self.apps[ai].pods {
                    let c = self.cluster.container(pod.cid).expect("pod container");
                    agg_cpu += c.cpu.quota_cores();
                    agg_mem += c.mem.limit_bytes() as f64 / MIB as f64;
                    self.metrics.slack.record(
                        c.cpu.quota_cores().max(0.0),
                        c.mem.limit_bytes().saturating_sub(c.mem.usage_bytes()) as f64 / MIB as f64,
                    );
                    if let Some(s) = self.scaler.as_mut() {
                        s.observe(
                            pod.cid,
                            UsageSample {
                                cpu_cores: pod.sec_usage_us / 1e6,
                                mem_bytes: c.mem.usage_bytes(),
                            },
                        );
                        pod.sec_usage_us = 0.0;
                    }
                }
            }
            self.metrics
                .record_limits(self.next_second, agg_cpu, agg_mem);
            if let Some(s) = self.scaler.as_mut() {
                // Cadence keyed to absolute seconds, so idle
                // fast-forward (which skips this loop) cannot drift the
                // recommendation phase.
                let sec = self.next_second.duration_since(SimTime::ZERO).as_micros() / 1_000_000;
                if sec.is_multiple_of(self.scaler_update_secs) {
                    let updates = s.recommend();
                    apply_limit_updates(&mut self.cluster, &updates, false, self.next_second);
                }
            }
            self.next_second += SimDuration::from_secs(1);
        }

        // Deactivate drained apps (their next arrival sleeps in the heap).
        let mut w = 0;
        for k in 0..self.active.len() {
            let ai = self.active[k];
            if self.apps[ai].pods.is_empty() && self.apps[ai].pending.is_empty() {
                self.apps[ai].active = false;
            } else {
                self.active[w] = ai;
                w += 1;
            }
        }
        self.active.truncate(w);
        self.t_final = t_next;

        // Schedule the next window, fast-forwarding across globally idle
        // spans. Each skipped window replays its observable residue —
        // node flushes that fall due (buffers can still hold entries of
        // just-torn-down pods), the controller tick, and the per-second
        // zero-limit samples — so a fast-forwarded run is bit-identical
        // to one executing every empty window, even under a jittered
        // report plan.
        let mut next_round = t_next + self.period;
        if self.cfg.fast_forward_idle && self.active.is_empty() {
            let horizon = q.peek_time().unwrap_or(self.end);
            while next_round <= horizon && next_round - self.period < self.end {
                self.flush_due(next_round);
                if let Some(ctl) = self.controller.as_mut() {
                    let actions = ctl.tick(next_round);
                    drive_actions(
                        &mut self.cluster,
                        &mut self.agents,
                        ctl,
                        actions,
                        next_round,
                    );
                }
                while self.next_second <= next_round {
                    self.metrics.record_limits(self.next_second, 0.0, 0.0);
                    self.next_second += SimDuration::from_secs(1);
                }
                self.rounds_fast_forwarded += 1;
                self.t_final = next_round;
                next_round += self.period;
            }
        }
        if next_round - self.period < self.end {
            q.push_keyed(next_round, 0, TraceEv::Round);
        }
    }

    /// Charges `pods[ai][pi]` toward its state's memory target, routing a
    /// would-be OOM through the controller (grant or kill) or the vanilla
    /// kernel killer.
    fn pod_memory(&mut self, ai: usize, pi: usize, now: SimTime) {
        let cid = self.apps[ai].pods[pi].cid;
        if !self.cluster.container(cid).is_some_and(|c| c.is_running()) {
            return;
        }
        let app = &self.workload.apps[ai];
        let target = match self.apps[ai].pods[pi].state {
            PodState::Exec { .. } => app.mem_mib * MIB,
            _ => app.idle_mem_mib * MIB,
        };
        let usage = self.cluster.container(cid).expect("pod").mem.usage_bytes();
        if target <= usage {
            self.cluster
                .container_mut(cid)
                .expect("pod")
                .mem
                .uncharge(usage - target);
            return;
        }
        let delta = target - usage;
        let outcome = self
            .cluster
            .container_mut(cid)
            .expect("pod")
            .mem
            .try_charge(delta);
        let ChargeOutcome::WouldOom { shortfall_bytes } = outcome else {
            return;
        };
        let killed = if let Some(ctl) = self.controller.as_mut() {
            self.control_bytes += OOM_EVENT_WIRE_BYTES;
            let current_limit_bytes = self.cluster.container(cid).expect("pod").mem.limit_bytes();
            let actions = ctl.handle(
                now,
                ToController::OomEvent {
                    container: cid,
                    shortfall_bytes,
                    current_limit_bytes,
                },
            );
            let killed = drive_actions(&mut self.cluster, &mut self.agents, ctl, actions, now);
            if !killed {
                let _ = self
                    .cluster
                    .container_mut(cid)
                    .expect("pod")
                    .mem
                    .try_charge(delta);
            }
            killed
        } else {
            if let Some(s) = self.scaler.as_mut() {
                // Tell the baseline so its next recommendation can
                // raise the memory limit.
                let limit = self.cluster.container(cid).expect("pod").mem.limit_bytes();
                s.on_oom(cid, limit);
            }
            self.cluster.oom_kill(cid, now).expect("pod exists");
            true
        };
        if killed {
            // The in-flight invocation retries from scratch (fresh work
            // draw on reassignment), queued ahead of newer arrivals.
            if let PodState::Exec { arrival, .. } = self.apps[ai].pods[pi].state {
                self.apps[ai].pending.push_front(arrival);
            }
            self.apps[ai].pods[pi].state = PodState::Starting;
        }
    }

    /// Flushes every node whose report timer fell due by `now`, as one
    /// batched (or columnar) datagram per node.
    fn flush_due(&mut self, now: SimTime) {
        let Some(ctl) = self.controller.as_mut() else {
            return;
        };
        for n in 0..self.node_buf.len() {
            if self.next_flush[n] > now {
                continue;
            }
            while self.next_flush[n] <= now {
                self.next_flush[n] += self.node_period[n];
            }
            if self.node_buf[n].is_empty() {
                continue;
            }
            self.control_bytes +=
                CPU_STATS_HEADER_BYTES + self.node_buf[n].len() as u64 * CPU_STATS_ENTRY_BYTES;
            let mut actions = Vec::new();
            if self.cfg.columnar {
                let columns = CpuStatsColumns::from_entries(&self.node_buf[n]);
                ctl.ingest_cpu_columns_at(now, &columns, &mut actions);
            } else {
                ctl.ingest_cpu_batch_at(now, &self.node_buf[n], &mut actions);
            }
            self.node_buf[n].clear();
            drive_actions(&mut self.cluster, &mut self.agents, ctl, actions, now);
        }
    }

    /// Cold-starts one pod for app `ai` (placement follows the cluster's
    /// strategy, so a scaled-out app — one Distributed Container — spans
    /// nodes).
    fn spawn_pod(&mut self, ai: usize, now: SimTime) {
        let app = &self.workload.apps[ai];
        let spec = ContainerSpec::new(
            format!("{}-p{}", app.name, self.pods_spawned),
            AppId::new(ai as u64),
        )
        .with_cpu_limit(self.cfg.pod_cpu_cores)
        .with_mem_limit(app.mem_mib * 2 * MIB)
        .with_base_mem(app.idle_mem_mib.min(app.mem_mib) * MIB)
        .with_restart_delay(self.cfg.cold_start);
        let cid = self.cluster.deploy(spec, now).expect("cluster has nodes");
        if let Some(ctl) = self.controller.as_mut() {
            let node = self.cluster.container(cid).expect("pod").node();
            if let Ok(actions) = ctl.register_container(
                cid,
                AppId::new(ai as u64),
                node,
                self.cfg.pod_cpu_cores,
                app.mem_mib * 2 * MIB,
            ) {
                self.control_bytes += REGISTER_WIRE_BYTES;
                drive_actions(&mut self.cluster, &mut self.agents, ctl, actions, now);
            }
        }
        if let Some(s) = self.scaler.as_mut() {
            s.track(cid, self.cfg.pod_cpu_cores, app.mem_mib * 2 * MIB);
        }
        self.apps[ai].pods.push(PodRt {
            cid,
            state: PodState::Starting,
            sec_usage_us: 0.0,
        });
        self.serverless.record_cold_start(self.cfg.cold_start);
        self.pods_spawned += 1;
        self.total_pods += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_workloads::synthetic_trace::{mega_mix, synthetic_trace};

    /// Everything observable about a run except the driver counters.
    fn digest(out: &TraceSimOutput) -> String {
        format!(
            "{:?}|{:?}|{}|{}|{}|{}|{}",
            out.metrics,
            out.serverless,
            out.container_periods,
            out.throttled_periods,
            out.peak_pods,
            out.pods_spawned,
            out.control_bytes
        )
    }

    fn small_cfg(escra: bool, seed: u64) -> TraceSimConfig {
        let mut cfg = TraceSimConfig::paper_like(escra.then(EscraConfig::default), seed, 4);
        cfg.node_cores = 16;
        cfg
    }

    #[test]
    fn drives_a_synthetic_population() {
        let w = synthetic_trace(&mega_mix(60, 3, 11));
        let out = run_trace_sim(&w, &small_cfg(true, 11));
        assert!(
            out.serverless.invocations > 100,
            "{}",
            out.serverless.invocations
        );
        assert!(out.container_periods > 1_000);
        assert!(out.pods_spawned as usize >= out.peak_pods);
        assert!(out.serverless.cold_starts > 0);
        assert!(out.serverless.wasted_cpu_core_secs > 0.0);
        assert!(out.control_bytes > 0);
        assert_eq!(out.metrics.policy, "escra-trace");
    }

    #[test]
    fn deterministic_across_reruns() {
        let w = synthetic_trace(&mega_mix(40, 2, 5));
        let cfg = small_cfg(true, 5);
        let a = run_trace_sim(&w, &cfg);
        let b = run_trace_sim(&w, &cfg);
        assert_eq!(digest(&a), digest(&b));
    }

    /// A workload with a dead middle: arrivals in minutes 0 and 3 only,
    /// so pods tear down and the driver goes fully idle in between.
    fn gapped_workload(apps: usize) -> TraceWorkload {
        TraceWorkload {
            apps: (0..apps)
                .map(|i| TraceApp {
                    name: format!("gap-{i}"),
                    rpm: vec![30.0, 0.0, 0.0, 30.0],
                    exec_ms_mu: 50f64.ln(),
                    exec_ms_sigma: 0.5,
                    mem_mib: 64,
                    idle_mem_mib: 16,
                })
                .collect(),
            minutes: 4,
        }
    }

    #[test]
    fn fast_forward_is_bit_identical_under_jittered_report_plan() {
        // The adversarial case for idle fast-forward: node report timers
        // desynchronized by multipliers and phase jitter, so pods die
        // with telemetry still buffered and flushes fall due *inside*
        // the idle span. The skip must replay those flushes (and the
        // controller ticks) exactly.
        for columnar in [false, true] {
            let mut slow = small_cfg(true, 7);
            slow.report_plan = ReportPlan {
                period_multipliers: vec![1, 2, 5],
                jitter_frac: 0.9,
            };
            slow.columnar = columnar;
            slow.idle_timeout = SimDuration::from_secs(10);
            slow.fast_forward_idle = false;
            let mut fast = slow.clone();
            fast.fast_forward_idle = true;
            let w = gapped_workload(12);
            let a = run_trace_sim(&w, &slow);
            let b = run_trace_sim(&w, &fast);
            assert_eq!(
                digest(&a),
                digest(&b),
                "fast-forward divergence (columnar={columnar})"
            );
            assert_eq!(a.rounds_fast_forwarded, 0);
            assert!(
                b.rounds_fast_forwarded > 0,
                "the dead middle minutes should fast-forward"
            );
            assert_eq!(
                a.rounds_executed,
                b.rounds_executed + b.rounds_fast_forwarded
            );
        }
    }

    #[test]
    fn baseline_scalers_drive_the_trace_population() {
        use escra_baselines::{ArcVConfig, TinyAutoscalerConfig};
        let w = synthetic_trace(&mega_mix(60, 3, 13));
        let stat = run_trace_sim(&w, &small_cfg(false, 13));
        for kind in [
            BaselineScalerKind::Tiny(TinyAutoscalerConfig::default()),
            BaselineScalerKind::ArcV(ArcVConfig::default()),
        ] {
            let mut cfg = small_cfg(false, 13);
            cfg.baseline = Some(kind);
            let out = run_trace_sim(&w, &cfg);
            assert_eq!(out.metrics.policy, format!("{}-trace", kind.name()));
            assert!(
                out.serverless.invocations > 100,
                "{}: invocations {}",
                kind.name(),
                out.serverless.invocations
            );
            // Both scalers bill fewer resource-seconds than the static
            // reservation (the cost-efficiency claim in dollars).
            assert!(out.serverless.alloc_cpu_core_secs > 0.0);
            assert!(
                out.serverless.alloc_mem_mib_secs < stat.serverless.alloc_mem_mib_secs,
                "{}: alloc mem {} vs static {}",
                kind.name(),
                out.serverless.alloc_mem_mib_secs,
                stat.serverless.alloc_mem_mib_secs
            );
            // Reruns are deterministic.
            let again = run_trace_sim(&w, &cfg);
            assert_eq!(digest(&out), digest(&again));
        }
    }

    #[test]
    fn escra_undercuts_static_limits() {
        let w = synthetic_trace(&mega_mix(60, 3, 13));
        let stat = run_trace_sim(&w, &small_cfg(false, 13));
        let escra = run_trace_sim(&w, &small_cfg(true, 13));
        assert!(
            escra.metrics.cpu_limit_series.mean() < stat.metrics.cpu_limit_series.mean(),
            "escra {} vs static {}",
            escra.metrics.cpu_limit_series.mean(),
            stat.metrics.cpu_limit_series.mean()
        );
        assert!(
            escra.metrics.mem_limit_series.mean() < stat.metrics.mem_limit_series.mean(),
            "escra {} vs static {}",
            escra.metrics.mem_limit_series.mean(),
            stat.metrics.mem_limit_series.mean()
        );
        // Escra's wasted resource-time (quota slack) undercuts the
        // static reservation's.
        assert!(escra.serverless.wasted_cpu_core_secs < stat.serverless.wasted_cpu_core_secs);
    }
}
