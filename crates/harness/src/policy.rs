//! The policies an experiment can run under.

use escra_baselines::{AutopilotConfig, VpaConfig};
use escra_core::EscraConfig;

/// Which allocation policy manages the containers during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Escra: event-driven, per-period allocation (the paper's system).
    Escra(EscraConfig),
    /// Static limits at `factor ×` the profiled peak (common practice).
    Static {
        /// The provisioning factor (paper uses 0.75 / 1.0 / 1.5).
        factor: f64,
    },
    /// The Autopilot recreation (state of the art baseline).
    Autopilot(AutopilotConfig),
    /// A VPA-style threshold autoscaler with restart semantics.
    Vpa(VpaConfig),
}

impl Policy {
    /// The paper's default Escra configuration.
    pub fn escra_default() -> Self {
        Policy::Escra(EscraConfig::default())
    }

    /// The paper's comparison point: static 1.5× peak.
    pub fn static_1_5x() -> Self {
        Policy::Static { factor: 1.5 }
    }

    /// Autopilot at its best-case 1-second update period.
    pub fn autopilot_default() -> Self {
        Policy::Autopilot(AutopilotConfig::default())
    }

    /// Short name used in reports ("escra", "static-1.5x", ...).
    pub fn name(&self) -> String {
        match self {
            Policy::Escra(_) => "escra".into(),
            Policy::Static { factor } => format!("static-{factor}x"),
            Policy::Autopilot(c) => {
                format!("autopilot-{}s", c.update_period.as_millis() as f64 / 1000.0)
            }
            Policy::Vpa(_) => "vpa".into(),
        }
    }

    /// Whether this policy needs a profiling pre-run to seed limits.
    pub fn needs_profile(&self) -> bool {
        matches!(
            self,
            Policy::Static { .. } | Policy::Autopilot(_) | Policy::Vpa(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Policy::escra_default().name(), "escra");
        assert_eq!(Policy::static_1_5x().name(), "static-1.5x");
        assert_eq!(Policy::autopilot_default().name(), "autopilot-1s");
        assert_eq!(Policy::Vpa(VpaConfig::default()).name(), "vpa");
    }

    #[test]
    fn profile_requirements() {
        assert!(!Policy::escra_default().needs_profile());
        assert!(Policy::static_1_5x().needs_profile());
        assert!(Policy::autopilot_default().needs_profile());
    }
}
