//! The policies an experiment can run under.

use escra_baselines::{
    ArcVConfig, ArcVScaler, AutopilotConfig, PeriodicScaler, TinyAutoscaler, TinyAutoscalerConfig,
    VpaConfig,
};
use escra_core::EscraConfig;
use escra_simcore::time::SimDuration;

/// Which allocation policy manages the containers during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Escra: event-driven, per-period allocation (the paper's system).
    Escra(EscraConfig),
    /// Static limits at `factor ×` the profiled peak (common practice).
    Static {
        /// The provisioning factor (paper uses 0.75 / 1.0 / 1.5).
        factor: f64,
    },
    /// The Autopilot recreation (state of the art baseline).
    Autopilot(AutopilotConfig),
    /// A VPA-style threshold autoscaler with restart semantics.
    Vpa(VpaConfig),
    /// A tiny-autoscaler-style window-percentile predictor (per-function
    /// VPA imitation, Zhao & Uta).
    Tiny(TinyAutoscalerConfig),
    /// ARC-V-style phase-aware in-place vertical scaling.
    ArcV(ArcVConfig),
}

impl Policy {
    /// The paper's default Escra configuration.
    pub fn escra_default() -> Self {
        Policy::Escra(EscraConfig::default())
    }

    /// The paper's comparison point: static 1.5× peak.
    pub fn static_1_5x() -> Self {
        Policy::Static { factor: 1.5 }
    }

    /// Autopilot at its best-case 1-second update period.
    pub fn autopilot_default() -> Self {
        Policy::Autopilot(AutopilotConfig::default())
    }

    /// The tiny autoscaler at its default window/percentile/headroom.
    pub fn tiny_default() -> Self {
        Policy::Tiny(TinyAutoscalerConfig::default())
    }

    /// ARC-V at its default phase thresholds and cooldown.
    pub fn arc_v_default() -> Self {
        Policy::ArcV(ArcVConfig::default())
    }

    /// Short name used in reports ("escra", "static-1.5x", ...).
    pub fn name(&self) -> String {
        match self {
            Policy::Escra(_) => "escra".into(),
            Policy::Static { factor } => format!("static-{factor}x"),
            Policy::Autopilot(c) => {
                format!("autopilot-{}s", c.update_period.as_millis() as f64 / 1000.0)
            }
            Policy::Vpa(_) => "vpa".into(),
            Policy::Tiny(_) => "tiny".into(),
            Policy::ArcV(_) => "arc-v".into(),
        }
    }

    /// Whether this policy needs a profiling pre-run to seed limits.
    pub fn needs_profile(&self) -> bool {
        matches!(
            self,
            Policy::Static { .. }
                | Policy::Autopilot(_)
                | Policy::Vpa(_)
                | Policy::Tiny(_)
                | Policy::ArcV(_)
        )
    }
}

/// A baseline scaler the serverless/trace drivers can run *instead of*
/// the Escra controller: the subset of [`Policy`] whose impls manage a
/// dynamic pod population purely through the
/// [`PeriodicScaler`] trait (track/observe/recommend/forget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaselineScalerKind {
    /// The tiny-autoscaler window-percentile predictor.
    Tiny(TinyAutoscalerConfig),
    /// ARC-V phase-aware in-place scaling.
    ArcV(ArcVConfig),
}

impl BaselineScalerKind {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineScalerKind::Tiny(_) => "tiny",
            BaselineScalerKind::ArcV(_) => "arc-v",
        }
    }

    /// Instantiates the scaler.
    pub fn build(&self) -> Box<dyn PeriodicScaler> {
        match self {
            BaselineScalerKind::Tiny(cfg) => Box::new(TinyAutoscaler::new(*cfg)),
            BaselineScalerKind::ArcV(cfg) => Box::new(ArcVScaler::new(*cfg)),
        }
    }

    /// The scaler's recommendation period.
    pub fn update_period(&self) -> SimDuration {
        match self {
            BaselineScalerKind::Tiny(cfg) => cfg.update_period,
            BaselineScalerKind::ArcV(cfg) => cfg.update_period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Policy::escra_default().name(), "escra");
        assert_eq!(Policy::static_1_5x().name(), "static-1.5x");
        assert_eq!(Policy::autopilot_default().name(), "autopilot-1s");
        assert_eq!(Policy::Vpa(VpaConfig::default()).name(), "vpa");
        assert_eq!(Policy::tiny_default().name(), "tiny");
        assert_eq!(Policy::arc_v_default().name(), "arc-v");
    }

    #[test]
    fn profile_requirements() {
        assert!(!Policy::escra_default().needs_profile());
        assert!(Policy::static_1_5x().needs_profile());
        assert!(Policy::autopilot_default().needs_profile());
        assert!(Policy::tiny_default().needs_profile());
        assert!(Policy::arc_v_default().needs_profile());
    }

    #[test]
    fn baseline_scaler_kinds_build() {
        let tiny = BaselineScalerKind::Tiny(TinyAutoscalerConfig::default());
        let arc = BaselineScalerKind::ArcV(ArcVConfig::default());
        assert_eq!(tiny.name(), "tiny");
        assert_eq!(arc.name(), "arc-v");
        assert!(!tiny.update_period().is_zero());
        assert!(!arc.update_period().is_zero());
        let mut s = tiny.build();
        assert!(s.recommend().is_empty(), "no observations yet");
        let mut s = arc.build();
        assert!(s.recommend().is_empty());
    }
}
