//! # escra-harness
//!
//! The experiment runner tying cluster, policies, and workloads into the
//! paper's experiments:
//!
//! * [`queueing`] — fluid FIFO queue draining (throttling → latency);
//! * [`policy`] — the policies under test (Escra / Static / Autopilot /
//!   VPA / tiny autoscaler / ARC-V);
//! * [`microsim`] — the microservice experiment loop (Figs. 4–6,
//!   Table I, §VI-I overheads);
//! * [`serverless_sim`] — the OpenWhisk-style invoker loop
//!   (Figs. 7–9);
//! * [`trace_sim`] — the trace-driven mega-scenario driver (one
//!   Distributed Container per traced app, tens of thousands of apps);
//! * [`tracking`] — the Fig. 2 single-container CPU-tracking experiment;
//! * [`sweep`] — the deterministic parallel sweep runner the benchmark
//!   grids execute on (bit-identical to serial execution).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod microsim;
pub mod policy;
pub mod queueing;
pub mod serverless_sim;
pub mod sweep;
pub mod trace_sim;
pub mod tracking;

pub use microsim::{
    controller_addr, node_addr, profile_run, run, run_with_profiles, MicroSimConfig,
    MicroSimOutput, ReportPlan, SimEngine, SimPhysics, SimStats,
};
pub use policy::{BaselineScalerKind, Policy};
pub use sweep::{default_threads, run_serial, run_sweep, scenario_seed, scenarios, Scenario};
pub use trace_sim::{run_trace_sim, TraceSimConfig, TraceSimOutput};
