//! The serverless experiment simulator (paper §VI-F/G, Figs. 7–9).
//!
//! Models an OpenWhisk-style invoker: user-action pods are created on
//! demand (cold start), reused while warm, and torn down after an idle
//! timeout. Vanilla OpenWhisk gives every pod a static 1 vCPU / 256 MiB;
//! with Escra enabled the whole namespace is treated as one Distributed
//! Container and pods are right-sized continuously.
//!
//! The run is driven by `Round` events on the discrete-event heap
//! ([`escra_simcore::events::EventQueue`]). While the invoker is
//! completely idle — no pods, no pending activations — the driver
//! fast-forwards across the gap to the next arrival instead of
//! executing empty windows (see [`ServerlessConfig::fast_forward_idle`]),
//! so the long inter-iteration gaps of ImageProcess cost almost nothing.

use crate::microsim::{agent_for, apply_limit_updates};
use crate::policy::BaselineScalerKind;
use escra_baselines::{PeriodicScaler, UsageSample};
use escra_cfs::{node::arbitrate, ChargeOutcome, MIB};
use escra_cluster::{AppId, Cluster, ContainerId, ContainerSpec, ContainerState, NodeSpec};
use escra_core::telemetry::{ToController, CPU_STATS_WIRE_BYTES, OOM_EVENT_WIRE_BYTES};
use escra_core::{Action, Agent, AgentReport, Controller, EscraConfig};
use escra_metrics::RunMetrics;
use escra_net::BandwidthAccountant;
use escra_simcore::events::EventQueue;
use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use escra_workloads::serverless::{
    image_process_arrivals, GridSearchJob, GRID_SEARCH_WORKERS, IMAGE_PROCESS_ITERATION,
};
use escra_workloads::{ActionProfile, OpenWhiskConfig};
use std::collections::VecDeque;

/// Which serverless application to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerlessApp {
    /// ImageProcess: one request every 0.8 s for 10 min per iteration,
    /// pods cold-start at each iteration boundary.
    ImageProcess {
        /// Number of iterations (paper: 4).
        iterations: usize,
    },
    /// GridSearch: ~115 worker pods drain 960 tasks.
    GridSearch,
}

/// Configuration of one serverless run.
#[derive(Debug, Clone)]
pub struct ServerlessConfig {
    /// The application.
    pub app: ServerlessApp,
    /// The OpenWhisk pod/pool settings.
    pub openwhisk: OpenWhiskConfig,
    /// `Some` enables Escra management of the namespace.
    pub escra: Option<EscraConfig>,
    /// `Some` runs a [`PeriodicScaler`] baseline (tiny autoscaler or
    /// ARC-V) over the pod population instead — mutually exclusive with
    /// `escra`.
    pub baseline: Option<BaselineScalerKind>,
    /// Scales the Escra global limits (the paper's "80 % fewer
    /// cores/MiB" GridSearch case uses 0.8).
    pub resource_scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker nodes (paper: 3 for ImageProcess, 4 for GridSearch).
    pub worker_nodes: usize,
    /// Cores per worker (paper: 2× 8-core Xeon E5-2650v2 = 16).
    pub node_cores: u32,
    /// Fast-forward across fully idle gaps (default). Skipped windows
    /// replay only their observable residue — the Escra controller tick
    /// and the per-second zero-limit samples — so the output is
    /// bit-identical with the flag off.
    pub fast_forward_idle: bool,
}

impl ServerlessConfig {
    /// Paper-like ImageProcess setup (Υ = 35 per §VI-F when Escra is on).
    pub fn image_process(escra: Option<EscraConfig>, seed: u64) -> Self {
        ServerlessConfig {
            app: ServerlessApp::ImageProcess { iterations: 4 },
            openwhisk: OpenWhiskConfig::default(),
            // Υ = 35 (paper §VI-F): short-lived actions transitioning
            // idle → busy must regain quota fast, so the growth cap is
            // raised along with Υ.
            escra: escra.map(|c| {
                let mut c = c.with_upsilon(35.0);
                c.max_quota_growth_factor = 2.5;
                c
            }),
            baseline: None,
            resource_scale: 1.0,
            seed,
            worker_nodes: 3,
            node_cores: 16,
            fast_forward_idle: true,
        }
    }

    /// Paper-like GridSearch setup (Υ = 20).
    pub fn grid_search(escra: Option<EscraConfig>, seed: u64) -> Self {
        ServerlessConfig {
            app: ServerlessApp::GridSearch,
            openwhisk: OpenWhiskConfig::default(),
            escra,
            baseline: None,
            resource_scale: 1.0,
            seed,
            worker_nodes: 4,
            node_cores: 16,
            fast_forward_idle: true,
        }
    }
}

/// Output of a serverless run.
#[derive(Debug)]
pub struct ServerlessOutput {
    /// Latency (per request for ImageProcess; unused for GridSearch) and
    /// slack/limit series.
    pub metrics: RunMetrics,
    /// GridSearch end-to-end job latency (None for ImageProcess).
    pub job_latency: Option<SimDuration>,
    /// Peak concurrent pods.
    pub peak_pods: usize,
    /// Control-plane bytes (Escra runs only).
    pub network: Option<BandwidthAccountant>,
    /// Windows executed in full.
    pub rounds_executed: u64,
    /// Idle windows fast-forwarded across.
    pub rounds_fast_forwarded: u64,
}

#[derive(Debug, Clone, Copy)]
enum PodState {
    Starting,
    Idle { since: SimTime },
    Exec { arrival: SimTime, remaining_us: f64 },
    Io { arrival: SimTime, until: SimTime },
}

#[derive(Debug)]
struct Pod {
    cid: ContainerId,
    state: PodState,
    /// CPU-time consumed since the last 1 s sample, in µs — the usage
    /// integral a baseline [`PeriodicScaler`] observes.
    sec_usage_us: f64,
}

/// The serverless heap event: a window close. All pod activity is
/// resolved inside windows, so a single `Round` chain (plus the idle
/// fast-forward) is the whole taxonomy here.
#[derive(Debug, Clone, Copy)]
enum SlsEv {
    Round,
}

/// Maximum cores one action can exploit (slightly above 1 vCPU: some
/// phases of real actions are parallel, which is where Escra's modest
/// latency gains come from).
const ACTION_PARALLELISM: f64 = 1.2;

/// Runs one serverless experiment.
// The index loop over `pods` mutates sibling state (cluster, job) while
// reading pod entries, which an iterator borrow cannot express.
#[allow(clippy::needless_range_loop)]
pub fn run_serverless(cfg: &ServerlessConfig, profile: &ActionProfile) -> ServerlessOutput {
    let period = cfg
        .escra
        .as_ref()
        .map(|c| c.report_period)
        .unwrap_or(SimDuration::from_millis(100));
    let period_us = period.as_micros() as f64;
    let app_id = AppId::new(0);
    let mut cluster = Cluster::new(vec![
        NodeSpec {
            cores: cfg.node_cores,
            mem_bytes: 64 * 1024 * MIB,
        };
        cfg.worker_nodes
    ]);
    let mut rng = SimRng::new(cfg.seed).fork(0x736c73); // "sls"
    let mut accountant = BandwidthAccountant::new();
    let mut controller = cfg.escra.as_ref().map(|ecfg| {
        let mut c = Controller::new(ecfg.clone());
        let pool_mem =
            (cfg.openwhisk.container_pool_mem_mib as f64 * cfg.resource_scale) as u64 * MIB;
        let pool_cpu = cfg.openwhisk.implied_global_cpu_cores() * cfg.resource_scale;
        c.register_app(app_id, pool_cpu, pool_mem);
        c
    });
    let mut agents: Vec<Agent> = cluster.nodes().iter().map(|n| Agent::new(n.id())).collect();

    assert!(
        cfg.escra.is_none() || cfg.baseline.is_none(),
        "escra and a baseline scaler are mutually exclusive"
    );
    let mut scaler: Option<Box<dyn PeriodicScaler>> = cfg.baseline.as_ref().map(|k| k.build());
    let scaler_update_secs = cfg
        .baseline
        .as_ref()
        .map(|k| (k.update_period().as_micros() / 1_000_000).max(1))
        .unwrap_or(1);

    let mut pods: Vec<Pod> = Vec::new();
    let mut pending: VecDeque<SimTime> = VecDeque::new(); // activation arrivals
    let mut metrics = RunMetrics::new(if cfg.escra.is_some() {
        "escra-openwhisk".to_string()
    } else if let Some(k) = &cfg.baseline {
        format!("{}-openwhisk", k.name())
    } else {
        "openwhisk".to_string()
    });
    let mut peak_pods = 0usize;
    let mut job = match cfg.app {
        ServerlessApp::GridSearch => Some(GridSearchJob::paper()),
        _ => None,
    };
    let mut job_latency = None;

    // Build the arrival schedule.
    let mut schedule: VecDeque<SimTime> = match cfg.app {
        ServerlessApp::ImageProcess { iterations } => {
            let gap = SimDuration::from_secs(120); // idle gap between iterations
            let mut all = Vec::new();
            for i in 0..iterations {
                let start = SimTime::ZERO + (IMAGE_PROCESS_ITERATION + gap) * i as u64;
                all.extend(image_process_arrivals(start));
            }
            all.into()
        }
        ServerlessApp::GridSearch => VecDeque::new(),
    };
    let end = match cfg.app {
        ServerlessApp::ImageProcess { iterations } => {
            SimTime::ZERO
                + (IMAGE_PROCESS_ITERATION + SimDuration::from_secs(120)) * iterations as u64
        }
        ServerlessApp::GridSearch => SimTime::ZERO + SimDuration::from_secs(1_800),
    };

    // GridSearch: spawn the worker fleet at t=0.
    if matches!(cfg.app, ServerlessApp::GridSearch) {
        for _ in 0..GRID_SEARCH_WORKERS {
            spawn_pod(
                &mut cluster,
                &mut pods,
                cfg,
                app_id,
                &mut controller,
                &mut scaler,
                &mut agents,
                &mut accountant,
                SimTime::ZERO,
            );
        }
    }

    let mut next_second = SimTime::from_secs(1);
    let mut assign_cursor = 0usize;
    let mut rounds_executed = 0u64;
    let mut rounds_fast_forwarded = 0u64;
    // Per-node Exec membership, rebuilt in one pass over the pods per
    // window (the old loop rescanned every pod once per node).
    let mut node_exec: Vec<Vec<usize>> = vec![Vec::new(); cluster.nodes().len()];
    // Final simulated time: the last window boundary reached (or the
    // window start when a finished job breaks the run mid-grid).
    let mut t_final = SimTime::ZERO;

    let mut q: EventQueue<SlsEv> = EventQueue::new();
    q.push(SimTime::ZERO + period, SlsEv::Round);
    while let Some((t_next, SlsEv::Round)) = q.pop() {
        // The window [t, t_next) resolves now, at its close.
        let t = t_next - period;
        rounds_executed += 1;
        cluster.tick(t);

        // Promote started pods, claim work.
        for pod in pods.iter_mut() {
            if matches!(pod.state, PodState::Starting)
                && cluster.container(pod.cid).is_some_and(|c| c.is_running())
            {
                pod.state = PodState::Idle { since: t };
            }
        }

        // New arrivals this period.
        while let Some(&at) = schedule.front() {
            if at < t_next {
                pending.push_back(at);
                schedule.pop_front();
            } else {
                break;
            }
        }

        // Assign pending activations to idle pods, rotating the start of
        // the scan: OpenWhisk spreads activations across its warm pool,
        // which is what keeps every warm pod's static reservation alive.
        let np = pods.len();
        if np > 0 {
            for k in 0..np {
                if pending.is_empty() {
                    break;
                }
                let pi = (assign_cursor + k) % np;
                if let PodState::Idle { .. } = pods[pi].state {
                    let arrival = pending.pop_front().expect("non-empty");
                    pods[pi].state = PodState::Exec {
                        arrival,
                        remaining_us: profile.sample_exec_us(&mut rng),
                    };
                }
            }
            assign_cursor = (assign_cursor + 1) % np;
        }
        let max_pods = (cfg.openwhisk.max_pods() as f64 * cfg.resource_scale) as usize;
        let mut to_spawn = pending.len().min(max_pods.saturating_sub(pods.len()));
        while to_spawn > 0 {
            spawn_pod(
                &mut cluster,
                &mut pods,
                cfg,
                app_id,
                &mut controller,
                &mut scaler,
                &mut agents,
                &mut accountant,
                t,
            );
            to_spawn -= 1;
        }
        // GridSearch: idle workers claim tasks.
        if let Some(job) = job.as_mut() {
            for pod in pods.iter_mut() {
                if let PodState::Idle { .. } = pod.state {
                    if let Some(_task) = job.try_claim() {
                        pod.state = PodState::Exec {
                            arrival: t,
                            remaining_us: profile.sample_exec_us(&mut rng),
                        };
                    }
                }
            }
        }
        peak_pods = peak_pods.max(pods.len());

        // CPU: arbitrate execution among busy pods per node. One pass
        // groups running Exec pods by node (in pod order).
        for (pi, pod) in pods.iter().enumerate() {
            if let PodState::Exec { .. } = pod.state {
                let c = cluster.container(pod.cid).expect("pod container");
                if c.is_running() {
                    node_exec[c.node().as_u64() as usize].push(pi);
                }
            }
        }
        for node in 0..node_exec.len() {
            let capacity = cfg.node_cores as f64 * period_us;
            let mut want = Vec::with_capacity(node_exec[node].len());
            for &pi in &node_exec[node] {
                let c = cluster.container(pods[pi].cid).expect("pod container");
                let remaining = match pods[pi].state {
                    PodState::Exec { remaining_us, .. } => remaining_us,
                    _ => 0.0,
                };
                want.push(
                    remaining
                        .min(ACTION_PARALLELISM * period_us)
                        .min(c.cpu.runtime_remaining_us()),
                );
            }
            let grants = arbitrate(capacity, &want);
            for (k, &pi) in node_exec[node].iter().enumerate() {
                let granted = grants[k];
                let cid = pods[pi].cid;
                if let PodState::Exec {
                    arrival,
                    remaining_us,
                } = pods[pi].state
                {
                    let c = cluster.container_mut(cid).expect("pod container");
                    c.cpu.consume(granted);
                    let left = remaining_us - granted;
                    if left <= 1.0 {
                        // Completed mid-period; interpolate completion.
                        let frac = if granted > 0.0 {
                            (remaining_us / granted).clamp(0.0, 1.0)
                        } else {
                            1.0
                        };
                        let done_at = t + period.mul_f64(frac);
                        pods[pi].state = PodState::Io {
                            arrival,
                            until: done_at + profile.io_wait,
                        };
                    } else {
                        if c.cpu.runtime_remaining_us() <= period_us * 0.01 {
                            c.cpu.mark_throttled();
                        }
                        pods[pi].state = PodState::Exec {
                            arrival,
                            remaining_us: left,
                        };
                    }
                }
            }
        }
        for members in node_exec.iter_mut() {
            members.clear();
        }

        // IO completions.
        for pod in pods.iter_mut() {
            if let PodState::Io { arrival, until } = pod.state {
                if until <= t_next {
                    metrics
                        .latency
                        .record_success(until.duration_since(arrival));
                    if let Some(job) = job.as_mut() {
                        job.complete();
                        if job.is_done() && job_latency.is_none() {
                            job_latency = Some(until.duration_since(SimTime::ZERO));
                        }
                    }
                    pod.state = PodState::Idle { since: until };
                }
            }
        }

        // Memory targets + OOM handling.
        for pi in 0..pods.len() {
            let cid = pods[pi].cid;
            if !cluster.container(cid).is_some_and(|c| c.is_running()) {
                continue;
            }
            let target = match pods[pi].state {
                PodState::Exec { .. } | PodState::Io { .. } => profile.mem_mib * MIB,
                _ => profile.idle_mem_mib * MIB,
            };
            let usage = cluster.container(cid).expect("pod").mem.usage_bytes();
            if target <= usage {
                cluster
                    .container_mut(cid)
                    .expect("pod")
                    .mem
                    .uncharge(usage - target);
                continue;
            }
            let delta = target - usage;
            let outcome = cluster
                .container_mut(cid)
                .expect("pod")
                .mem
                .try_charge(delta);
            if let ChargeOutcome::WouldOom { shortfall_bytes } = outcome {
                if let Some(ctl) = controller.as_mut() {
                    accountant.record(t_next, OOM_EVENT_WIRE_BYTES);
                    let current_limit_bytes =
                        cluster.container(cid).expect("pod").mem.limit_bytes();
                    let actions = ctl.handle(
                        t_next,
                        ToController::OomEvent {
                            container: cid,
                            shortfall_bytes,
                            current_limit_bytes,
                        },
                    );
                    let killed = drive_actions(&mut cluster, &mut agents, ctl, actions, t_next);
                    if !killed {
                        let _ = cluster
                            .container_mut(cid)
                            .expect("pod")
                            .mem
                            .try_charge(delta);
                    } else {
                        if matches!(pods[pi].state, PodState::Exec { .. } | PodState::Io { .. }) {
                            if let Some(job) = job.as_mut() {
                                job.abandon(); // the task goes back to the queue
                            }
                        }
                        pods[pi].state = PodState::Starting;
                    }
                } else {
                    if let Some(s) = scaler.as_mut() {
                        // Tell the baseline so its next recommendation
                        // can raise the memory limit.
                        let limit = cluster.container(cid).expect("pod").mem.limit_bytes();
                        s.on_oom(cid, limit);
                    }
                    cluster.oom_kill(cid, t_next).expect("pod exists");
                    if matches!(pods[pi].state, PodState::Exec { .. } | PodState::Io { .. }) {
                        if let Some(job) = job.as_mut() {
                            job.abandon();
                        }
                    }
                    pods[pi].state = PodState::Starting;
                }
            }
        }

        // Telemetry + reclamation (Escra) / usage integration (baseline).
        for pod in pods.iter_mut() {
            let c = cluster.container_mut(pod.cid).expect("pod");
            let stats = c.cpu.end_period();
            pod.sec_usage_us += stats.usage_us;
            if let Some(ctl) = controller.as_mut() {
                if matches!(
                    cluster.container(pod.cid).expect("pod").state(),
                    ContainerState::Running
                ) {
                    accountant.record(t_next, CPU_STATS_WIRE_BYTES);
                    let actions = ctl.handle(
                        t_next,
                        ToController::CpuStats {
                            container: pod.cid,
                            stats,
                        },
                    );
                    drive_actions(&mut cluster, &mut agents, ctl, actions, t_next);
                }
            }
        }
        if let Some(ctl) = controller.as_mut() {
            let actions = ctl.tick(t_next);
            drive_actions(&mut cluster, &mut agents, ctl, actions, t_next);
        }

        // Idle-timeout teardown.
        let idle_timeout = cfg.openwhisk.idle_timeout;
        let mut removed = Vec::new();
        for (pi, pod) in pods.iter().enumerate() {
            if let PodState::Idle { since } = pod.state {
                if t_next.duration_since(since) >= idle_timeout {
                    removed.push(pi);
                }
            }
        }
        for pi in removed.into_iter().rev() {
            let cid = pods[pi].cid;
            let _ = cluster.terminate(cid, t_next);
            if let Some(ctl) = controller.as_mut() {
                let _ = ctl.deregister_container(cid);
            }
            if let Some(s) = scaler.as_mut() {
                s.forget(cid);
            }
            // Drop the agents' high-water seq entries with the pod: a
            // reused ContainerId (e.g. after a controller restart or
            // under a different shard's seq space) must start fresh
            // instead of inheriting the dead pod's stale-discard mark.
            for agent in agents.iter_mut() {
                agent.forget_container(cid);
            }
            pods.swap_remove(pi);
        }

        // Per-second aggregate limits + slack sampling (and, in the
        // baseline-scaler mode, the observe → recommend → apply loop).
        while next_second <= t_next {
            let mut agg_cpu = 0.0;
            let mut agg_mem = 0.0;
            for pod in pods.iter_mut() {
                let c = cluster.container(pod.cid).expect("pod");
                agg_cpu += c.cpu.quota_cores();
                agg_mem += c.mem.limit_bytes() as f64 / MIB as f64;
                metrics.slack.record(
                    (c.cpu.quota_cores()).max(0.0),
                    c.mem.limit_bytes().saturating_sub(c.mem.usage_bytes()) as f64 / MIB as f64,
                );
                if let Some(s) = scaler.as_mut() {
                    s.observe(
                        pod.cid,
                        UsageSample {
                            cpu_cores: pod.sec_usage_us / 1e6,
                            mem_bytes: c.mem.usage_bytes(),
                        },
                    );
                    pod.sec_usage_us = 0.0;
                }
            }
            metrics.record_limits(next_second, agg_cpu, agg_mem);
            if let Some(s) = scaler.as_mut() {
                // Cadence keyed to absolute seconds, so idle
                // fast-forward (which skips this loop) cannot drift the
                // recommendation phase.
                let sec = next_second.duration_since(SimTime::ZERO).as_micros() / 1_000_000;
                if sec.is_multiple_of(scaler_update_secs) {
                    let updates = s.recommend();
                    apply_limit_updates(&mut cluster, &updates, false, next_second);
                }
            }
            next_second += SimDuration::from_secs(1);
        }

        if job.as_ref().is_some_and(|j| j.is_done()) {
            t_final = t;
            break;
        }
        t_final = t_next;

        // Schedule the next window — fast-forwarding across fully idle
        // gaps. A skipped window's only observable residue is the
        // controller tick (its reclamation sweep keeps internal timing
        // state even with no containers) and the per-second zero-limit
        // samples; both are replayed so a fast-forwarded run stays
        // bit-identical to one that executes every empty window.
        let mut next_round = t_next + period;
        if cfg.fast_forward_idle && pods.is_empty() && pending.is_empty() {
            let horizon = schedule.front().copied().unwrap_or(end);
            while next_round <= horizon && next_round - period < end {
                if let Some(ctl) = controller.as_mut() {
                    let actions = ctl.tick(next_round);
                    drive_actions(&mut cluster, &mut agents, ctl, actions, next_round);
                }
                while next_second <= next_round {
                    metrics.record_limits(next_second, 0.0, 0.0);
                    next_second += SimDuration::from_secs(1);
                }
                rounds_fast_forwarded += 1;
                t_final = next_round;
                next_round += period;
            }
        }
        if next_round - period < end {
            q.push(next_round, SlsEv::Round);
        }
    }

    metrics.duration = t_final.duration_since(SimTime::ZERO);
    metrics.oom_kills = cluster.total_oom_kills();
    ServerlessOutput {
        metrics,
        job_latency,
        peak_pods,
        network: controller.map(|_| accountant),
        rounds_executed,
        rounds_fast_forwarded,
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_pod(
    cluster: &mut Cluster,
    pods: &mut Vec<Pod>,
    cfg: &ServerlessConfig,
    app_id: AppId,
    controller: &mut Option<Controller>,
    scaler: &mut Option<Box<dyn PeriodicScaler>>,
    agents: &mut [Agent],
    accountant: &mut BandwidthAccountant,
    now: SimTime,
) {
    let spec = ContainerSpec::new(format!("action-{}", pods.len()), app_id)
        .with_cpu_limit(cfg.openwhisk.pod_cpu_cores)
        .with_mem_limit(cfg.openwhisk.pod_mem_mib * MIB)
        .with_base_mem(16 * MIB)
        .with_restart_delay(cfg.openwhisk.cold_start);
    let cid = cluster.deploy(spec, now).expect("pool has nodes");
    if let Some(ctl) = controller.as_mut() {
        let node = cluster.container(cid).expect("pod").node();
        if let Ok(actions) = ctl.register_container(
            cid,
            app_id,
            node,
            cfg.openwhisk.pod_cpu_cores,
            cfg.openwhisk.pod_mem_mib * MIB,
        ) {
            accountant.record(now, escra_core::telemetry::REGISTER_WIRE_BYTES);
            drive_actions(cluster, agents, ctl, actions, now);
        }
    }
    if let Some(s) = scaler.as_mut() {
        s.track(
            cid,
            cfg.openwhisk.pod_cpu_cores,
            cfg.openwhisk.pod_mem_mib * MIB,
        );
    }
    pods.push(Pod {
        cid,
        state: PodState::Starting,
        sec_usage_us: 0.0,
    });
}

/// Applies controller actions, feeding reclamation reports back; returns
/// whether any container was killed. Shared with the trace-driven
/// mega-scenario driver ([`crate::trace_sim`]).
pub(crate) fn drive_actions(
    cluster: &mut Cluster,
    agents: &mut [Agent],
    controller: &mut Controller,
    actions: Vec<Action>,
    now: SimTime,
) -> bool {
    let mut killed = false;
    let mut pending = actions;
    let mut depth = 0;
    while !pending.is_empty() && depth < 4 {
        depth += 1;
        let mut entries = Vec::new();
        for action in &pending {
            match action {
                Action::KillContainer(cid) => {
                    let _ = cluster.oom_kill(*cid, now);
                    killed = true;
                }
                Action::Agent { node, cmd } => {
                    if let Some(agent) = agent_for(agents, *node) {
                        if let AgentReport::Reclaimed(mut e) = agent.apply(cluster, *cmd) {
                            entries.append(&mut e);
                        }
                    }
                }
            }
        }
        pending = if entries.is_empty() {
            Vec::new()
        } else {
            controller.on_reclaim_report(now, &entries)
        };
    }
    killed
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_workloads::serverless::image_process;

    fn short_image_process(escra: bool) -> ServerlessOutput {
        let cfg = ServerlessConfig {
            app: ServerlessApp::ImageProcess { iterations: 1 },
            ..ServerlessConfig::image_process(escra.then(EscraConfig::default), 7)
        };
        run_serverless(&cfg, &image_process())
    }

    #[test]
    fn image_process_completes_most_requests() {
        let out = short_image_process(false);
        // One iteration = 750 requests.
        assert!(
            out.metrics.latency.successes() > 700,
            "successes {}",
            out.metrics.latency.successes()
        );
        assert!(out.peak_pods >= 2);
        // Latencies should sit in the couple-of-seconds range.
        let mean = out.metrics.latency.mean_ms();
        assert!(mean > 1_000.0 && mean < 6_000.0, "mean {mean}");
    }

    #[test]
    fn escra_reduces_aggregate_limits() {
        let vanilla = short_image_process(false);
        let escra = short_image_process(true);
        let v_cpu = vanilla.metrics.cpu_limit_series.mean();
        let e_cpu = escra.metrics.cpu_limit_series.mean();
        assert!(
            e_cpu < v_cpu,
            "escra mean cpu limit {e_cpu} should undercut vanilla {v_cpu}"
        );
        let v_mem = vanilla.metrics.mem_limit_series.mean();
        let e_mem = escra.metrics.mem_limit_series.mean();
        assert!(e_mem < v_mem, "escra mem {e_mem} vs vanilla {v_mem}");
        // ...while keeping latency comparable (within 25%).
        let v_lat = vanilla.metrics.latency.mean_ms();
        let e_lat = escra.metrics.latency.mean_ms();
        assert!(
            e_lat < v_lat * 1.25,
            "escra latency {e_lat} vs vanilla {v_lat}"
        );
    }

    #[test]
    fn baseline_scalers_run_and_trim_reservations() {
        use escra_baselines::{ArcVConfig, TinyAutoscalerConfig};
        let vanilla = short_image_process(false);
        for kind in [
            BaselineScalerKind::Tiny(TinyAutoscalerConfig::default()),
            BaselineScalerKind::ArcV(ArcVConfig::default()),
        ] {
            let cfg = ServerlessConfig {
                app: ServerlessApp::ImageProcess { iterations: 1 },
                baseline: Some(kind),
                ..ServerlessConfig::image_process(None, 7)
            };
            let out = run_serverless(&cfg, &image_process());
            assert_eq!(
                out.metrics.policy,
                format!("{}-openwhisk", kind.name()),
                "policy label"
            );
            assert!(
                out.metrics.latency.successes() > 600,
                "{}: successes {}",
                kind.name(),
                out.metrics.latency.successes()
            );
            // Both scalers right-size memory below the static 256 MiB
            // pods (actions use ~1.2 cores, so CPU limits legitimately
            // sit near or above the static 1 vCPU — the win is memory).
            let base = vanilla.metrics.mem_limit_series.mean();
            let ours = out.metrics.mem_limit_series.mean();
            assert!(
                ours < base,
                "{}: mean mem limit {ours} MiB should undercut vanilla {base} MiB",
                kind.name()
            );
            let cpu = out.metrics.cpu_limit_series.mean();
            let cpu_base = vanilla.metrics.cpu_limit_series.mean();
            assert!(
                cpu > 0.0 && cpu < cpu_base * 2.0,
                "{}: mean cpu limit {cpu} out of band (vanilla {cpu_base})",
                kind.name()
            );
        }
    }

    #[test]
    fn grid_search_finishes_all_tasks() {
        let cfg = ServerlessConfig::grid_search(None, 3);
        let out = run_serverless(&cfg, &escra_workloads::serverless::grid_search_task());
        let latency = out.job_latency.expect("job finishes");
        // Paper reports ~300s; accept a generous band for the model.
        let secs = latency.as_secs_f64();
        assert!(secs > 150.0 && secs < 700.0, "job latency {secs}s");
        assert!(out.peak_pods >= GRID_SEARCH_WORKERS);
    }

    /// Everything observable about a run except the driver counters.
    fn digest(out: &ServerlessOutput) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            out.metrics, out.job_latency, out.peak_pods, out.network
        )
    }

    #[test]
    fn warm_pods_block_fast_forward_and_output_stays_identical() {
        // Fast-forward may only engage when the invoker is *fully* idle:
        // a warm pod's idle-timeout is a pending event the skip must not
        // jump over. With the timeout stretched past the inter-iteration
        // gap, pods stay warm across the gap, so a run with the flag on
        // must skip nothing — and match the flag-off run bit for bit.
        let mut slow = ServerlessConfig {
            app: ServerlessApp::ImageProcess { iterations: 2 },
            ..ServerlessConfig::image_process(None, 7)
        };
        slow.openwhisk.idle_timeout = SimDuration::from_secs(400); // > 120 s gap
        slow.fast_forward_idle = false;
        let mut fast = slow.clone();
        fast.fast_forward_idle = true;
        let a = run_serverless(&slow, &image_process());
        let b = run_serverless(&fast, &image_process());
        assert_eq!(digest(&a), digest(&b));
        assert_eq!(
            b.rounds_fast_forwarded, 0,
            "warm pods must pin every window"
        );
        assert_eq!(a.rounds_executed, b.rounds_executed);
    }

    #[test]
    fn fast_forward_is_bit_identical_and_skips_idle_windows() {
        for escra in [false, true] {
            let mut slow = ServerlessConfig {
                app: ServerlessApp::ImageProcess { iterations: 1 },
                ..ServerlessConfig::image_process(escra.then(EscraConfig::default), 7)
            };
            slow.fast_forward_idle = false;
            let mut fast = slow.clone();
            fast.fast_forward_idle = true;
            let a = run_serverless(&slow, &image_process());
            let b = run_serverless(&fast, &image_process());
            assert_eq!(
                digest(&a),
                digest(&b),
                "fast-forward divergence (escra={escra})"
            );
            assert_eq!(a.rounds_fast_forwarded, 0);
            assert!(
                b.rounds_fast_forwarded > 0,
                "the post-iteration idle tail should fast-forward"
            );
            assert_eq!(
                a.rounds_executed,
                b.rounds_executed + b.rounds_fast_forwarded
            );
        }
    }
}
