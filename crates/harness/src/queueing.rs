//! Fluid FIFO queue processing.
//!
//! Each container is modelled as a FIFO queue server whose service rate
//! during a CFS period is `grant / period` cores — the CPU the CFS
//! bandwidth controller and node arbitration actually gave it. Requests
//! drain in order with sub-period completion times, so throttling turns
//! directly into queueing delay and tail latency, the paper's central
//! performance effect.

use escra_simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One request-stage waiting in a container's queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageJob {
    /// Index of the request in the run's request table.
    pub request: usize,
    /// Remaining CPU work for this stage, in core-microseconds.
    pub remaining_us: f64,
    /// When the stage arrived at this container.
    pub queued_at: SimTime,
}

/// Result of draining one container for one period.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrainOutcome {
    /// CPU actually consumed, in core-microseconds (≤ the grant).
    pub consumed_us: f64,
    /// `(request, completion_time)` for stages that finished.
    pub completions: Vec<(usize, SimTime)>,
}

/// Drains `queue` in FIFO order over `[period_start, period_end)`.
///
/// The container executes at `rate_cores` (its thread-pool speed) until
/// it has consumed `budget_us` core-microseconds — the CFS grant — and
/// is then throttled for the rest of the period, exactly like CFS
/// bandwidth control: a tight quota does not slow individual requests,
/// it caps how much total work a period may do.
///
/// Jobs whose `queued_at` lies inside the period begin no earlier than
/// their arrival. Unfinished work stays queued for the next period.
/// The consumed work never exceeds `budget_us`.
pub fn drain_fifo(
    queue: &mut VecDeque<StageJob>,
    period_start: SimTime,
    period_end: SimTime,
    rate_cores: f64,
    budget_us: f64,
) -> DrainOutcome {
    let mut out = DrainOutcome::default();
    let period_us = (period_end - period_start).as_micros() as f64;
    if period_us <= 0.0 || budget_us <= 0.0 || rate_cores <= 0.0 {
        return out;
    }
    let mut budget = budget_us;
    let mut cursor = period_start;
    while let Some(front) = queue.front_mut() {
        let start = if front.queued_at > cursor {
            front.queued_at
        } else {
            cursor
        };
        if start >= period_end {
            break;
        }
        let avail_us = (period_end - start).as_micros() as f64;
        // Work doable before the period ends or the budget runs out.
        let doable = (avail_us * rate_cores).min(budget);
        if front.remaining_us <= doable {
            let need_time_us = front.remaining_us / rate_cores;
            let completion = start + SimDuration::from_micros(need_time_us.ceil() as u64);
            out.consumed_us += front.remaining_us;
            budget -= front.remaining_us;
            out.completions
                .push((front.request, completion.min(period_end)));
            cursor = completion;
            queue.pop_front();
            if budget <= 1e-9 {
                break; // throttled at the instant the budget ran out
            }
        } else {
            front.remaining_us -= doable;
            out.consumed_us += doable;
            break;
        }
    }
    debug_assert!(out.consumed_us <= budget_us + 1e-6);
    out
}

/// Removes every job whose request index satisfies `expired`, returning
/// the dropped request indices (timeout culling).
pub fn cull_queue<F: Fn(usize) -> bool>(queue: &mut VecDeque<StageJob>, expired: F) -> Vec<usize> {
    let mut dropped = Vec::new();
    queue.retain(|j| {
        if expired(j.request) {
            dropped.push(j.request);
            false
        } else {
            true
        }
    });
    dropped
}

/// Total queued work in core-microseconds.
pub fn backlog_us(queue: &VecDeque<StageJob>) -> f64 {
    queue.iter().map(|j| j.remaining_us).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(request: usize, remaining_us: f64, queued_ms: u64) -> StageJob {
        StageJob {
            request,
            remaining_us,
            queued_at: SimTime::from_millis(queued_ms),
        }
    }

    fn period() -> (SimTime, SimTime) {
        (SimTime::from_millis(100), SimTime::from_millis(200))
    }

    #[test]
    fn completes_within_grant() {
        let (s, e) = period();
        // 1 core rate, two 30ms jobs queued before the period.
        let mut q: VecDeque<StageJob> = [job(0, 30_000.0, 0), job(1, 30_000.0, 0)].into();
        let out = drain_fifo(&mut q, s, e, 1.0, 100_000.0);
        assert_eq!(out.completions.len(), 2);
        assert_eq!(out.completions[0].1, SimTime::from_millis(130));
        assert_eq!(out.completions[1].1, SimTime::from_millis(160));
        assert!((out.consumed_us - 60_000.0).abs() < 1e-6);
        assert!(q.is_empty());
    }

    #[test]
    fn partial_progress_carries_over() {
        let (s, e) = period();
        let mut q: VecDeque<StageJob> = [job(0, 250_000.0, 0)].into();
        let out = drain_fifo(&mut q, s, e, 1.0, 100_000.0);
        assert!(out.completions.is_empty());
        assert!((out.consumed_us - 100_000.0).abs() < 1e-6);
        assert!((q[0].remaining_us - 150_000.0).abs() < 1e-6);
    }

    #[test]
    fn mid_period_arrival_waits_for_its_time() {
        let (s, e) = period();
        // Arrives at 150ms; 25ms of work at 1 core -> completes at 175ms.
        let mut q: VecDeque<StageJob> = [job(0, 25_000.0, 150)].into();
        let out = drain_fifo(&mut q, s, e, 1.0, 100_000.0);
        assert_eq!(out.completions, vec![(0, SimTime::from_millis(175))]);
        assert!((out.consumed_us - 25_000.0).abs() < 1e-6);
    }

    #[test]
    fn arrival_after_period_is_untouched() {
        let (s, e) = period();
        let mut q: VecDeque<StageJob> = [job(0, 10_000.0, 500)].into();
        let out = drain_fifo(&mut q, s, e, 1.0, 100_000.0);
        assert!(out.completions.is_empty());
        assert_eq!(out.consumed_us, 0.0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn zero_grant_processes_nothing() {
        let (s, e) = period();
        let mut q: VecDeque<StageJob> = [job(0, 10_000.0, 0)].into();
        let out = drain_fifo(&mut q, s, e, 1.0, 0.0);
        assert_eq!(out, DrainOutcome::default());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slower_rate_stretches_completion() {
        let (s, e) = period();
        // 0.5 cores: 30ms of work takes 60ms of wall time.
        let mut q: VecDeque<StageJob> = [job(0, 30_000.0, 100)].into();
        let out = drain_fifo(&mut q, s, e, 0.5, 50_000.0);
        assert_eq!(out.completions[0].1, SimTime::from_millis(160));
    }

    #[test]
    fn conservation_under_random_load() {
        let mut rng = escra_simcore::rng::SimRng::new(3);
        for _ in 0..200 {
            let mut q: VecDeque<StageJob> = (0..10)
                .map(|i| job(i, rng.uniform(1_000.0, 80_000.0), 100 + rng.next_below(100)))
                .collect();
            let before = backlog_us(&q);
            let grant = rng.uniform(0.0, 200_000.0);
            let (s, e) = period();
            let out = drain_fifo(&mut q, s, e, 2.0, grant);
            let after = backlog_us(&q);
            assert!(out.consumed_us <= grant + 1e-6);
            assert!((before - after - out.consumed_us).abs() < 1e-3);
            // Completions are time-ordered within the period.
            let mut last = s;
            for (_, t) in &out.completions {
                assert!(*t >= last && *t <= e);
                last = *t;
            }
        }
    }

    #[test]
    fn budget_exhaustion_throttles_mid_period() {
        // 8-core burst speed, but only 20ms of quota budget: the first
        // two 10ms jobs finish fast, the third is throttled untouched.
        let (s, e) = period();
        let mut q: VecDeque<StageJob> = [
            job(0, 10_000.0, 0),
            job(1, 10_000.0, 0),
            job(2, 10_000.0, 0),
        ]
        .into();
        let out = drain_fifo(&mut q, s, e, 8.0, 20_000.0);
        assert_eq!(out.completions.len(), 2);
        assert!(out.completions[1].1 <= SimTime::from_millis(103));
        assert!((out.consumed_us - 20_000.0).abs() < 1e-6);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cull_drops_expired() {
        let mut q: VecDeque<StageJob> = [job(0, 1.0, 0), job(1, 1.0, 0), job(2, 1.0, 0)].into();
        let dropped = cull_queue(&mut q, |r| r == 1);
        assert_eq!(dropped, vec![1]);
        assert_eq!(q.len(), 2);
    }
}
