//! The microservice experiment simulator.
//!
//! Drives a modelled application (`escra_workloads::microservice`) on a
//! simulated cluster under one of the [`Policy`] variants, period by
//! period, and produces the paper's metrics:
//!
//! 1. generate request arrivals for the period;
//! 2. arbitrate CPU per node (max–min fair, quota-capped);
//! 3. drain container queues in DAG order (fluid FIFO — throttling
//!    becomes queueing delay);
//! 4. account CFS usage, mark quota-bound throttles;
//! 5. update memory demand, trapping or suffering OOMs per policy;
//! 6. emit per-period telemetry to the Escra controller, or per-second
//!    samples to the baseline scalers;
//! 7. sample slack and aggregate limits every second.

// Index-based loops are deliberate here: most iterate one struct field
// while mutating siblings, which iterators cannot express without
// splitting borrows.
#![allow(clippy::needless_range_loop)]

use crate::policy::Policy;
use crate::queueing::{backlog_us, cull_queue, drain_fifo, StageJob};
use escra_baselines::{
    AutopilotScaler, ContainerProfile, LimitUpdate, PeriodicScaler, StaticPolicy, UsageSample,
    VpaScaler,
};
use escra_cfs::{node::arbitrate, ChargeOutcome, MIB};
use escra_cluster::AppId;
use escra_cluster::{Cluster, ContainerId, ContainerSpec, NodeId, NodeSpec};
use escra_core::telemetry::{ToController, LIMIT_UPDATE_WIRE_BYTES, RECLAIM_RPC_WIRE_BYTES};
use escra_core::{
    deploy_app, Action, Agent, AgentReport, AppConfig, Controller, CpuStatsEntry, ReclaimEntry,
    ToAgent,
};
use escra_metrics::RunMetrics;
use escra_net::{Addr, BandwidthAccountant, FaultDecision, FaultInjector, FaultPlan, FaultStats};
use escra_simcore::events::EventQueue;
use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use escra_workloads::{MicroserviceApp, RequestGenerator, WorkloadKind};
use std::collections::VecDeque;

/// Configuration of one microservice experiment run.
#[derive(Debug, Clone)]
pub struct MicroSimConfig {
    /// The application model.
    pub app: MicroserviceApp,
    /// The request workload.
    pub workload: WorkloadKind,
    /// The allocation policy under test.
    pub policy: Policy,
    /// Master seed; equal seeds give identical runs.
    pub seed: u64,
    /// Measured duration (after warm-up).
    pub duration: SimDuration,
    /// Number of worker nodes (paper: 3).
    pub worker_nodes: usize,
    /// Cores per worker node (paper: 20).
    pub node_cores: u32,
    /// End-to-end request timeout; expired requests count as failures.
    pub request_timeout: SimDuration,
    /// Length of the profiling pre-run used by baseline policies.
    pub profile_duration: SimDuration,
    /// Faults injected into the Escra control plane (loss, duplication,
    /// delay spikes, partitions). [`FaultPlan::none`] — the default —
    /// reproduces the faultless run bit for bit.
    pub faults: FaultPlan,
}

impl MicroSimConfig {
    /// A paper-like setup for `app` × `workload` × `policy`.
    pub fn new(app: MicroserviceApp, workload: WorkloadKind, policy: Policy, seed: u64) -> Self {
        MicroSimConfig {
            app,
            workload,
            policy,
            seed,
            duration: SimDuration::from_secs(60),
            worker_nodes: 3,
            node_cores: 20,
            request_timeout: SimDuration::from_secs(10),
            profile_duration: SimDuration::from_secs(20),
            faults: FaultPlan::none(),
        }
    }

    /// Sets the measured duration (builder style).
    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the control-plane fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

/// Well-known control-plane address of the Controller.
pub fn controller_addr() -> Addr {
    Addr::from_raw(0)
}

/// Well-known control-plane address of the Agent on `node`.
///
/// Telemetry and OOM events from a container travel over its node's
/// link, so a partition of `node_addr(n) ↔ controller_addr()` cuts off
/// everything hosted on `n`.
pub fn node_addr(node: NodeId) -> Addr {
    Addr::from_raw(1 + node.as_u64())
}

/// A message in flight on the Escra control plane.
#[derive(Debug, Clone)]
enum Envelope {
    /// Node → Controller (telemetry, OOM events, limit acks).
    ToCtl(ToController),
    /// Controller → Agent command.
    ToNode(NodeId, ToAgent),
    /// Agent → Controller reclamation report (the gRPC response of the
    /// reclaim RPC; its bytes are priced into the request pair).
    Report(Vec<ReclaimEntry>),
}

impl Envelope {
    fn wire_bytes(&self) -> u64 {
        match self {
            Envelope::ToCtl(msg) => msg.wire_bytes(),
            Envelope::ToNode(_, cmd) => cmd.wire_bytes(),
            Envelope::Report(_) => 0,
        }
    }
}

/// The simulated control-plane fabric between Agents and the Controller.
///
/// Every runtime message passes through a [`FaultInjector`]; with
/// [`FaultPlan::none`] the injector draws no randomness and every message
/// is delivered synchronously, which keeps faultless runs bit-identical
/// to the pre-fault-layer simulator.
struct ControlPlane {
    injector: FaultInjector,
    /// Messages hit by a delay spike, delivered once due.
    delayed: EventQueue<Envelope>,
    /// Messages ready for delivery now, in FIFO order.
    ready: VecDeque<Envelope>,
}

impl ControlPlane {
    fn new(plan: FaultPlan, seed: u64) -> Self {
        ControlPlane {
            injector: FaultInjector::new(plan, seed),
            delayed: EventQueue::new(),
            ready: VecDeque::new(),
        }
    }

    /// Puts `env` on the wire. Bytes are charged at send time (they
    /// leave the sender even if the fabric then drops the message).
    fn send(
        &mut self,
        now: SimTime,
        from: Addr,
        to: Addr,
        env: Envelope,
        accountant: &mut BandwidthAccountant,
    ) {
        accountant.record(now, env.wire_bytes());
        match self.injector.decide(now, from, to) {
            FaultDecision::Drop => {}
            FaultDecision::Deliver {
                copies,
                extra_delay,
            } => {
                for _ in 0..copies {
                    if extra_delay.is_zero() {
                        self.ready.push_back(env.clone());
                    } else {
                        self.delayed.push(now + extra_delay, env.clone());
                    }
                }
            }
        }
    }
}

/// Warm-up before measurement starts: containers cold-start for 2 s and
/// then run their post-start burst for [`STARTUP_LEN`]; like the paper's
/// wrk2 measurements, the workload is measured against a settled
/// deployment, not container boot.
const WARMUP: SimDuration = SimDuration::from_secs(10);
/// Length of a container's post-start warm-up burst (JIT, cache priming).
const STARTUP_LEN: SimDuration = SimDuration::from_secs(5);
/// Sentinel request index marking background (GC-style) work.
const BG_REQUEST: usize = usize::MAX;
/// Cache fill constant per busy period.
const CACHE_FILL: f64 = 0.03;
/// Cache decay per idle period.
const CACHE_DECAY: f64 = 0.995;

#[derive(Debug, Clone, Copy)]
struct ReqState {
    class: usize,
    arrival: SimTime,
    finished: bool,
}

/// What drives allocation during the run.
#[allow(clippy::large_enum_variant)] // one Mode per run; size is irrelevant
enum Mode {
    /// Profiling pre-run: effectively uncapped, record peaks.
    Profile,
    /// Escra event loop.
    Escra {
        controller: Controller,
        agents: Vec<Agent>,
        accountant: BandwidthAccountant,
        net: ControlPlane,
    },
    /// Static limits (nothing to do at runtime).
    Static,
    /// A periodic scaler (Autopilot or VPA).
    Periodic {
        scaler: Box<dyn PeriodicScaler>,
        update_every_secs: u64,
        restart_on_update: bool,
    },
}

impl std::fmt::Debug for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Profile => write!(f, "Profile"),
            Mode::Escra { .. } => write!(f, "Escra"),
            Mode::Static => write!(f, "Static"),
            Mode::Periodic { .. } => write!(f, "Periodic"),
        }
    }
}

/// Output of a run: the paper metrics plus the control-plane bandwidth
/// accountant (for the §VI-I network-overhead analysis) and the
/// controller stats when the policy was Escra.
#[derive(Debug)]
pub struct MicroSimOutput {
    /// The measured metrics.
    pub metrics: RunMetrics,
    /// Control-plane bytes (Escra runs only).
    pub network: Option<BandwidthAccountant>,
    /// Controller counters (Escra runs only).
    pub controller_stats: Option<escra_core::ControllerStats>,
    /// What the fault injector actually did (Escra runs only; all-zero
    /// under [`FaultPlan::none`]).
    pub fault_stats: Option<FaultStats>,
    /// Per-container profiled peaks (profiling runs only).
    pub profiles: Vec<ContainerProfile>,
}

/// Runs one experiment: optional profiling pre-run (for baselines), then
/// the measured run under `cfg.policy`.
pub fn run(cfg: &MicroSimConfig) -> MicroSimOutput {
    let profiles = if cfg.policy.needs_profile() {
        profile_run(cfg)
    } else {
        Vec::new()
    };
    run_with_profiles(cfg, &profiles)
}

/// Runs the measured phase with pre-computed profiles (exposed so sweeps
/// can reuse one profiling run across policies).
pub fn run_with_profiles(cfg: &MicroSimConfig, profiles: &[ContainerProfile]) -> MicroSimOutput {
    let mut sim = Sim::new(cfg, false, profiles);
    sim.run()
}

fn run_mode(cfg: &MicroSimConfig, profile: bool) -> MicroSimOutput {
    let mut sim = Sim::new(cfg, profile, &[]);
    sim.run()
}

/// Runs only the profiling pre-run, returning per-container peaks in
/// deployment order.
///
/// Profiling drives the application with a **steady stream at the
/// production workload's average rate** and aggregates usage per second
/// — the way operators actually size deployments. Transient peaks
/// (bursts, trace spikes, Poisson clumping) are therefore systematically
/// underestimated, which is the paper's explanation for why even 1.5×
/// static provisioning loses to Escra (§VI-C).
pub fn profile_run(cfg: &MicroSimConfig) -> Vec<ContainerProfile> {
    // The profiling request mix also differs from production: load
    // generators replay a canned scenario that over-exercises the common
    // path and under-exercises the rarer ones, so the tiers serving rare
    // classes get systematically under-provisioned limits. This is the
    // heterogeneous profiling error behind the paper's observation that
    // even 1.5x static provisioning throttles in production (SVI-C).
    let mut app = cfg.app.clone();
    let last = app.classes.len().saturating_sub(1);
    for (i, class) in app.classes.iter_mut().enumerate() {
        class.weight *= if i == 0 {
            1.4
        } else if i == last {
            0.45
        } else {
            0.85
        };
    }
    let profile_cfg = MicroSimConfig {
        duration: cfg.profile_duration,
        seed: cfg.seed ^ 0x70726f66, // "prof": a different sample path
        // "You never know what the workload rate is truly going to be"
        // (SVI-C): the deployment was sized at the rate seen during
        // profiling, and production runs hotter than that estimate.
        workload: WorkloadKind::Fixed {
            rps: cfg.workload.mean_rps() * 0.7,
        },
        app,
        ..cfg.clone()
    };
    run_mode(&profile_cfg, true).profiles
}

struct Sim<'a> {
    cfg: &'a MicroSimConfig,
    cluster: Cluster,
    containers: Vec<ContainerId>,
    tier_of: Vec<usize>,
    tier_members: Vec<Vec<usize>>,
    rr: Vec<usize>,
    queues: Vec<VecDeque<StageJob>>,
    requests: Vec<ReqState>,
    cache_bytes: Vec<f64>,
    /// End of each container's post-start warm-up burst.
    warm_until: Vec<SimTime>,
    gen: RequestGenerator,
    rng: SimRng,
    rng_bg: SimRng,
    mode: Mode,
    period: SimDuration,
    metrics: RunMetrics,
    // per-second accumulators
    usage_sec_us: Vec<f64>,
    quota_sec_us: Vec<f64>,
    peak_cpu: Vec<f64>,
    peak_mem: Vec<u64>,
    // 5-second profiling buckets: monitoring tools aggregate over
    // "seconds to minutes", smoothing spikes (§VI-C).
    cpu_bucket_us: Vec<f64>,
    bucket_secs: u64,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a MicroSimConfig, profiling: bool, profiles: &[ContainerProfile]) -> Self {
        let app = &cfg.app;
        let n = app.container_count();
        let nodes = vec![
            NodeSpec {
                cores: cfg.node_cores,
                mem_bytes: 192 * 1024 * MIB,
            };
            cfg.worker_nodes
        ];
        let mut cluster = Cluster::new(nodes);
        let app_id = AppId::new(0);

        // Build specs in tier order.
        let mut specs = Vec::with_capacity(n);
        let mut tier_of = Vec::with_capacity(n);
        let mut tier_members = vec![Vec::new(); app.tiers.len()];
        for (ti, tier) in app.tiers.iter().enumerate() {
            for r in 0..tier.replicas {
                tier_members[ti].push(specs.len());
                tier_of.push(ti);
                specs.push(
                    ContainerSpec::new(format!("{}-{r}", tier.name), app_id)
                        .with_base_mem(tier.mem_base_mib * MIB)
                        .with_restart_delay(SimDuration::from_secs(2)),
                );
            }
        }

        let period;
        let mode;
        let mut containers = Vec::with_capacity(n);

        if profiling {
            period = SimDuration::from_millis(100);
            for spec in specs {
                let spec = spec
                    .with_cpu_limit(cfg.node_cores as f64)
                    .with_mem_limit(4096 * MIB);
                containers.push(cluster.deploy(spec, SimTime::ZERO).expect("deploy"));
            }
            mode = Mode::Profile;
        } else {
            match &cfg.policy {
                Policy::Escra(ecfg) => {
                    period = ecfg.report_period;
                    let mut controller = Controller::new(ecfg.clone());
                    let app_config = AppConfig {
                        app: app_id,
                        name: app.name.clone(),
                        global_cpu_cores: app.global_cpu_cores,
                        global_mem_bytes: app.global_mem_mib * MIB,
                        containers: specs,
                    };
                    let (ids, actions) = deploy_app(
                        ecfg,
                        &app_config,
                        &mut cluster,
                        &mut controller,
                        SimTime::ZERO,
                    )
                    .expect("deploy app");
                    containers = ids;
                    let mut agents: Vec<Agent> = cluster
                        .nodes()
                        .iter()
                        .map(|nd| Agent::new(nd.id()))
                        .collect();
                    let mut accountant = BandwidthAccountant::new();
                    // Deployment registration runs over per-container TCP
                    // sockets before the workload starts; runtime faults
                    // do not apply to it.
                    for a in &actions {
                        apply_action(&mut cluster, &mut agents, a, &mut accountant, SimTime::ZERO);
                    }
                    let net = ControlPlane::new(cfg.faults.clone(), cfg.seed);
                    mode = Mode::Escra {
                        controller,
                        agents,
                        accountant,
                        net,
                    };
                }
                Policy::Static { factor } => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "static policy needs profiles");
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = profiles[i].scaled(*factor);
                        let spec = spec
                            .with_cpu_limit(p.peak_cpu_cores.max(0.1))
                            .with_mem_limit(
                                p.peak_mem_bytes
                                    .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB),
                            );
                        containers.push(cluster.deploy(spec, SimTime::ZERO).expect("deploy"));
                    }
                    let _ = StaticPolicy::from_profiles(&Default::default(), *factor);
                    mode = Mode::Static;
                }
                Policy::Autopilot(acfg) => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "autopilot needs profiles");
                    let mut scaler = AutopilotScaler::new(acfg.clone());
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = &profiles[i];
                        let mem = p
                            .peak_mem_bytes
                            .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB);
                        let spec = spec
                            .with_cpu_limit(p.peak_cpu_cores.max(0.1))
                            .with_mem_limit(mem);
                        let id = cluster.deploy(spec, SimTime::ZERO).expect("deploy");
                        // Warm-start from history, as production Autopilot
                        // would (see AutopilotScaler::seed_profile).
                        scaler.seed_profile(id, p.peak_cpu_cores.max(0.1), mem, 40);
                        containers.push(id);
                    }
                    let update_every_secs = (acfg.update_period.as_micros() / 1_000_000).max(1);
                    mode = Mode::Periodic {
                        scaler: Box::new(scaler),
                        update_every_secs,
                        restart_on_update: false,
                    };
                }
                Policy::Vpa(vcfg) => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "vpa needs profiles");
                    let mut scaler = VpaScaler::new(*vcfg);
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = &profiles[i];
                        let cpu = p.peak_cpu_cores.max(0.1);
                        let mem = p
                            .peak_mem_bytes
                            .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB);
                        let spec = spec.with_cpu_limit(cpu).with_mem_limit(mem);
                        let id = cluster.deploy(spec, SimTime::ZERO).expect("deploy");
                        scaler.set_limits(id, cpu, mem);
                        containers.push(id);
                    }
                    let update_every_secs = (vcfg.update_period.as_micros() / 1_000_000).max(1);
                    mode = Mode::Periodic {
                        scaler: Box::new(scaler),
                        update_every_secs,
                        restart_on_update: true,
                    };
                }
            }
        }

        let policy_name = if profiling {
            "profile".to_string()
        } else {
            cfg.policy.name()
        };
        let root = SimRng::new(cfg.seed);
        Sim {
            cfg,
            cluster,
            tier_of,
            tier_members,
            rr: vec![0; app.tiers.len()],
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            requests: Vec::new(),
            cache_bytes: vec![0.0; n],
            warm_until: vec![SimTime::ZERO + SimDuration::from_secs(2) + STARTUP_LEN; n],
            gen: RequestGenerator::new(cfg.workload.clone(), cfg.seed),
            rng: root.fork(0x7365_7276), // service times
            rng_bg: root.fork(0x6263),   // background events
            mode,
            period,
            metrics: RunMetrics::new(policy_name),
            usage_sec_us: vec![0.0; n],
            quota_sec_us: vec![0.0; n],
            peak_cpu: vec![0.0; n],
            peak_mem: vec![0u64; n],
            cpu_bucket_us: vec![0.0; n],
            bucket_secs: 0,
            containers,
        }
    }

    fn enqueue_stage(&mut self, request: usize, tier: usize, work_us: f64, at: SimTime) {
        // Round-robin over running replicas; fall back to plain
        // round-robin when none are running (requests queue at a
        // restarting replica and wait or time out).
        let members = &self.tier_members[tier];
        let start = self.rr[tier];
        let mut chosen = None;
        for k in 0..members.len() {
            let idx = members[(start + k) % members.len()];
            if self
                .cluster
                .container(self.containers[idx])
                .is_some_and(|c| c.is_running())
            {
                chosen = Some((idx, (start + k + 1) % members.len()));
                break;
            }
        }
        let (idx, next_rr) =
            chosen.unwrap_or((members[start % members.len()], (start + 1) % members.len()));
        self.rr[tier] = next_rr;
        self.queues[idx].push_back(StageJob {
            request,
            remaining_us: work_us,
            queued_at: at,
        });
    }

    fn fail_queue(&mut self, idx: usize, now: SimTime) {
        // The restarted container will re-run its warm-up burst.
        self.warm_until[idx] = now + SimDuration::from_secs(2) + STARTUP_LEN;
        let jobs: Vec<usize> = self.queues[idx].iter().map(|j| j.request).collect();
        self.queues[idx].clear();
        for r in jobs {
            if r != BG_REQUEST && !self.requests[r].finished {
                self.requests[r].finished = true;
                self.metrics.latency.record_failure();
            }
        }
    }

    fn run(&mut self) -> MicroSimOutput {
        let end = SimTime::ZERO + WARMUP + self.cfg.duration;
        let period = self.period;
        let period_us = period.as_micros() as f64;
        let warmup_end = SimTime::ZERO + WARMUP;
        let n = self.containers.len();
        let node_count = self.cluster.nodes().len();
        let mut next_second = SimTime::from_secs(1);
        let mut second_index: u64 = 0;

        let mut t = SimTime::ZERO;
        while t < end {
            let t_next = t + period;
            self.cluster.tick(t);

            // 1. Arrivals.
            if t_next > warmup_end {
                let win_start = if t < warmup_end { warmup_end } else { t };
                let arrivals = self.gen.arrivals_in(win_start, t_next);
                for at in arrivals {
                    let class = self.cfg.app.sample_class(&mut self.rng);
                    let tier0 = self.cfg.app.classes[class].path[0];
                    let work = self.cfg.app.tiers[tier0].sample_service_us(&mut self.rng);
                    let req = self.requests.len();
                    self.requests.push(ReqState {
                        class,
                        arrival: at,
                        finished: false,
                    });
                    self.enqueue_stage(req, tier0, work, at);
                }
            }

            // 1b. Background events (GC pauses etc.): preempt the queue.
            for idx in 0..n {
                let tier = &self.cfg.app.tiers[self.tier_of[idx]];
                if tier.bg_interval_s > 0.0
                    && self
                        .rng_bg
                        .chance(period.as_secs_f64() / tier.bg_interval_s)
                    && self
                        .cluster
                        .container(self.containers[idx])
                        .is_some_and(|c| c.is_running())
                {
                    let mean_us = tier.bg_work_ms * 1_000.0;
                    let sigma2 = (1.0f64 + 0.25).ln();
                    let mu = mean_us.ln() - sigma2 / 2.0;
                    let work = self.rng_bg.lognormal(mu, sigma2.sqrt());
                    self.queues[idx].push_front(StageJob {
                        request: BG_REQUEST,
                        remaining_us: work,
                        queued_at: t,
                    });
                }
            }

            // 2. Timeout culling.
            let timeout = self.cfg.request_timeout;
            for idx in 0..n {
                let requests = &self.requests;
                let dropped = cull_queue(&mut self.queues[idx], |r| {
                    r != BG_REQUEST && requests[r].arrival + timeout < t
                });
                for r in dropped {
                    if !self.requests[r].finished {
                        self.requests[r].finished = true;
                        self.metrics.latency.record_failure();
                    }
                }
            }

            // 3. CPU grants per node.
            let mut grant = vec![0.0f64; n];
            for node in 0..node_count {
                let mut members: Vec<usize> = Vec::new();
                for (idx, cid) in self.containers.iter().enumerate() {
                    let c = self.cluster.container(*cid).expect("container");
                    if c.node().as_u64() as usize == node && c.is_running() {
                        members.push(idx);
                    }
                }
                let capacity = self.cfg.node_cores as f64 * period_us;
                let mut want = Vec::with_capacity(members.len());
                let mut pot = Vec::with_capacity(members.len());
                for &idx in &members {
                    let c = self
                        .cluster
                        .container(self.containers[idx])
                        .expect("container");
                    let tier = &self.cfg.app.tiers[self.tier_of[idx]];
                    let potential = c
                        .cpu
                        .runtime_remaining_us()
                        .min(tier.parallelism * period_us);
                    let startup_us = if t < self.warm_until[idx] {
                        tier.startup_cpu_cores * period_us
                    } else {
                        0.0
                    };
                    pot.push(potential);
                    want.push((backlog_us(&self.queues[idx]) + startup_us).min(potential));
                }
                let total_want: f64 = want.iter().sum();
                if total_want <= capacity {
                    // Uncontended: every container may burst up to its
                    // quota/parallelism mid-period.
                    for (k, &idx) in members.iter().enumerate() {
                        grant[idx] = pot[k];
                    }
                } else {
                    let shares = arbitrate(capacity, &want);
                    for (k, &idx) in members.iter().enumerate() {
                        grant[idx] = shares[k];
                    }
                }
            }

            // 4. Drain queues in DAG (tier) order.
            let mut consumed = vec![0.0f64; n];
            for tier in 0..self.cfg.app.tiers.len() {
                for mi in 0..self.tier_members[tier].len() {
                    let idx = self.tier_members[tier][mi];
                    if grant[idx] <= 0.0 {
                        continue;
                    }
                    let rate = self.cfg.app.tiers[tier].parallelism;
                    let out = drain_fifo(&mut self.queues[idx], t, t_next, rate, grant[idx]);
                    // Warm-up burst soaks up whatever the requests left.
                    let startup_us = if t < self.warm_until[idx] {
                        self.cfg.app.tiers[tier].startup_cpu_cores * period_us
                    } else {
                        0.0
                    };
                    consumed[idx] =
                        out.consumed_us + startup_us.min(grant[idx] - out.consumed_us).max(0.0);
                    for (req, ctime) in out.completions {
                        if req == BG_REQUEST || self.requests[req].finished {
                            continue;
                        }
                        let class = self.requests[req].class;
                        let path = &self.cfg.app.classes[class].path;
                        let pos = path.iter().position(|&p| p == tier).unwrap_or(0);
                        if pos + 1 < path.len() {
                            let next_tier = path[pos + 1];
                            let work =
                                self.cfg.app.tiers[next_tier].sample_service_us(&mut self.rng);
                            self.enqueue_stage(req, next_tier, work, ctime);
                        } else {
                            self.requests[req].finished = true;
                            let latency = ctime.duration_since(self.requests[req].arrival);
                            self.metrics.latency.record_success(latency);
                        }
                    }
                }
            }

            // 5. CFS accounting + telemetry collection.
            let mut period_stats = Vec::with_capacity(n);
            for idx in 0..n {
                let cid = self.containers[idx];
                let running = self.cluster.container(cid).is_some_and(|c| c.is_running());
                let c = self.cluster.container_mut(cid).expect("container");
                if consumed[idx] > 0.0 {
                    c.cpu.consume(consumed[idx]);
                }
                if running
                    && backlog_us(&self.queues[idx]) > 1.0
                    && c.cpu.runtime_remaining_us() <= period_us * 0.01
                {
                    c.cpu.mark_throttled();
                }
                let stats = c.cpu.end_period();
                period_stats.push((running, stats));
                self.usage_sec_us[idx] += stats.usage_us;
                self.quota_sec_us[idx] += stats.quota_cores * period_us;
            }

            // 6. Memory demand.
            for idx in 0..n {
                let tier = &self.cfg.app.tiers[self.tier_of[idx]];
                let busy = consumed[idx] > 0.0 || !self.queues[idx].is_empty();
                let cache_max = (tier.mem_cache_mib * MIB) as f64;
                if busy {
                    self.cache_bytes[idx] += (cache_max - self.cache_bytes[idx]) * CACHE_FILL;
                } else {
                    self.cache_bytes[idx] *= CACHE_DECAY;
                }
                // Only admitted (in-service) requests hold heap memory;
                // the rest of the queue waits in socket buffers.
                let inflight = (self.queues[idx].len() as u64).min(128);
                let target = tier.mem_base_mib * MIB
                    + inflight * tier.mem_per_inflight_kib * 1024
                    + self.cache_bytes[idx] as u64;
                self.apply_memory_target(idx, target, t_next);
            }

            // 7. Policy step.
            self.policy_step(t_next, &period_stats);

            // 8. Per-second sampling.
            while next_second <= t_next {
                second_index += 1;
                let mut agg_cpu_limit = 0.0;
                let mut agg_mem_limit = 0.0;
                for idx in 0..n {
                    let usage_cores = self.usage_sec_us[idx] / 1e6;
                    let c = self
                        .cluster
                        .container(self.containers[idx])
                        .expect("container");
                    // Time-weighted limit over the second, like the
                    // per-second aggregation of the paper's tooling.
                    let quota = self.quota_sec_us[idx] / 1e6;
                    let mem_limit = c.mem.limit_bytes();
                    let mem_usage = c.mem.usage_bytes();
                    agg_cpu_limit += quota;
                    agg_mem_limit += mem_limit as f64 / MIB as f64;
                    if next_second > warmup_end {
                        self.metrics.slack.record(
                            (quota - usage_cores).max(0.0),
                            mem_limit.saturating_sub(mem_usage) as f64 / MIB as f64,
                        );
                    }
                    self.cpu_bucket_us[idx] += self.usage_sec_us[idx];
                    self.peak_mem[idx] = self.peak_mem[idx].max(mem_usage);
                    // Feed periodic scalers a 1 s sample (scalers start
                    // with the workload, not during the idle warm-up).
                    if next_second > warmup_end {
                        if let Mode::Periodic { scaler, .. } = &mut self.mode {
                            scaler.observe(
                                self.containers[idx],
                                UsageSample {
                                    cpu_cores: usage_cores,
                                    mem_bytes: mem_usage,
                                },
                            );
                        }
                    }
                    self.usage_sec_us[idx] = 0.0;
                    self.quota_sec_us[idx] = 0.0;
                }
                if next_second > warmup_end {
                    self.metrics
                        .record_limits(next_second, agg_cpu_limit, agg_mem_limit);
                }
                // Close a 5-second profiling bucket: the peak recorded is
                // the max of 5 s *means*, as coarse monitoring reports.
                self.bucket_secs += 1;
                if self.bucket_secs == 5 {
                    for idx in 0..n {
                        let mean_cores = self.cpu_bucket_us[idx] / (5.0 * 1e6);
                        self.peak_cpu[idx] = self.peak_cpu[idx].max(mean_cores);
                        self.cpu_bucket_us[idx] = 0.0;
                    }
                    self.bucket_secs = 0;
                }
                // Periodic scaler recommendation on its update boundary.
                if let Mode::Periodic {
                    scaler,
                    update_every_secs,
                    restart_on_update,
                } = &mut self.mode
                {
                    if next_second > warmup_end && second_index.is_multiple_of(*update_every_secs) {
                        let updates = scaler.recommend();
                        let restart = *restart_on_update;
                        apply_limit_updates(&mut self.cluster, &updates, restart, next_second);
                        if restart {
                            for u in &updates {
                                if u.requires_restart {
                                    if let Some(idx) =
                                        self.containers.iter().position(|c| *c == u.container)
                                    {
                                        self.fail_queue(idx, next_second);
                                        self.cache_bytes[idx] = 0.0;
                                    }
                                }
                            }
                        }
                    }
                }
                next_second += SimDuration::from_secs(1);
            }

            t = t_next;
        }

        // Finalize.
        self.metrics.duration = self.cfg.duration;
        self.metrics.oom_kills = self.cluster.total_oom_kills();
        let profiles = (0..n)
            .map(|idx| ContainerProfile {
                peak_cpu_cores: self.peak_cpu[idx],
                peak_mem_bytes: self.peak_mem[idx],
            })
            .collect();
        let (network, controller_stats, fault_stats) = match &self.mode {
            Mode::Escra {
                controller,
                accountant,
                net,
                ..
            } => (
                Some(accountant.clone()),
                Some(controller.stats()),
                Some(net.injector.stats()),
            ),
            _ => (None, None, None),
        };
        MicroSimOutput {
            metrics: std::mem::replace(&mut self.metrics, RunMetrics::new("done")),
            network,
            controller_stats,
            fault_stats,
            profiles,
        }
    }

    /// Brings a container's memory usage toward `target`, handling OOMs
    /// per policy.
    fn apply_memory_target(&mut self, idx: usize, target: u64, now: SimTime) {
        let cid = self.containers[idx];
        let is_running = self.cluster.container(cid).is_some_and(|c| c.is_running());
        if !is_running {
            return;
        }
        let usage = self
            .cluster
            .container(cid)
            .expect("container")
            .mem
            .usage_bytes();
        if target <= usage {
            self.cluster
                .container_mut(cid)
                .expect("container")
                .mem
                .uncharge(usage - target);
            return;
        }
        let delta = target - usage;
        let outcome = self
            .cluster
            .container_mut(cid)
            .expect("container")
            .mem
            .try_charge(delta);
        if let ChargeOutcome::WouldOom { shortfall_bytes } = outcome {
            match &mut self.mode {
                Mode::Escra {
                    controller,
                    agents,
                    accountant,
                    net,
                } => {
                    let c = self.cluster.container(cid).expect("container");
                    let node = c.node();
                    let current_limit_bytes = c.mem.limit_bytes();
                    net.send(
                        now,
                        node_addr(node),
                        controller_addr(),
                        Envelope::ToCtl(ToController::OomEvent {
                            container: cid,
                            shortfall_bytes,
                            current_limit_bytes,
                        }),
                        accountant,
                    );
                    let mut killed: Vec<ContainerId> = Vec::new();
                    pump_control_plane(
                        &mut self.cluster,
                        agents,
                        controller,
                        net,
                        accountant,
                        now,
                        &mut killed,
                    );
                    let trapped_killed = killed.contains(&cid);
                    for k in killed {
                        if let Some(kidx) = self.containers.iter().position(|c| *c == k) {
                            self.fail_queue(kidx, now);
                            self.cache_bytes[kidx] = 0.0;
                        }
                    }
                    if !trapped_killed {
                        // Limit raised (or, under faults, the grant was
                        // lost and the container stays trapped at the old
                        // limit to re-OOM next period): retry the charge
                        // (the paper's "request lookup penalty" is
                        // sub-millisecond).
                        let _ = self
                            .cluster
                            .container_mut(cid)
                            .expect("container")
                            .mem
                            .try_charge(delta);
                    }
                }
                Mode::Profile => {
                    // Profiling runs are uncapped; grow the limit.
                    let c = self.cluster.container_mut(cid).expect("container");
                    let new_limit = c.mem.limit_bytes() + shortfall_bytes + 64 * MIB;
                    c.mem.set_limit_bytes(new_limit);
                    let _ = c.mem.try_charge(delta);
                }
                Mode::Static | Mode::Periodic { .. } => {
                    // Vanilla kernel behaviour: OOM kill + restart. A
                    // periodic scaler learns about the kill (Autopilot
                    // bumps its memory estimate on OOM events).
                    let limit = self
                        .cluster
                        .container(cid)
                        .expect("container")
                        .mem
                        .limit_bytes();
                    if let Mode::Periodic { scaler, .. } = &mut self.mode {
                        scaler.on_oom(cid, limit);
                    }
                    self.cluster.oom_kill(cid, now).expect("known container");
                    self.fail_queue(idx, now);
                    self.cache_bytes[idx] = 0.0;
                }
            }
        }
    }

    /// Telemetry fan-in / reclamation tick for Escra.
    fn policy_step(&mut self, now: SimTime, period_stats: &[(bool, escra_cfs::CpuPeriodStats)]) {
        if let Mode::Escra {
            controller,
            agents,
            accountant,
            net,
        } = &mut self.mode
        {
            let mut killed: Vec<ContainerId> = Vec::new();
            // Each node's Agent coalesces its containers' period stats
            // into ONE datagram (entries in container order), so the UDP
            // envelope is paid once per node per period instead of once
            // per container — the §VI-I batching optimisation. The fault
            // fabric sees one message per node: a drop now loses the
            // whole node's period, matching a lost datagram.
            let node_count = self.cluster.nodes().len();
            let mut batches: Vec<Vec<CpuStatsEntry>> = vec![Vec::new(); node_count];
            for (idx, (running, stats)) in period_stats.iter().enumerate() {
                if !running {
                    continue;
                }
                let cid = self.containers[idx];
                let node = self.cluster.container(cid).expect("container").node();
                batches[node.as_u64() as usize].push(CpuStatsEntry {
                    container: cid,
                    stats: *stats,
                });
            }
            for (node_idx, entries) in batches.into_iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                let node = NodeId::new(node_idx as u64);
                net.send(
                    now,
                    node_addr(node),
                    controller_addr(),
                    Envelope::ToCtl(ToController::CpuStatsBatch { node, entries }),
                    accountant,
                );
                pump_control_plane(
                    &mut self.cluster,
                    agents,
                    controller,
                    net,
                    accountant,
                    now,
                    &mut killed,
                );
            }
            // Periodic reclamation loop + grant-retry timers.
            let mut actions = controller.tick(now);
            dispatch_actions(
                &mut actions,
                &mut self.cluster,
                net,
                accountant,
                now,
                &mut killed,
            );
            pump_control_plane(
                &mut self.cluster,
                agents,
                controller,
                net,
                accountant,
                now,
                &mut killed,
            );
            for k in killed {
                if let Some(idx) = self.containers.iter().position(|c| *c == k) {
                    self.fail_queue(idx, now);
                    self.cache_bytes[idx] = 0.0;
                }
            }
        }
    }
}

/// Applies one controller action through the right agent, bypassing the
/// fault fabric (used only for deploy-time registration commands).
fn apply_action(
    cluster: &mut Cluster,
    agents: &mut [Agent],
    action: &Action,
    accountant: &mut BandwidthAccountant,
    now: SimTime,
) -> Option<Vec<ReclaimEntry>> {
    match action {
        Action::Agent { node, cmd } => {
            accountant.record(
                now,
                match cmd {
                    ToAgent::ReclaimMemory { .. } => RECLAIM_RPC_WIRE_BYTES,
                    _ => LIMIT_UPDATE_WIRE_BYTES,
                },
            );
            match agents.iter_mut().find(|a| a.node() == *node) {
                Some(agent) => match agent.apply(cluster, *cmd) {
                    AgentReport::Reclaimed(entries) => Some(entries),
                    AgentReport::Applied | AgentReport::Stale => None,
                },
                None => None,
            }
        }
        Action::KillContainer(_) => None,
    }
}

/// Routes controller actions onto the fabric: Agent commands travel the
/// wire (and can be dropped/duplicated/delayed); kills are local to the
/// Controller's authority and take effect immediately.
fn dispatch_actions(
    actions: &mut Vec<Action>,
    cluster: &mut Cluster,
    net: &mut ControlPlane,
    accountant: &mut BandwidthAccountant,
    now: SimTime,
    killed: &mut Vec<ContainerId>,
) {
    for action in actions.drain(..) {
        match action {
            Action::Agent { node, cmd } => net.send(
                now,
                controller_addr(),
                node_addr(node),
                Envelope::ToNode(node, cmd),
                accountant,
            ),
            Action::KillContainer(cid) => {
                let _ = cluster.oom_kill(cid, now);
                killed.push(cid);
            }
        }
    }
}

/// Delivers every control-plane message due at `now` until the fabric is
/// quiescent, feeding aggregated reclamation reports back into the
/// controller exactly as the synchronous pre-fault simulator did: all
/// sweep responses arriving in one delivery round are merged into one
/// `on_reclaim_report` call, so grant-vs-kill decisions see the whole
/// round's reclaimed total.
#[allow(clippy::too_many_arguments)] // the split borrow of Sim's fields
fn pump_control_plane(
    cluster: &mut Cluster,
    agents: &mut [Agent],
    controller: &mut Controller,
    net: &mut ControlPlane,
    accountant: &mut BandwidthAccountant,
    now: SimTime,
    killed: &mut Vec<ContainerId>,
) {
    // Backstop against a (non-existent today) message cycle; real
    // cascades are grant → ack → done and terminate in a few rounds.
    let mut guard = 0u32;
    // One action buffer for the whole pump: the steady-state telemetry
    // path through `handle_into` then allocates nothing per message.
    let mut actions: Vec<Action> = Vec::new();
    loop {
        while let Some((_, env)) = net.delayed.pop_due(now) {
            net.ready.push_back(env);
        }
        if net.ready.is_empty() {
            break;
        }
        let mut reclaim_entries: Vec<ReclaimEntry> = Vec::new();
        while let Some(env) = net.ready.pop_front() {
            guard += 1;
            if guard > 100_000 {
                return;
            }
            match env {
                Envelope::ToCtl(msg) => {
                    controller.handle_into(now, msg, &mut actions);
                    dispatch_actions(&mut actions, cluster, net, accountant, now, killed);
                }
                Envelope::ToNode(node, cmd) => {
                    let report = agents
                        .iter_mut()
                        .find(|a| a.node() == node)
                        .map(|a| a.apply(cluster, cmd));
                    match report {
                        Some(AgentReport::Applied) => {
                            if let ToAgent::SetMemLimit { container, seq, .. } = cmd {
                                net.send(
                                    now,
                                    node_addr(node),
                                    controller_addr(),
                                    Envelope::ToCtl(ToController::LimitAck { container, seq }),
                                    accountant,
                                );
                            }
                        }
                        Some(AgentReport::Reclaimed(entries)) => net.send(
                            now,
                            node_addr(node),
                            controller_addr(),
                            Envelope::Report(entries),
                            accountant,
                        ),
                        Some(AgentReport::Stale) | None => {}
                    }
                }
                Envelope::Report(entries) => reclaim_entries.extend(entries),
            }
        }
        if !reclaim_entries.is_empty() {
            let mut actions = controller.on_reclaim_report(now, &reclaim_entries);
            dispatch_actions(&mut actions, cluster, net, accountant, now, killed);
        }
    }
}

/// Applies baseline limit updates directly to cgroups.
fn apply_limit_updates(
    cluster: &mut Cluster,
    updates: &[LimitUpdate],
    restart: bool,
    now: SimTime,
) {
    for u in updates {
        if let Some(c) = cluster.container_mut(u.container) {
            if let Some(cpu) = u.cpu_limit_cores {
                c.cpu.set_quota_cores(cpu);
            }
            if let Some(mem) = u.mem_limit_bytes {
                c.mem.set_limit_bytes(mem.max(1));
            }
            if restart && u.requires_restart {
                c.restart(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_workloads::teastore;

    fn quick_cfg(policy: Policy) -> MicroSimConfig {
        MicroSimConfig::new(teastore(), WorkloadKind::Fixed { rps: 150.0 }, policy, 42)
            .with_duration(SimDuration::from_secs(12))
    }

    #[test]
    fn escra_run_completes_requests() {
        let out = run(&quick_cfg(Policy::escra_default()));
        let m = &out.metrics;
        // 150 rps over 12s ~ 1800 requests; most must succeed.
        assert!(
            m.latency.successes() > 1_500,
            "successes {}",
            m.latency.successes()
        );
        assert!(m.throughput() > 120.0, "tput {}", m.throughput());
        assert!(m.latency.p(50.0) > 0.0);
        assert_eq!(m.oom_kills, 0, "Escra must absorb all OOMs");
        assert!(out.network.expect("escra network").total_bytes() > 0);
        assert!(out.controller_stats.expect("stats").cpu_stats_ingested > 0);
    }

    #[test]
    fn static_run_completes_requests() {
        let out = run(&quick_cfg(Policy::static_1_5x()));
        assert!(out.metrics.latency.successes() > 1_400);
        assert!(out.network.is_none());
    }

    #[test]
    fn autopilot_run_completes_requests() {
        let out = run(&quick_cfg(Policy::autopilot_default()));
        assert!(
            out.metrics.latency.successes() > 1_200,
            "successes {} failures {} ooms {}",
            out.metrics.latency.successes(),
            out.metrics.latency.failures(),
            out.metrics.oom_kills
        );
    }

    #[test]
    fn escra_has_less_cpu_slack_than_static() {
        let escra = run(&quick_cfg(Policy::escra_default()));
        let st = run(&quick_cfg(Policy::static_1_5x()));
        let e50 = escra.metrics.slack.cpu_p(50.0);
        let s50 = st.metrics.slack.cpu_p(50.0);
        assert!(
            e50 < s50,
            "escra median cpu slack {e50} should be below static {s50}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&quick_cfg(Policy::escra_default()));
        let b = run(&quick_cfg(Policy::escra_default()));
        assert_eq!(a.metrics.latency.successes(), b.metrics.latency.successes());
        assert_eq!(a.metrics.latency.p(99.0), b.metrics.latency.p(99.0));
        assert_eq!(
            a.network.expect("net").total_bytes(),
            b.network.expect("net").total_bytes()
        );
    }

    #[test]
    fn profile_run_measures_peaks() {
        let cfg = quick_cfg(Policy::static_1_5x());
        let profiles = profile_run(&cfg);
        assert_eq!(profiles.len(), cfg.app.container_count());
        // The webui tier (first containers) must show real usage.
        assert!(profiles[0].peak_cpu_cores > 0.05);
        assert!(profiles[0].peak_mem_bytes > 0);
    }
}
