//! The microservice experiment simulator.
//!
//! Drives a modelled application (`escra_workloads::microservice`) on a
//! simulated cluster under one of the [`Policy`] variants and produces
//! the paper's metrics. Two interchangeable drivers advance the run:
//!
//! * [`SimEngine::EventHeap`] (default) — a discrete-event scheduler on
//!   [`escra_simcore::events::EventQueue`]. Fluid windows close on
//!   `Round` events, per-node report timers (optionally heterogeneous
//!   and jittered, see [`ReportPlan`]) flush telemetry, request
//!   timeouts expire exactly via `Timeout` events, and background work
//!   arrives on per-container exponential `Background` chains. Idle
//!   nodes schedule nothing and cost nothing.
//! * [`SimEngine::SerialTick`] — the frozen fixed-tick reference loop,
//!   kept for the serial-vs-event-heap identity gate.
//!
//! Each fluid window performs, in order:
//!
//! 1. generate request arrivals for the window;
//! 2. arbitrate CPU per node (max–min fair, quota-capped);
//! 3. drain container queues in DAG order (fluid FIFO — throttling
//!    becomes queueing delay);
//! 4. account CFS usage, mark quota-bound throttles;
//! 5. update memory demand, trapping or suffering OOMs per policy;
//! 6. emit per-period telemetry to the Escra controller, or per-second
//!    samples to the baseline scalers;
//! 7. sample slack and aggregate limits every second.
//!
//! # Determinism
//!
//! Runs are bit-for-bit reproducible. All randomness forks off the
//! master seed with fixed labels (service times, background chains,
//! report jitter, workload arrivals), and every heap event carries a
//! canonical key `(priority << 48) | entity`, so the pop order at equal
//! timestamps is a pure function of the schedule — independent of push
//! interleaving. At one instant the order is: `Round` (close the
//! window), `Timeout` (per request id), `Background` (per container),
//! `NodeReport` (per node), `PostRound` (controller tick + sampling).

// Index-based loops are deliberate here: most iterate one struct field
// while mutating siblings, which iterators cannot express without
// splitting borrows.
#![allow(clippy::needless_range_loop)]

use crate::policy::Policy;
use crate::queueing::{backlog_us, cull_queue, drain_fifo, StageJob};
use escra_baselines::{
    validate_observation, ArcVScaler, AutopilotScaler, ContainerProfile, LimitUpdate,
    PeriodicScaler, StaticPolicy, TinyAutoscaler, UsageSample, VpaScaler,
};
use escra_cfs::{node::arbitrate, ChargeOutcome, MIB};
use escra_cluster::AppId;
use escra_cluster::{Cluster, ContainerId, ContainerSpec, NodeId, NodeSpec};
use escra_core::telemetry::{ToController, LIMIT_UPDATE_WIRE_BYTES, RECLAIM_RPC_WIRE_BYTES};
use escra_core::{
    deploy_app, Action, Agent, AgentReport, AppConfig, Controller, CpuStatsEntry, ReclaimEntry,
    ToAgent,
};
use escra_metrics::RunMetrics;
use escra_net::{Addr, BandwidthAccountant, FaultDecision, FaultInjector, FaultPlan, FaultStats};
use escra_simcore::events::EventQueue;
use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use escra_workloads::{MicroserviceApp, RequestGenerator, WorkloadKind};
use std::collections::VecDeque;

/// Which driver advances the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// The discrete-event heap scheduler (default).
    #[default]
    EventHeap,
    /// The fixed per-period reference loop. Always runs
    /// [`SimPhysics::TickCoupled`] physics regardless of the configured
    /// physics: it exists as the frozen baseline the event engine is
    /// checked against, and exact timers need the heap.
    SerialTick,
}

/// How background events and request timeouts are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimPhysics {
    /// Exact event timing (default): background work arrives on a
    /// per-container exponential inter-arrival chain (rate independent
    /// of the report period), and request timeouts expire at exactly
    /// `arrival + timeout` via heap events. Requires
    /// [`SimEngine::EventHeap`].
    #[default]
    Exact,
    /// The legacy tick-coupled approximation: one Bernoulli background
    /// draw per container per window (`p = period / bg_interval`,
    /// unclamped — the rate distorts with the report period), and
    /// timeouts culled only at window starts. Kept for the identity
    /// gate against [`SimEngine::SerialTick`].
    TickCoupled,
}

/// Per-node telemetry report cadence for the event engine.
///
/// The physics quantum (the fluid window) stays the Escra report period;
/// this plan only decouples *when each node's Agent flushes* its batched
/// telemetry: node `n` reports every
/// `period × period_multipliers[n % len]`, first offset by a
/// deterministic per-node phase drawn uniformly from
/// `[0, jitter_frac × node_period)`. Multi-window reports batch several
/// entries per container into one datagram. Ignored by
/// [`SimEngine::SerialTick`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportPlan {
    /// Report-period multipliers, cycled over node index (empty = all 1).
    pub period_multipliers: Vec<u32>,
    /// Phase jitter as a fraction of the node's report period, in `[0, 1]`.
    pub jitter_frac: f64,
}

impl ReportPlan {
    /// The aligned plan: every node reports every period, no jitter
    /// (byte-identical to the serial loop's telemetry schedule).
    pub fn aligned() -> Self {
        ReportPlan {
            period_multipliers: Vec::new(),
            jitter_frac: 0.0,
        }
    }
}

/// Counters describing what the simulation engine itself did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Fluid windows processed.
    pub rounds: u64,
    /// Heap events popped (0 under [`SimEngine::SerialTick`]).
    pub heap_events: u64,
    /// Background (GC-style) jobs injected.
    pub bg_jobs: u64,
    /// Requests failed by timeout (exact expiry or window-start cull).
    pub timeout_failures: u64,
}

/// Configuration of one microservice experiment run.
#[derive(Debug, Clone)]
pub struct MicroSimConfig {
    /// The application model.
    pub app: MicroserviceApp,
    /// The request workload.
    pub workload: WorkloadKind,
    /// The allocation policy under test.
    pub policy: Policy,
    /// Master seed; equal seeds give identical runs.
    pub seed: u64,
    /// Measured duration (after warm-up).
    pub duration: SimDuration,
    /// Number of worker nodes (paper: 3).
    pub worker_nodes: usize,
    /// Cores per worker node (paper: 20).
    pub node_cores: u32,
    /// End-to-end request timeout; expired requests count as failures.
    pub request_timeout: SimDuration,
    /// Length of the profiling pre-run used by baseline policies.
    pub profile_duration: SimDuration,
    /// Faults injected into the Escra control plane (loss, duplication,
    /// delay spikes, partitions). [`FaultPlan::none`] — the default —
    /// reproduces the faultless run bit for bit.
    pub faults: FaultPlan,
    /// The simulation driver.
    pub engine: SimEngine,
    /// Background-event / timeout physics.
    pub physics: SimPhysics,
    /// Optional per-node telemetry cadence (event engine only).
    pub report_plan: Option<ReportPlan>,
    /// Emit per-node telemetry as columnar `CpuStatsColumns` blocks
    /// instead of row-form `CpuStatsBatch` datagrams. Off by default:
    /// the columnar wire form quantises statistics to integer
    /// microseconds, which is exact for CFS-shaped telemetry but not
    /// bit-identical to the committed row-form experiment physics.
    pub columnar_telemetry: bool,
}

impl MicroSimConfig {
    /// A paper-like setup for `app` × `workload` × `policy`.
    pub fn new(app: MicroserviceApp, workload: WorkloadKind, policy: Policy, seed: u64) -> Self {
        MicroSimConfig {
            app,
            workload,
            policy,
            seed,
            duration: SimDuration::from_secs(60),
            worker_nodes: 3,
            node_cores: 20,
            request_timeout: SimDuration::from_secs(10),
            profile_duration: SimDuration::from_secs(20),
            faults: FaultPlan::none(),
            engine: SimEngine::default(),
            physics: SimPhysics::default(),
            report_plan: None,
            columnar_telemetry: false,
        }
    }

    /// Sets the measured duration (builder style).
    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the control-plane fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the simulation driver (builder style).
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the background/timeout physics (builder style).
    pub fn with_physics(mut self, physics: SimPhysics) -> Self {
        self.physics = physics;
        self
    }

    /// Sets the per-node telemetry cadence (builder style).
    pub fn with_report_plan(mut self, plan: ReportPlan) -> Self {
        self.report_plan = Some(plan);
        self
    }

    /// Switches per-node telemetry to the columnar wire form (builder
    /// style). See [`MicroSimConfig::columnar_telemetry`].
    pub fn with_columnar_telemetry(mut self, columnar: bool) -> Self {
        self.columnar_telemetry = columnar;
        self
    }
}

/// Well-known control-plane address of the Controller.
pub fn controller_addr() -> Addr {
    Addr::from_raw(0)
}

/// Well-known control-plane address of the Agent on `node`.
///
/// Telemetry and OOM events from a container travel over its node's
/// link, so a partition of `node_addr(n) ↔ controller_addr()` cuts off
/// everything hosted on `n`.
pub fn node_addr(node: NodeId) -> Addr {
    Addr::from_raw(1 + node.as_u64())
}

/// A message in flight on the Escra control plane.
#[derive(Debug, Clone)]
enum Envelope {
    /// Node → Controller (telemetry, OOM events, limit acks).
    ToCtl(ToController),
    /// Controller → Agent command.
    ToNode(NodeId, ToAgent),
    /// Agent → Controller reclamation report (the gRPC response of the
    /// reclaim RPC; its bytes are priced into the request pair).
    Report(Vec<ReclaimEntry>),
}

impl Envelope {
    fn wire_bytes(&self) -> u64 {
        match self {
            Envelope::ToCtl(msg) => msg.wire_bytes(),
            Envelope::ToNode(_, cmd) => cmd.wire_bytes(),
            Envelope::Report(_) => 0,
        }
    }
}

/// The simulated control-plane fabric between Agents and the Controller.
///
/// Every runtime message passes through a [`FaultInjector`]; with
/// [`FaultPlan::none`] the injector draws no randomness and every message
/// is delivered synchronously, which keeps faultless runs bit-identical
/// to the pre-fault-layer simulator.
struct ControlPlane {
    injector: FaultInjector,
    /// Messages hit by a delay spike, delivered once due.
    delayed: EventQueue<Envelope>,
    /// Messages ready for delivery now, in FIFO order.
    ready: VecDeque<Envelope>,
}

impl ControlPlane {
    fn new(plan: FaultPlan, seed: u64) -> Self {
        ControlPlane {
            injector: FaultInjector::new(plan, seed),
            delayed: EventQueue::new(),
            ready: VecDeque::new(),
        }
    }

    /// Puts `env` on the wire. Bytes are charged at send time (they
    /// leave the sender even if the fabric then drops the message).
    fn send(
        &mut self,
        now: SimTime,
        from: Addr,
        to: Addr,
        env: Envelope,
        accountant: &mut BandwidthAccountant,
    ) {
        accountant.record(now, env.wire_bytes());
        match self.injector.decide(now, from, to) {
            FaultDecision::Drop => {}
            FaultDecision::Deliver {
                copies,
                extra_delay,
            } => {
                for _ in 0..copies {
                    if extra_delay.is_zero() {
                        self.ready.push_back(env.clone());
                    } else {
                        self.delayed.push(now + extra_delay, env.clone());
                    }
                }
            }
        }
    }
}

/// Warm-up before measurement starts: containers cold-start for 2 s and
/// then run their post-start burst for [`STARTUP_LEN`]; like the paper's
/// wrk2 measurements, the workload is measured against a settled
/// deployment, not container boot.
const WARMUP: SimDuration = SimDuration::from_secs(10);
/// Length of a container's post-start warm-up burst (JIT, cache priming).
const STARTUP_LEN: SimDuration = SimDuration::from_secs(5);
/// Sentinel request index marking background (GC-style) work.
const BG_REQUEST: usize = usize::MAX;
/// Cache fill constant per busy period.
const CACHE_FILL: f64 = 0.03;
/// Cache decay per idle period.
const CACHE_DECAY: f64 = 0.995;
/// Sentinel for "request holds no queued stage job".
const NO_STAGE: usize = usize::MAX;

/// Heap events of the event engine. Same-time ordering (by canonical
/// key, see [`ev_key`]) is: Round, Timeout, Background, NodeReport,
/// PostRound — so a window closes before the timeouts due at its edge
/// fire (a completion at exactly the deadline still succeeds), background
/// arrivals join the *next* window, telemetry reports the closed window,
/// and the controller ticks after ingesting it.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Close of a fluid window: process `[t - period, t)`.
    Round,
    /// Exact request-timeout expiry ([`SimPhysics::Exact`] only).
    Timeout {
        /// Request index.
        request: usize,
    },
    /// A background job lands on a container ([`SimPhysics::Exact`]).
    Background {
        /// Container index.
        container: usize,
    },
    /// A node's Agent flushes its batched telemetry.
    NodeReport {
        /// Node index.
        node: usize,
    },
    /// Post-window policy work: controller tick + per-second sampling.
    PostRound,
}

/// Low 48 bits of the canonical key identify the entity; the high bits
/// carry the same-time priority class.
const KEY_ENTITY_MASK: u64 = (1 << 48) - 1;

fn ev_key(ev: Ev) -> u64 {
    match ev {
        Ev::Round => 0,
        Ev::Timeout { request } => (1 << 48) | (request as u64 & KEY_ENTITY_MASK),
        Ev::Background { container } => (2 << 48) | (container as u64 & KEY_ENTITY_MASK),
        Ev::NodeReport { node } => (3 << 48) | (node as u64 & KEY_ENTITY_MASK),
        Ev::PostRound => 4 << 48,
    }
}

#[derive(Debug, Clone, Copy)]
struct ReqState {
    class: usize,
    arrival: SimTime,
    finished: bool,
}

/// What drives allocation during the run.
#[allow(clippy::large_enum_variant)] // one Mode per run; size is irrelevant
enum Mode {
    /// Profiling pre-run: effectively uncapped, record peaks.
    Profile,
    /// Escra event loop.
    Escra {
        controller: Controller,
        agents: Vec<Agent>,
        accountant: BandwidthAccountant,
        net: ControlPlane,
    },
    /// Static limits (nothing to do at runtime).
    Static,
    /// A periodic scaler (Autopilot or VPA).
    Periodic {
        scaler: Box<dyn PeriodicScaler>,
        update_every_secs: u64,
        restart_on_update: bool,
    },
}

impl std::fmt::Debug for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Profile => write!(f, "Profile"),
            Mode::Escra { .. } => write!(f, "Escra"),
            Mode::Static => write!(f, "Static"),
            Mode::Periodic { .. } => write!(f, "Periodic"),
        }
    }
}

/// Output of a run: the paper metrics plus the control-plane bandwidth
/// accountant (for the §VI-I network-overhead analysis) and the
/// controller stats when the policy was Escra.
#[derive(Debug)]
pub struct MicroSimOutput {
    /// The measured metrics.
    pub metrics: RunMetrics,
    /// Control-plane bytes (Escra runs only).
    pub network: Option<BandwidthAccountant>,
    /// Controller counters (Escra runs only).
    pub controller_stats: Option<escra_core::ControllerStats>,
    /// What the fault injector actually did (Escra runs only; all-zero
    /// under [`FaultPlan::none`]).
    pub fault_stats: Option<FaultStats>,
    /// Per-container profiled peaks (profiling runs only).
    pub profiles: Vec<ContainerProfile>,
    /// Engine counters (rounds, heap events, background jobs, timeouts).
    pub sim: SimStats,
}

/// Runs one experiment: optional profiling pre-run (for baselines), then
/// the measured run under `cfg.policy`.
pub fn run(cfg: &MicroSimConfig) -> MicroSimOutput {
    let profiles = if cfg.policy.needs_profile() {
        profile_run(cfg)
    } else {
        Vec::new()
    };
    run_with_profiles(cfg, &profiles)
}

/// Runs the measured phase with pre-computed profiles (exposed so sweeps
/// can reuse one profiling run across policies).
pub fn run_with_profiles(cfg: &MicroSimConfig, profiles: &[ContainerProfile]) -> MicroSimOutput {
    let mut sim = Sim::new(cfg, false, profiles);
    sim.run()
}

fn run_mode(cfg: &MicroSimConfig, profile: bool) -> MicroSimOutput {
    let mut sim = Sim::new(cfg, profile, &[]);
    sim.run()
}

/// Runs only the profiling pre-run, returning per-container peaks in
/// deployment order.
///
/// Profiling drives the application with a **steady stream at the
/// production workload's average rate** and aggregates usage per second
/// — the way operators actually size deployments. Transient peaks
/// (bursts, trace spikes, Poisson clumping) are therefore systematically
/// underestimated, which is the paper's explanation for why even 1.5×
/// static provisioning loses to Escra (§VI-C).
pub fn profile_run(cfg: &MicroSimConfig) -> Vec<ContainerProfile> {
    // The profiling request mix also differs from production: load
    // generators replay a canned scenario that over-exercises the common
    // path and under-exercises the rarer ones, so the tiers serving rare
    // classes get systematically under-provisioned limits. This is the
    // heterogeneous profiling error behind the paper's observation that
    // even 1.5x static provisioning throttles in production (SVI-C).
    let mut app = cfg.app.clone();
    let last = app.classes.len().saturating_sub(1);
    for (i, class) in app.classes.iter_mut().enumerate() {
        class.weight *= if i == 0 {
            1.4
        } else if i == last {
            0.45
        } else {
            0.85
        };
    }
    let profile_cfg = MicroSimConfig {
        duration: cfg.profile_duration,
        seed: cfg.seed ^ 0x70726f66, // "prof": a different sample path
        // "You never know what the workload rate is truly going to be"
        // (SVI-C): the deployment was sized at the rate seen during
        // profiling, and production runs hotter than that estimate.
        workload: WorkloadKind::Fixed {
            rps: cfg.workload.mean_rps() * 0.7,
        },
        app,
        ..cfg.clone()
    };
    run_mode(&profile_cfg, true).profiles
}

struct Sim<'a> {
    cfg: &'a MicroSimConfig,
    cluster: Cluster,
    containers: Vec<ContainerId>,
    tier_of: Vec<usize>,
    tier_members: Vec<Vec<usize>>,
    /// Container indices hosted per node, in deployment order. Placement
    /// is static (round-robin at deploy; OOM restarts keep the node), so
    /// this is built once — the grant loop never rescans the fleet.
    node_members: Vec<Vec<usize>>,
    /// Nodes hosting at least one container; empty nodes are never
    /// visited (and, on the event engine, never scheduled).
    active_nodes: Vec<usize>,
    rr: Vec<usize>,
    queues: Vec<VecDeque<StageJob>>,
    requests: Vec<ReqState>,
    /// Container currently queueing each request's stage job
    /// ([`NO_STAGE`] before the first enqueue). Only consulted while the
    /// request is unfinished, in which case it is always current.
    stage_of: Vec<usize>,
    cache_bytes: Vec<f64>,
    /// End of each container's post-start warm-up burst.
    warm_until: Vec<SimTime>,
    gen: RequestGenerator,
    rng: SimRng,
    rng_bg: SimRng,
    /// Per-container background chains ([`SimPhysics::Exact`]): stream
    /// `root.fork("bc").fork(idx)` draws `work, gap, work, gap, …`, so
    /// background timing is identical across report periods.
    bg_streams: Vec<SimRng>,
    mode: Mode,
    period: SimDuration,
    /// True when running exact physics on the event engine.
    exact: bool,
    /// True when telemetry batches are collected (Escra mode).
    collect_stats: bool,
    metrics: RunMetrics,
    stats: SimStats,
    /// Per-node telemetry entries awaiting the node's next report.
    pending_stats: Vec<Vec<CpuStatsEntry>>,
    /// Timeout events created while processing a window, scheduled by
    /// the event loop afterwards (exact physics only).
    pending_timeouts: Vec<(SimTime, usize)>,
    // Reusable per-window buffers (the hot loops allocate nothing).
    grant: Vec<f64>,
    consumed: Vec<f64>,
    members_buf: Vec<usize>,
    want_buf: Vec<f64>,
    pot_buf: Vec<f64>,
    // per-second accumulators
    next_second: SimTime,
    second_index: u64,
    usage_sec_us: Vec<f64>,
    quota_sec_us: Vec<f64>,
    peak_cpu: Vec<f64>,
    peak_mem: Vec<u64>,
    // 5-second profiling buckets: monitoring tools aggregate over
    // "seconds to minutes", smoothing spikes (§VI-C).
    cpu_bucket_us: Vec<f64>,
    bucket_secs: u64,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a MicroSimConfig, profiling: bool, profiles: &[ContainerProfile]) -> Self {
        let app = &cfg.app;
        let n = app.container_count();
        let nodes = vec![
            NodeSpec {
                cores: cfg.node_cores,
                mem_bytes: 192 * 1024 * MIB,
            };
            cfg.worker_nodes
        ];
        let mut cluster = Cluster::new(nodes);
        let app_id = AppId::new(0);

        // Build specs in tier order.
        let mut specs = Vec::with_capacity(n);
        let mut tier_of = Vec::with_capacity(n);
        let mut tier_members = vec![Vec::new(); app.tiers.len()];
        for (ti, tier) in app.tiers.iter().enumerate() {
            for r in 0..tier.replicas {
                tier_members[ti].push(specs.len());
                tier_of.push(ti);
                specs.push(
                    ContainerSpec::new(format!("{}-{r}", tier.name), app_id)
                        .with_base_mem(tier.mem_base_mib * MIB)
                        .with_restart_delay(SimDuration::from_secs(2)),
                );
            }
        }

        let period;
        let mode;
        let mut containers = Vec::with_capacity(n);

        if profiling {
            period = SimDuration::from_millis(100);
            for spec in specs {
                let spec = spec
                    .with_cpu_limit(cfg.node_cores as f64)
                    .with_mem_limit(4096 * MIB);
                containers.push(cluster.deploy(spec, SimTime::ZERO).expect("deploy"));
            }
            mode = Mode::Profile;
        } else {
            match &cfg.policy {
                Policy::Escra(ecfg) => {
                    period = ecfg.report_period;
                    let mut controller = Controller::new(ecfg.clone());
                    let app_config = AppConfig {
                        app: app_id,
                        name: app.name.clone(),
                        global_cpu_cores: app.global_cpu_cores,
                        global_mem_bytes: app.global_mem_mib * MIB,
                        containers: specs,
                    };
                    let (ids, actions) = deploy_app(
                        ecfg,
                        &app_config,
                        &mut cluster,
                        &mut controller,
                        SimTime::ZERO,
                    )
                    .expect("deploy app");
                    containers = ids;
                    let mut agents: Vec<Agent> = cluster
                        .nodes()
                        .iter()
                        .map(|nd| Agent::new(nd.id()))
                        .collect();
                    let mut accountant = BandwidthAccountant::new();
                    // Deployment registration runs over per-container TCP
                    // sockets before the workload starts; runtime faults
                    // do not apply to it.
                    for a in &actions {
                        apply_action(&mut cluster, &mut agents, a, &mut accountant, SimTime::ZERO);
                    }
                    let net = ControlPlane::new(cfg.faults.clone(), cfg.seed);
                    mode = Mode::Escra {
                        controller,
                        agents,
                        accountant,
                        net,
                    };
                }
                Policy::Static { factor } => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "static policy needs profiles");
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = profiles[i].scaled(*factor);
                        let spec = spec
                            .with_cpu_limit(p.peak_cpu_cores.max(0.1))
                            .with_mem_limit(
                                p.peak_mem_bytes
                                    .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB),
                            );
                        containers.push(cluster.deploy(spec, SimTime::ZERO).expect("deploy"));
                    }
                    let _ = StaticPolicy::from_profiles(&Default::default(), *factor);
                    mode = Mode::Static;
                }
                Policy::Autopilot(acfg) => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "autopilot needs profiles");
                    let mut scaler = AutopilotScaler::new(acfg.clone());
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = &profiles[i];
                        let mem = p
                            .peak_mem_bytes
                            .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB);
                        let spec = spec
                            .with_cpu_limit(p.peak_cpu_cores.max(0.1))
                            .with_mem_limit(mem);
                        let id = cluster.deploy(spec, SimTime::ZERO).expect("deploy");
                        // Warm-start from history, as production Autopilot
                        // would (see AutopilotScaler::seed_profile).
                        scaler.seed_profile(id, p.peak_cpu_cores.max(0.1), mem, 40);
                        containers.push(id);
                    }
                    let update_every_secs = (acfg.update_period.as_micros() / 1_000_000).max(1);
                    mode = Mode::Periodic {
                        scaler: Box::new(scaler),
                        update_every_secs,
                        restart_on_update: false,
                    };
                }
                Policy::Vpa(vcfg) => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "vpa needs profiles");
                    let mut scaler = VpaScaler::new(*vcfg);
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = &profiles[i];
                        let cpu = p.peak_cpu_cores.max(0.1);
                        let mem = p
                            .peak_mem_bytes
                            .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB);
                        let spec = spec.with_cpu_limit(cpu).with_mem_limit(mem);
                        let id = cluster.deploy(spec, SimTime::ZERO).expect("deploy");
                        scaler.set_limits(id, cpu, mem);
                        containers.push(id);
                    }
                    let update_every_secs = (vcfg.update_period.as_micros() / 1_000_000).max(1);
                    mode = Mode::Periodic {
                        scaler: Box::new(scaler),
                        update_every_secs,
                        restart_on_update: true,
                    };
                }
                Policy::Tiny(tcfg) => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "tiny autoscaler needs profiles");
                    let mut scaler = TinyAutoscaler::new(*tcfg);
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = &profiles[i];
                        let cpu = p.peak_cpu_cores.max(0.1);
                        let mem = p
                            .peak_mem_bytes
                            .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB);
                        let spec = spec.with_cpu_limit(cpu).with_mem_limit(mem);
                        let id = cluster.deploy(spec, SimTime::ZERO).expect("deploy");
                        scaler.track(id, cpu, mem);
                        containers.push(id);
                    }
                    let update_every_secs = (tcfg.update_period.as_micros() / 1_000_000).max(1);
                    mode = Mode::Periodic {
                        scaler: Box::new(scaler),
                        update_every_secs,
                        restart_on_update: false, // in-place, like Autopilot
                    };
                }
                Policy::ArcV(acfg) => {
                    period = SimDuration::from_millis(100);
                    assert_eq!(profiles.len(), n, "arc-v needs profiles");
                    let mut scaler = ArcVScaler::new(*acfg);
                    for (i, spec) in specs.into_iter().enumerate() {
                        let p = &profiles[i];
                        let cpu = p.peak_cpu_cores.max(0.1);
                        let mem = p
                            .peak_mem_bytes
                            .max(cfg.app.tiers[tier_of[i]].mem_base_mib * MIB + 16 * MIB);
                        let spec = spec.with_cpu_limit(cpu).with_mem_limit(mem);
                        let id = cluster.deploy(spec, SimTime::ZERO).expect("deploy");
                        scaler.track(id, cpu, mem);
                        containers.push(id);
                    }
                    let update_every_secs = (acfg.update_period.as_micros() / 1_000_000).max(1);
                    mode = Mode::Periodic {
                        scaler: Box::new(scaler),
                        update_every_secs,
                        restart_on_update: false, // ARC-V's in-place premise
                    };
                }
            }
        }

        // Static placement: build the per-node membership once.
        let node_count = cluster.nodes().len();
        let mut node_members: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        for (idx, cid) in containers.iter().enumerate() {
            let node = cluster.container(*cid).expect("container").node().as_u64() as usize;
            node_members[node].push(idx);
        }
        let active_nodes: Vec<usize> = (0..node_count)
            .filter(|&nd| !node_members[nd].is_empty())
            .collect();

        let exact = cfg.engine == SimEngine::EventHeap && cfg.physics == SimPhysics::Exact;
        if exact {
            assert!(
                cfg.request_timeout >= period,
                "exact physics needs request_timeout >= report period"
            );
        }
        let collect_stats = matches!(mode, Mode::Escra { .. });
        let policy_name = if profiling {
            "profile".to_string()
        } else {
            cfg.policy.name()
        };
        let root = SimRng::new(cfg.seed);
        let rng_bg = root.fork(0x6263); // background events (tick-coupled)
        let bg_streams: Vec<SimRng> = if exact {
            (0..n).map(|idx| rng_bg.fork(idx as u64)).collect()
        } else {
            Vec::new()
        };
        Sim {
            cfg,
            cluster,
            tier_of,
            tier_members,
            node_members,
            active_nodes,
            rr: vec![0; app.tiers.len()],
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            requests: Vec::new(),
            stage_of: Vec::new(),
            cache_bytes: vec![0.0; n],
            warm_until: vec![SimTime::ZERO + SimDuration::from_secs(2) + STARTUP_LEN; n],
            gen: RequestGenerator::new(cfg.workload.clone(), cfg.seed),
            rng: root.fork(0x7365_7276), // service times
            rng_bg,
            bg_streams,
            mode,
            period,
            exact,
            collect_stats,
            metrics: RunMetrics::new(policy_name),
            stats: SimStats::default(),
            pending_stats: vec![Vec::new(); node_count],
            pending_timeouts: Vec::new(),
            grant: vec![0.0; n],
            consumed: vec![0.0; n],
            members_buf: Vec::new(),
            want_buf: Vec::new(),
            pot_buf: Vec::new(),
            next_second: SimTime::from_secs(1),
            second_index: 0,
            usage_sec_us: vec![0.0; n],
            quota_sec_us: vec![0.0; n],
            peak_cpu: vec![0.0; n],
            peak_mem: vec![0u64; n],
            cpu_bucket_us: vec![0.0; n],
            bucket_secs: 0,
            containers,
        }
    }

    fn enqueue_stage(&mut self, request: usize, tier: usize, work_us: f64, at: SimTime) {
        // Round-robin over running replicas; fall back to plain
        // round-robin when none are running (requests queue at a
        // restarting replica and wait or time out).
        let members = &self.tier_members[tier];
        let start = self.rr[tier];
        let mut chosen = None;
        for k in 0..members.len() {
            let idx = members[(start + k) % members.len()];
            if self
                .cluster
                .container(self.containers[idx])
                .is_some_and(|c| c.is_running())
            {
                chosen = Some((idx, (start + k + 1) % members.len()));
                break;
            }
        }
        let (idx, next_rr) =
            chosen.unwrap_or((members[start % members.len()], (start + 1) % members.len()));
        self.rr[tier] = next_rr;
        if request != BG_REQUEST {
            self.stage_of[request] = idx;
        }
        self.queues[idx].push_back(StageJob {
            request,
            remaining_us: work_us,
            queued_at: at,
        });
    }

    fn fail_queue(&mut self, idx: usize, now: SimTime) {
        // The restarted container will re-run its warm-up burst.
        self.warm_until[idx] = now + SimDuration::from_secs(2) + STARTUP_LEN;
        let jobs: Vec<usize> = self.queues[idx].iter().map(|j| j.request).collect();
        self.queues[idx].clear();
        for r in jobs {
            if r != BG_REQUEST && !self.requests[r].finished {
                self.requests[r].finished = true;
                self.metrics.latency.record_failure();
            }
        }
    }

    /// Fails `request` at its exact deadline and removes its queued
    /// stage job. The expired job vacates its queue at the deadline, so
    /// the fluid window containing the deadline redistributes its
    /// would-be service to survivors (the tick-coupled path instead let
    /// it consume until the next window start).
    fn expire_request(&mut self, request: usize) {
        if self.requests[request].finished {
            return;
        }
        self.requests[request].finished = true;
        self.metrics.latency.record_failure();
        self.stats.timeout_failures += 1;
        let idx = self.stage_of[request];
        if idx != NO_STAGE {
            self.queues[idx].retain(|j| j.request != request);
        }
    }

    fn run(&mut self) -> MicroSimOutput {
        match self.cfg.engine {
            SimEngine::SerialTick => self.run_serial(),
            SimEngine::EventHeap => self.run_event(),
        }
        self.finalize()
    }

    /// The frozen fixed-tick reference loop (tick-coupled physics).
    fn run_serial(&mut self) {
        let end = SimTime::ZERO + WARMUP + self.cfg.duration;
        let period = self.period;
        let node_count = self.cluster.nodes().len();
        let mut t = SimTime::ZERO;
        while t < end {
            let t_next = t + period;
            self.cluster.tick(t);
            self.round_arrivals(t, t_next);
            self.round_bg_bernoulli(t);
            self.round_cull(t);
            self.round_grants(t);
            self.round_drain(t, t_next);
            self.round_account();
            self.round_memory(t_next);
            self.stats.rounds += 1;
            if self.collect_stats {
                for node in 0..node_count {
                    self.send_node_batch(node, t_next);
                }
            }
            self.controller_round(t_next);
            self.sample_seconds(t_next);
            t = t_next;
        }
    }

    /// The discrete-event driver. Mirrors the serial window grid
    /// exactly: `Round` events close windows at `P, 2P, …` while the
    /// window start precedes `end`; timers (timeouts, background
    /// chains, report flushes) fire at their own instants in between.
    fn run_event(&mut self) {
        let cfg = self.cfg;
        let period = self.period;
        let end = SimTime::ZERO + WARMUP + cfg.duration;
        // The grid's final window closes at `last_end`; no event beyond
        // it is scheduled, matching the serial loop's horizon.
        let rounds_total = end.as_micros().div_ceil(period.as_micros().max(1));
        let last_end = SimTime::ZERO + period * rounds_total;
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.push_keyed(SimTime::ZERO + period, ev_key(Ev::Round), Ev::Round);
        q.push_keyed(SimTime::ZERO + period, ev_key(Ev::PostRound), Ev::PostRound);
        if self.collect_stats {
            // One report timer per non-empty node; idle nodes never wake.
            for i in 0..self.active_nodes.len() {
                let node = self.active_nodes[i];
                let ev = Ev::NodeReport { node };
                let due = SimTime::ZERO + self.report_period_of(node) + self.report_phase_of(node);
                if due <= last_end {
                    q.push_keyed(due, ev_key(ev), ev);
                }
            }
        }
        if self.exact {
            for idx in 0..self.containers.len() {
                let interval = cfg.app.tiers[self.tier_of[idx]].bg_interval_s;
                if interval > 0.0 {
                    let gap = self.bg_streams[idx].exponential(1.0 / interval);
                    let due = SimTime::ZERO + SimDuration::from_secs_f64(gap);
                    let ev = Ev::Background { container: idx };
                    if due <= last_end {
                        q.push_keyed(due, ev_key(ev), ev);
                    }
                }
            }
        }
        while let Some((t, ev)) = q.pop() {
            debug_assert!(t <= last_end, "event past the run horizon");
            self.stats.heap_events += 1;
            match ev {
                Ev::Round => {
                    // Retrospective window close: the whole window
                    // [t - P, t) resolves now, with send/OOM timestamps
                    // at the window end and warm-up/cull checks at the
                    // window start — exactly like the serial loop.
                    let ws = t - period;
                    self.cluster.tick(ws);
                    self.round_arrivals(ws, t);
                    if !self.exact {
                        self.round_bg_bernoulli(ws);
                        self.round_cull(ws);
                    }
                    self.round_grants(ws);
                    self.round_drain(ws, t);
                    self.round_account();
                    self.round_memory(t);
                    self.stats.rounds += 1;
                    while let Some((due, req)) = self.pending_timeouts.pop() {
                        let tev = Ev::Timeout { request: req };
                        if due <= last_end {
                            q.push_keyed(due, ev_key(tev), tev);
                        }
                    }
                    if t < end {
                        q.push_keyed(t + period, ev_key(Ev::Round), Ev::Round);
                    }
                }
                Ev::Timeout { request } => self.expire_request(request),
                Ev::Background { container } => {
                    let tier = &cfg.app.tiers[self.tier_of[container]];
                    if self
                        .cluster
                        .container(self.containers[container])
                        .is_some_and(|c| c.is_running())
                    {
                        let mean_us = tier.bg_work_ms * 1_000.0;
                        let sigma2 = (1.0f64 + 0.25).ln();
                        let mu = mean_us.ln() - sigma2 / 2.0;
                        let work = self.bg_streams[container].lognormal(mu, sigma2.sqrt());
                        self.queues[container].push_front(StageJob {
                            request: BG_REQUEST,
                            remaining_us: work,
                            queued_at: t,
                        });
                        self.stats.bg_jobs += 1;
                    }
                    let gap = self.bg_streams[container].exponential(1.0 / tier.bg_interval_s);
                    let due = t + SimDuration::from_secs_f64(gap);
                    if due <= last_end {
                        q.push_keyed(due, ev_key(ev), ev);
                    }
                }
                Ev::NodeReport { node } => {
                    self.send_node_batch(node, t);
                    let due = t + self.report_period_of(node);
                    if due <= last_end {
                        q.push_keyed(due, ev_key(ev), ev);
                    }
                }
                Ev::PostRound => {
                    self.controller_round(t);
                    self.sample_seconds(t);
                    if t < end {
                        q.push_keyed(t + period, ev_key(Ev::PostRound), Ev::PostRound);
                    }
                }
            }
        }
    }

    /// Telemetry flush cadence of `node` (the report plan's multiplier
    /// over the base period; the base period without a plan).
    fn report_period_of(&self, node: usize) -> SimDuration {
        match &self.cfg.report_plan {
            Some(plan) if !plan.period_multipliers.is_empty() => {
                let m = plan.period_multipliers[node % plan.period_multipliers.len()].max(1);
                self.period * m as u64
            }
            _ => self.period,
        }
    }

    /// Deterministic per-node phase offset of the first report.
    fn report_phase_of(&self, node: usize) -> SimDuration {
        match &self.cfg.report_plan {
            Some(plan) if plan.jitter_frac > 0.0 => {
                let p = self.report_period_of(node).as_secs_f64();
                let mut r = SimRng::new(self.cfg.seed)
                    .fork(0x7265_7074) // "rept"
                    .fork(node as u64);
                SimDuration::from_secs_f64(r.uniform(0.0, plan.jitter_frac.min(1.0) * p))
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Window phase 1: request arrivals in `[win_start, win_end)`.
    fn round_arrivals(&mut self, win_start: SimTime, win_end: SimTime) {
        let warmup_end = SimTime::ZERO + WARMUP;
        if win_end <= warmup_end {
            return;
        }
        let from = if win_start < warmup_end {
            warmup_end
        } else {
            win_start
        };
        let arrivals = self.gen.arrivals_in(from, win_end);
        let timeout = self.cfg.request_timeout;
        for at in arrivals {
            let class = self.cfg.app.sample_class(&mut self.rng);
            let tier0 = self.cfg.app.classes[class].path[0];
            let work = self.cfg.app.tiers[tier0].sample_service_us(&mut self.rng);
            let req = self.requests.len();
            self.requests.push(ReqState {
                class,
                arrival: at,
                finished: false,
            });
            self.stage_of.push(NO_STAGE);
            if self.exact {
                self.pending_timeouts.push((at + timeout, req));
            }
            self.enqueue_stage(req, tier0, work, at);
        }
    }

    /// Tick-coupled background events: one Bernoulli draw per container
    /// per window (rate `period / bg_interval`, unclamped — kept only
    /// for [`SimPhysics::TickCoupled`] compatibility).
    fn round_bg_bernoulli(&mut self, win_start: SimTime) {
        let period = self.period;
        for idx in 0..self.containers.len() {
            let tier = &self.cfg.app.tiers[self.tier_of[idx]];
            if tier.bg_interval_s > 0.0
                && self
                    .rng_bg
                    .chance(period.as_secs_f64() / tier.bg_interval_s)
                && self
                    .cluster
                    .container(self.containers[idx])
                    .is_some_and(|c| c.is_running())
            {
                let mean_us = tier.bg_work_ms * 1_000.0;
                let sigma2 = (1.0f64 + 0.25).ln();
                let mu = mean_us.ln() - sigma2 / 2.0;
                let work = self.rng_bg.lognormal(mu, sigma2.sqrt());
                self.queues[idx].push_front(StageJob {
                    request: BG_REQUEST,
                    remaining_us: work,
                    queued_at: win_start,
                });
                self.stats.bg_jobs += 1;
            }
        }
    }

    /// Tick-coupled timeout culling at the window start.
    fn round_cull(&mut self, cutoff: SimTime) {
        let timeout = self.cfg.request_timeout;
        for idx in 0..self.containers.len() {
            let requests = &self.requests;
            let dropped = cull_queue(&mut self.queues[idx], |r| {
                r != BG_REQUEST && requests[r].arrival + timeout < cutoff
            });
            for r in dropped {
                if !self.requests[r].finished {
                    self.requests[r].finished = true;
                    self.metrics.latency.record_failure();
                    self.stats.timeout_failures += 1;
                }
            }
        }
    }

    /// Window phase 3: per-node max–min fair CPU grants over the static
    /// membership (no fleet-wide scan).
    fn round_grants(&mut self, win_start: SimTime) {
        let period_us = self.period.as_micros() as f64;
        self.grant.fill(0.0);
        let capacity = self.cfg.node_cores as f64 * period_us;
        for ni in 0..self.active_nodes.len() {
            let node = self.active_nodes[ni];
            self.members_buf.clear();
            self.want_buf.clear();
            self.pot_buf.clear();
            for mi in 0..self.node_members[node].len() {
                let idx = self.node_members[node][mi];
                let c = self
                    .cluster
                    .container(self.containers[idx])
                    .expect("container");
                if !c.is_running() {
                    continue;
                }
                debug_assert_eq!(c.node().as_u64() as usize, node, "placement is static");
                let tier = &self.cfg.app.tiers[self.tier_of[idx]];
                let potential = c
                    .cpu
                    .runtime_remaining_us()
                    .min(tier.parallelism * period_us);
                let startup_us = if win_start < self.warm_until[idx] {
                    tier.startup_cpu_cores * period_us
                } else {
                    0.0
                };
                self.members_buf.push(idx);
                self.pot_buf.push(potential);
                self.want_buf
                    .push((backlog_us(&self.queues[idx]) + startup_us).min(potential));
            }
            let total_want: f64 = self.want_buf.iter().sum();
            if total_want <= capacity {
                // Uncontended: every container may burst up to its
                // quota/parallelism mid-period.
                for (k, &idx) in self.members_buf.iter().enumerate() {
                    self.grant[idx] = self.pot_buf[k];
                }
            } else {
                let shares = arbitrate(capacity, &self.want_buf);
                for (k, &idx) in self.members_buf.iter().enumerate() {
                    self.grant[idx] = shares[k];
                }
            }
        }
    }

    /// Window phase 4: drain queues in DAG (tier) order.
    fn round_drain(&mut self, win_start: SimTime, win_end: SimTime) {
        let period_us = self.period.as_micros() as f64;
        self.consumed.fill(0.0);
        for tier in 0..self.cfg.app.tiers.len() {
            for mi in 0..self.tier_members[tier].len() {
                let idx = self.tier_members[tier][mi];
                if self.grant[idx] <= 0.0 {
                    continue;
                }
                let rate = self.cfg.app.tiers[tier].parallelism;
                let out = drain_fifo(
                    &mut self.queues[idx],
                    win_start,
                    win_end,
                    rate,
                    self.grant[idx],
                );
                // Warm-up burst soaks up whatever the requests left.
                let startup_us = if win_start < self.warm_until[idx] {
                    self.cfg.app.tiers[tier].startup_cpu_cores * period_us
                } else {
                    0.0
                };
                self.consumed[idx] =
                    out.consumed_us + startup_us.min(self.grant[idx] - out.consumed_us).max(0.0);
                for (req, ctime) in out.completions {
                    if req == BG_REQUEST || self.requests[req].finished {
                        continue;
                    }
                    let class = self.requests[req].class;
                    let path = &self.cfg.app.classes[class].path;
                    let pos = path.iter().position(|&p| p == tier).unwrap_or(0);
                    if pos + 1 < path.len() {
                        let next_tier = path[pos + 1];
                        let work = self.cfg.app.tiers[next_tier].sample_service_us(&mut self.rng);
                        self.enqueue_stage(req, next_tier, work, ctime);
                    } else {
                        self.requests[req].finished = true;
                        let latency = ctime.duration_since(self.requests[req].arrival);
                        self.metrics.latency.record_success(latency);
                    }
                }
            }
        }
    }

    /// Window phase 5: CFS accounting + telemetry collection. Telemetry
    /// entries accumulate per node and leave on the node's next report.
    fn round_account(&mut self) {
        let period_us = self.period.as_micros() as f64;
        for idx in 0..self.containers.len() {
            let cid = self.containers[idx];
            let running = self.cluster.container(cid).is_some_and(|c| c.is_running());
            let backlog = backlog_us(&self.queues[idx]);
            let c = self.cluster.container_mut(cid).expect("container");
            if self.consumed[idx] > 0.0 {
                c.cpu.consume(self.consumed[idx]);
            }
            if running && backlog > 1.0 && c.cpu.runtime_remaining_us() <= period_us * 0.01 {
                c.cpu.mark_throttled();
            }
            let stats = c.cpu.end_period();
            if self.collect_stats && running {
                let node = c.node().as_u64() as usize;
                self.pending_stats[node].push(CpuStatsEntry {
                    container: cid,
                    stats,
                });
            }
            self.usage_sec_us[idx] += stats.usage_us;
            self.quota_sec_us[idx] += stats.quota_cores * period_us;
        }
    }

    /// Window phase 6: memory demand.
    fn round_memory(&mut self, now: SimTime) {
        for idx in 0..self.containers.len() {
            let tier = &self.cfg.app.tiers[self.tier_of[idx]];
            let busy = self.consumed[idx] > 0.0 || !self.queues[idx].is_empty();
            let cache_max = (tier.mem_cache_mib * MIB) as f64;
            if busy {
                self.cache_bytes[idx] += (cache_max - self.cache_bytes[idx]) * CACHE_FILL;
            } else {
                self.cache_bytes[idx] *= CACHE_DECAY;
            }
            // Only admitted (in-service) requests hold heap memory;
            // the rest of the queue waits in socket buffers.
            let inflight = (self.queues[idx].len() as u64).min(128);
            let target = tier.mem_base_mib * MIB
                + inflight * tier.mem_per_inflight_kib * 1024
                + self.cache_bytes[idx] as u64;
            self.apply_memory_target(idx, target, now);
        }
    }

    /// Flushes `node`'s batched telemetry: the node's Agent coalesces
    /// its containers' period stats into ONE datagram (entries in
    /// container order), so the UDP envelope is paid once per node per
    /// report instead of once per container — the §VI-I batching
    /// optimisation. The fault fabric sees one message per node: a drop
    /// loses the whole node's batch, matching a lost datagram.
    fn send_node_batch(&mut self, node: usize, now: SimTime) {
        let mut killed: Vec<ContainerId> = Vec::new();
        if let Mode::Escra {
            controller,
            agents,
            accountant,
            net,
        } = &mut self.mode
        {
            if self.pending_stats[node].is_empty() {
                return;
            }
            let entries = std::mem::take(&mut self.pending_stats[node]);
            let node_id = NodeId::new(node as u64);
            // Columnar and row form carry the same per-entry wire bytes,
            // so the §VI-I accounting is identical either way; the
            // columnar form additionally quantises stats to integer µs
            // (exact for CFS-shaped values), hence the opt-in.
            let msg = if self.cfg.columnar_telemetry {
                ToController::CpuStatsColumns {
                    node: node_id,
                    columns: escra_core::CpuStatsColumns::from_entries(&entries),
                }
            } else {
                ToController::CpuStatsBatch {
                    node: node_id,
                    entries,
                }
            };
            net.send(
                now,
                node_addr(node_id),
                controller_addr(),
                Envelope::ToCtl(msg),
                accountant,
            );
            pump_control_plane(
                &mut self.cluster,
                agents,
                controller,
                net,
                accountant,
                now,
                &mut killed,
            );
        } else {
            return;
        }
        for k in killed {
            if let Some(idx) = self.containers.iter().position(|c| *c == k) {
                self.fail_queue(idx, now);
                self.cache_bytes[idx] = 0.0;
            }
        }
    }

    /// Periodic reclamation loop + grant-retry timers (Escra only).
    fn controller_round(&mut self, now: SimTime) {
        let mut killed: Vec<ContainerId> = Vec::new();
        if let Mode::Escra {
            controller,
            agents,
            accountant,
            net,
        } = &mut self.mode
        {
            let mut actions = controller.tick(now);
            dispatch_actions(
                &mut actions,
                &mut self.cluster,
                net,
                accountant,
                now,
                &mut killed,
            );
            pump_control_plane(
                &mut self.cluster,
                agents,
                controller,
                net,
                accountant,
                now,
                &mut killed,
            );
        } else {
            return;
        }
        for k in killed {
            if let Some(idx) = self.containers.iter().position(|c| *c == k) {
                self.fail_queue(idx, now);
                self.cache_bytes[idx] = 0.0;
            }
        }
    }

    /// Window phase 8: per-second slack/limit sampling and periodic
    /// scaler updates, for every whole second up to `upto`.
    fn sample_seconds(&mut self, upto: SimTime) {
        let warmup_end = SimTime::ZERO + WARMUP;
        let n = self.containers.len();
        while self.next_second <= upto {
            let next_second = self.next_second;
            self.second_index += 1;
            let mut agg_cpu_limit = 0.0;
            let mut agg_mem_limit = 0.0;
            for idx in 0..n {
                let usage_cores = self.usage_sec_us[idx] / 1e6;
                let c = self
                    .cluster
                    .container(self.containers[idx])
                    .expect("container");
                // Time-weighted limit over the second, like the
                // per-second aggregation of the paper's tooling.
                let quota = self.quota_sec_us[idx] / 1e6;
                let mem_limit = c.mem.limit_bytes();
                let mem_usage = c.mem.usage_bytes();
                agg_cpu_limit += quota;
                agg_mem_limit += mem_limit as f64 / MIB as f64;
                if next_second > warmup_end {
                    self.metrics.slack.record(
                        (quota - usage_cores).max(0.0),
                        mem_limit.saturating_sub(mem_usage) as f64 / MIB as f64,
                    );
                }
                self.cpu_bucket_us[idx] += self.usage_sec_us[idx];
                self.peak_mem[idx] = self.peak_mem[idx].max(mem_usage);
                // Feed periodic scalers a 1 s sample (scalers start
                // with the workload, not during the idle warm-up).
                if next_second > warmup_end {
                    if let Mode::Periodic { scaler, .. } = &mut self.mode {
                        let sample = UsageSample {
                            cpu_cores: usage_cores,
                            mem_bytes: mem_usage,
                        };
                        // The harness knows the physical node capacity;
                        // catch malformed telemetry before the scaler.
                        validate_observation(&sample, self.cfg.node_cores as f64);
                        scaler.observe(self.containers[idx], sample);
                    }
                }
                self.usage_sec_us[idx] = 0.0;
                self.quota_sec_us[idx] = 0.0;
            }
            if next_second > warmup_end {
                self.metrics
                    .record_limits(next_second, agg_cpu_limit, agg_mem_limit);
            }
            // Close a 5-second profiling bucket: the peak recorded is
            // the max of 5 s *means*, as coarse monitoring reports.
            self.bucket_secs += 1;
            if self.bucket_secs == 5 {
                for idx in 0..n {
                    let mean_cores = self.cpu_bucket_us[idx] / (5.0 * 1e6);
                    self.peak_cpu[idx] = self.peak_cpu[idx].max(mean_cores);
                    self.cpu_bucket_us[idx] = 0.0;
                }
                self.bucket_secs = 0;
            }
            // Periodic scaler recommendation on its update boundary.
            if let Mode::Periodic {
                scaler,
                update_every_secs,
                restart_on_update,
            } = &mut self.mode
            {
                if next_second > warmup_end && self.second_index.is_multiple_of(*update_every_secs)
                {
                    let updates = scaler.recommend();
                    let restart = *restart_on_update;
                    apply_limit_updates(&mut self.cluster, &updates, restart, next_second);
                    if restart {
                        for u in &updates {
                            if u.requires_restart {
                                if let Some(idx) =
                                    self.containers.iter().position(|c| *c == u.container)
                                {
                                    self.fail_queue(idx, next_second);
                                    self.cache_bytes[idx] = 0.0;
                                }
                            }
                        }
                    }
                }
            }
            self.next_second += SimDuration::from_secs(1);
        }
    }

    fn finalize(&mut self) -> MicroSimOutput {
        let n = self.containers.len();
        self.metrics.duration = self.cfg.duration;
        self.metrics.oom_kills = self.cluster.total_oom_kills();
        let profiles = (0..n)
            .map(|idx| ContainerProfile {
                peak_cpu_cores: self.peak_cpu[idx],
                peak_mem_bytes: self.peak_mem[idx],
            })
            .collect();
        let (network, controller_stats, fault_stats) = match &self.mode {
            Mode::Escra {
                controller,
                accountant,
                net,
                ..
            } => (
                Some(accountant.clone()),
                Some(controller.stats()),
                Some(net.injector.stats()),
            ),
            _ => (None, None, None),
        };
        MicroSimOutput {
            metrics: std::mem::replace(&mut self.metrics, RunMetrics::new("done")),
            network,
            controller_stats,
            fault_stats,
            profiles,
            sim: self.stats,
        }
    }

    /// Brings a container's memory usage toward `target`, handling OOMs
    /// per policy.
    fn apply_memory_target(&mut self, idx: usize, target: u64, now: SimTime) {
        let cid = self.containers[idx];
        let is_running = self.cluster.container(cid).is_some_and(|c| c.is_running());
        if !is_running {
            return;
        }
        let usage = self
            .cluster
            .container(cid)
            .expect("container")
            .mem
            .usage_bytes();
        if target <= usage {
            self.cluster
                .container_mut(cid)
                .expect("container")
                .mem
                .uncharge(usage - target);
            return;
        }
        let delta = target - usage;
        let outcome = self
            .cluster
            .container_mut(cid)
            .expect("container")
            .mem
            .try_charge(delta);
        if let ChargeOutcome::WouldOom { shortfall_bytes } = outcome {
            match &mut self.mode {
                Mode::Escra {
                    controller,
                    agents,
                    accountant,
                    net,
                } => {
                    let c = self.cluster.container(cid).expect("container");
                    let node = c.node();
                    let current_limit_bytes = c.mem.limit_bytes();
                    net.send(
                        now,
                        node_addr(node),
                        controller_addr(),
                        Envelope::ToCtl(ToController::OomEvent {
                            container: cid,
                            shortfall_bytes,
                            current_limit_bytes,
                        }),
                        accountant,
                    );
                    let mut killed: Vec<ContainerId> = Vec::new();
                    pump_control_plane(
                        &mut self.cluster,
                        agents,
                        controller,
                        net,
                        accountant,
                        now,
                        &mut killed,
                    );
                    let trapped_killed = killed.contains(&cid);
                    for k in killed {
                        if let Some(kidx) = self.containers.iter().position(|c| *c == k) {
                            self.fail_queue(kidx, now);
                            self.cache_bytes[kidx] = 0.0;
                        }
                    }
                    if !trapped_killed {
                        // Limit raised (or, under faults, the grant was
                        // lost and the container stays trapped at the old
                        // limit to re-OOM next period): retry the charge
                        // (the paper's "request lookup penalty" is
                        // sub-millisecond).
                        let _ = self
                            .cluster
                            .container_mut(cid)
                            .expect("container")
                            .mem
                            .try_charge(delta);
                    }
                }
                Mode::Profile => {
                    // Profiling runs are uncapped; grow the limit.
                    let c = self.cluster.container_mut(cid).expect("container");
                    let new_limit = c.mem.limit_bytes() + shortfall_bytes + 64 * MIB;
                    c.mem.set_limit_bytes(new_limit);
                    let _ = c.mem.try_charge(delta);
                }
                Mode::Static | Mode::Periodic { .. } => {
                    // Vanilla kernel behaviour: OOM kill + restart. A
                    // periodic scaler learns about the kill (Autopilot
                    // bumps its memory estimate on OOM events).
                    let limit = self
                        .cluster
                        .container(cid)
                        .expect("container")
                        .mem
                        .limit_bytes();
                    if let Mode::Periodic { scaler, .. } = &mut self.mode {
                        scaler.on_oom(cid, limit);
                    }
                    self.cluster.oom_kill(cid, now).expect("known container");
                    self.fail_queue(idx, now);
                    self.cache_bytes[idx] = 0.0;
                }
            }
        }
    }
}

/// O(1) agent lookup: agents are created in node-id order, so the node
/// id doubles as the slot index; falls back to a scan if the layout
/// ever changes.
pub(crate) fn agent_for(agents: &mut [Agent], node: NodeId) -> Option<&mut Agent> {
    let idx = node.as_u64() as usize;
    if agents.get(idx).is_some_and(|a| a.node() == node) {
        return agents.get_mut(idx);
    }
    agents.iter_mut().find(|a| a.node() == node)
}

/// Applies one controller action through the right agent, bypassing the
/// fault fabric (used only for deploy-time registration commands).
fn apply_action(
    cluster: &mut Cluster,
    agents: &mut [Agent],
    action: &Action,
    accountant: &mut BandwidthAccountant,
    now: SimTime,
) -> Option<Vec<ReclaimEntry>> {
    match action {
        Action::Agent { node, cmd } => {
            accountant.record(
                now,
                match cmd {
                    ToAgent::ReclaimMemory { .. } => RECLAIM_RPC_WIRE_BYTES,
                    _ => LIMIT_UPDATE_WIRE_BYTES,
                },
            );
            match agent_for(agents, *node) {
                Some(agent) => match agent.apply(cluster, *cmd) {
                    AgentReport::Reclaimed(entries) => Some(entries),
                    AgentReport::Applied | AgentReport::Stale => None,
                },
                None => None,
            }
        }
        Action::KillContainer(_) => None,
    }
}

/// Routes controller actions onto the fabric: Agent commands travel the
/// wire (and can be dropped/duplicated/delayed); kills are local to the
/// Controller's authority and take effect immediately.
fn dispatch_actions(
    actions: &mut Vec<Action>,
    cluster: &mut Cluster,
    net: &mut ControlPlane,
    accountant: &mut BandwidthAccountant,
    now: SimTime,
    killed: &mut Vec<ContainerId>,
) {
    for action in actions.drain(..) {
        match action {
            Action::Agent { node, cmd } => net.send(
                now,
                controller_addr(),
                node_addr(node),
                Envelope::ToNode(node, cmd),
                accountant,
            ),
            Action::KillContainer(cid) => {
                let _ = cluster.oom_kill(cid, now);
                killed.push(cid);
            }
        }
    }
}

/// Delivers every control-plane message due at `now` until the fabric is
/// quiescent, feeding aggregated reclamation reports back into the
/// controller exactly as the synchronous pre-fault simulator did: all
/// sweep responses arriving in one delivery round are merged into one
/// `on_reclaim_report` call, so grant-vs-kill decisions see the whole
/// round's reclaimed total.
#[allow(clippy::too_many_arguments)] // the split borrow of Sim's fields
fn pump_control_plane(
    cluster: &mut Cluster,
    agents: &mut [Agent],
    controller: &mut Controller,
    net: &mut ControlPlane,
    accountant: &mut BandwidthAccountant,
    now: SimTime,
    killed: &mut Vec<ContainerId>,
) {
    // Backstop against a (non-existent today) message cycle; real
    // cascades are grant → ack → done and terminate in a few rounds.
    let mut guard = 0u32;
    // One action buffer for the whole pump: the steady-state telemetry
    // path through `handle_into` then allocates nothing per message.
    let mut actions: Vec<Action> = Vec::new();
    loop {
        while let Some((_, env)) = net.delayed.pop_due(now) {
            net.ready.push_back(env);
        }
        if net.ready.is_empty() {
            break;
        }
        let mut reclaim_entries: Vec<ReclaimEntry> = Vec::new();
        while let Some(env) = net.ready.pop_front() {
            guard += 1;
            if guard > 100_000 {
                return;
            }
            match env {
                Envelope::ToCtl(msg) => {
                    controller.handle_into(now, msg, &mut actions);
                    dispatch_actions(&mut actions, cluster, net, accountant, now, killed);
                }
                Envelope::ToNode(node, cmd) => {
                    let report = agent_for(agents, node).map(|a| a.apply(cluster, cmd));
                    match report {
                        Some(AgentReport::Applied) => {
                            if let ToAgent::SetMemLimit { container, seq, .. } = cmd {
                                net.send(
                                    now,
                                    node_addr(node),
                                    controller_addr(),
                                    Envelope::ToCtl(ToController::LimitAck { container, seq }),
                                    accountant,
                                );
                            }
                        }
                        Some(AgentReport::Reclaimed(entries)) => net.send(
                            now,
                            node_addr(node),
                            controller_addr(),
                            Envelope::Report(entries),
                            accountant,
                        ),
                        Some(AgentReport::Stale) | None => {}
                    }
                }
                Envelope::Report(entries) => reclaim_entries.extend(entries),
            }
        }
        if !reclaim_entries.is_empty() {
            let mut actions = controller.on_reclaim_report(now, &reclaim_entries);
            dispatch_actions(&mut actions, cluster, net, accountant, now, killed);
        }
    }
}

/// Applies baseline limit updates directly to cgroups. Shared with the
/// serverless/trace drivers' baseline-scaler modes.
pub(crate) fn apply_limit_updates(
    cluster: &mut Cluster,
    updates: &[LimitUpdate],
    restart: bool,
    now: SimTime,
) {
    for u in updates {
        if let Some(c) = cluster.container_mut(u.container) {
            if let Some(cpu) = u.cpu_limit_cores {
                c.cpu.set_quota_cores(cpu);
            }
            if let Some(mem) = u.mem_limit_bytes {
                c.mem.set_limit_bytes(mem.max(1));
            }
            if restart && u.requires_restart {
                c.restart(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_core::EscraConfig;
    use escra_workloads::{hipster_shop, media_microservice, teastore, train_ticket};

    fn quick_cfg(policy: Policy) -> MicroSimConfig {
        MicroSimConfig::new(teastore(), WorkloadKind::Fixed { rps: 150.0 }, policy, 42)
            .with_duration(SimDuration::from_secs(12))
    }

    /// Everything observable about a run except the engine counters.
    fn digest(out: &MicroSimOutput) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            out.metrics, out.network, out.controller_stats, out.fault_stats, out.profiles
        )
    }

    fn run_pair(cfg: &MicroSimConfig) -> (MicroSimOutput, MicroSimOutput) {
        let serial = run(&cfg.clone().with_engine(SimEngine::SerialTick));
        let heap = run(&cfg
            .clone()
            .with_engine(SimEngine::EventHeap)
            .with_physics(SimPhysics::TickCoupled));
        (serial, heap)
    }

    #[test]
    fn escra_run_completes_requests() {
        let out = run(&quick_cfg(Policy::escra_default()));
        let m = &out.metrics;
        // 150 rps over 12s ~ 1800 requests; most must succeed.
        assert!(
            m.latency.successes() > 1_500,
            "successes {}",
            m.latency.successes()
        );
        assert!(m.throughput() > 120.0, "tput {}", m.throughput());
        assert!(m.latency.p(50.0) > 0.0);
        assert_eq!(m.oom_kills, 0, "Escra must absorb all OOMs");
        assert!(out.network.expect("escra network").total_bytes() > 0);
        assert!(out.controller_stats.expect("stats").cpu_stats_ingested > 0);
        assert!(out.sim.rounds > 0 && out.sim.heap_events > out.sim.rounds);
    }

    #[test]
    fn static_run_completes_requests() {
        let out = run(&quick_cfg(Policy::static_1_5x()));
        assert!(out.metrics.latency.successes() > 1_400);
        assert!(out.network.is_none());
    }

    #[test]
    fn autopilot_run_completes_requests() {
        let out = run(&quick_cfg(Policy::autopilot_default()));
        assert!(
            out.metrics.latency.successes() > 1_200,
            "successes {} failures {} ooms {}",
            out.metrics.latency.successes(),
            out.metrics.latency.failures(),
            out.metrics.oom_kills
        );
    }

    #[test]
    fn escra_has_less_cpu_slack_than_static() {
        let escra = run(&quick_cfg(Policy::escra_default()));
        let st = run(&quick_cfg(Policy::static_1_5x()));
        let e50 = escra.metrics.slack.cpu_p(50.0);
        let s50 = st.metrics.slack.cpu_p(50.0);
        assert!(
            e50 < s50,
            "escra median cpu slack {e50} should be below static {s50}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&quick_cfg(Policy::escra_default()));
        let b = run(&quick_cfg(Policy::escra_default()));
        assert_eq!(digest(&a), digest(&b));
        assert_eq!(a.sim, b.sim);
    }

    #[test]
    fn columnar_telemetry_runs_are_deterministic_and_healthy() {
        let cfg = quick_cfg(Policy::escra_default()).with_columnar_telemetry(true);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(digest(&a), digest(&b), "columnar runs must be reproducible");
        // The columnar wire form changes the encoding, not the cadence:
        // the Controller ingests exactly as many period reports as the
        // row-form run, absorbs all OOMs, and serves the workload.
        let rows = run(&quick_cfg(Policy::escra_default()));
        assert_eq!(
            a.controller_stats.as_ref().unwrap().cpu_stats_ingested,
            rows.controller_stats.as_ref().unwrap().cpu_stats_ingested
        );
        assert_eq!(a.metrics.oom_kills, 0);
        assert!(a.metrics.latency.successes() > 1_500);
    }

    #[test]
    fn profile_run_measures_peaks() {
        let cfg = quick_cfg(Policy::static_1_5x());
        let profiles = profile_run(&cfg);
        assert_eq!(profiles.len(), cfg.app.container_count());
        // The webui tier (first containers) must show real usage.
        assert!(profiles[0].peak_cpu_cores > 0.05);
        assert!(profiles[0].peak_mem_bytes > 0);
    }

    #[test]
    fn event_heap_compat_is_bit_identical_to_serial_tick() {
        for policy in [Policy::escra_default(), Policy::static_1_5x()] {
            let (serial, heap) = run_pair(&quick_cfg(policy.clone()));
            assert_eq!(
                digest(&serial),
                digest(&heap),
                "engine divergence under {}",
                policy.name()
            );
            assert_eq!(
                serial.metrics.latency.failures(),
                heap.metrics.latency.failures()
            );
            assert_eq!(serial.sim.rounds, heap.sim.rounds);
            assert_eq!(serial.sim.bg_jobs, heap.sim.bg_jobs);
        }
    }

    #[test]
    fn event_heap_identity_across_apps() {
        // Smoke subset of the four paper apps: the gate for switching
        // the experiment bins onto the event engine.
        for app in [
            teastore(),
            hipster_shop(),
            media_microservice(),
            train_ticket(),
        ] {
            let name = app.name.clone();
            let cfg = MicroSimConfig::new(
                app,
                WorkloadKind::Fixed { rps: 120.0 },
                Policy::escra_default(),
                7,
            )
            .with_duration(SimDuration::from_secs(6));
            let (serial, heap) = run_pair(&cfg);
            assert_eq!(digest(&serial), digest(&heap), "divergence on {name}");
        }
    }

    /// A single 4-core node far below the workload's demand: requests
    /// queue past their 2 s timeout and failures are plentiful.
    fn overloaded_cfg() -> MicroSimConfig {
        let mut cfg = MicroSimConfig::new(
            teastore(),
            WorkloadKind::Fixed { rps: 400.0 },
            Policy::escra_default(),
            11,
        )
        .with_duration(SimDuration::from_secs(10));
        cfg.worker_nodes = 1;
        cfg.node_cores = 4;
        cfg.request_timeout = SimDuration::from_secs(2);
        cfg
    }

    #[test]
    fn compat_failure_counts_match_serial_reference() {
        // An overloaded run with a short timeout so failures are
        // plentiful; the event engine must reproduce the serial tick's
        // failure count exactly under tick-coupled physics.
        let cfg = overloaded_cfg();
        let (serial, heap) = run_pair(&cfg);
        assert!(
            serial.metrics.latency.failures() > 0,
            "scenario not overloaded"
        );
        assert_eq!(
            serial.metrics.latency.failures(),
            heap.metrics.latency.failures()
        );
    }

    fn escra_with_period(ms: u64) -> Policy {
        let mut ecfg = EscraConfig::default();
        ecfg.report_period = SimDuration::from_millis(ms);
        Policy::Escra(ecfg)
    }

    #[test]
    fn bg_rate_is_invariant_across_report_periods() {
        // The tick-coupled Bernoulli draw distorts the background rate
        // with the report period; the exact exponential chains make it
        // identical (same per-container streams, period-independent).
        let mut counts = Vec::new();
        for ms in [50u64, 100, 200] {
            let cfg = MicroSimConfig::new(
                teastore(),
                WorkloadKind::Fixed { rps: 100.0 },
                escra_with_period(ms),
                5,
            )
            .with_duration(SimDuration::from_secs(10));
            let out = run(&cfg);
            assert!(out.sim.bg_jobs > 0, "no background work at {ms}ms");
            counts.push(out.sim.bg_jobs);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "bg counts vary with report period: {counts:?}"
        );
    }

    #[test]
    fn tick_coupled_bg_rate_saturates_with_period() {
        // Documents the bug the exact physics fixes: the legacy
        // Bernoulli-per-tick draw clamps once `period >= bg_interval`
        // (the unclamped probability exceeds 1), so coarse report
        // periods inject background work at a distorted, period-coupled
        // rate — one job per container per tick, however long the tick.
        let mut rates = Vec::new();
        for ms in [3_000u64, 6_000] {
            let cfg = MicroSimConfig::new(
                teastore(),
                WorkloadKind::Fixed { rps: 100.0 },
                escra_with_period(ms),
                5,
            )
            .with_duration(SimDuration::from_secs(10))
            .with_physics(SimPhysics::TickCoupled);
            let out = run(&cfg);
            rates.push(out.sim.bg_jobs as f64 / out.sim.rounds as f64);
        }
        assert!(
            (rates[0] - rates[1]).abs() < 1.5,
            "saturated: ~1 job/container/tick regardless of period ({rates:?})"
        );
        // Per unit *time* the rates differ by ~2x — the distortion.
        assert!(
            rates[0] / 3.0 > 1.5 * (rates[1] / 6.0),
            "expected period-coupled time-rate drift ({rates:?})"
        );
    }

    #[test]
    fn exact_timeouts_bound_success_latency() {
        // No recorded success may exceed the request timeout: the
        // Timeout event fires before any Round that could complete the
        // request later.
        let cfg = overloaded_cfg();
        let out = run(&cfg);
        assert!(out.sim.timeout_failures > 0, "scenario not overloaded");
        // Kill-induced queue failures may add to the total.
        assert!(out.sim.timeout_failures <= out.metrics.latency.failures());
        let max_ms = out.metrics.latency.p(100.0);
        assert!(
            max_ms <= cfg.request_timeout.as_secs_f64() * 1e3 + 1e-6,
            "success latency {max_ms}ms exceeds the {:?} timeout",
            cfg.request_timeout
        );
    }

    #[test]
    fn report_plan_runs_are_deterministic_and_complete() {
        let plan = ReportPlan {
            period_multipliers: vec![1, 2, 3],
            jitter_frac: 0.5,
        };
        let cfg = quick_cfg(Policy::escra_default()).with_report_plan(plan);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(digest(&a), digest(&b));
        assert!(a.metrics.latency.successes() > 1_400);
        // Slower reporters batch multiple windows per datagram: fewer
        // messages than the aligned schedule, but none lost.
        let aligned = run(&quick_cfg(Policy::escra_default()));
        assert!(
            a.network.as_ref().unwrap().total_bytes()
                < aligned.network.as_ref().unwrap().total_bytes(),
            "jittered/slow reports should shrink control-plane bytes"
        );
    }

    #[test]
    fn randomized_event_heap_runs_are_deterministic() {
        // Property: for randomly drawn configurations, two event-heap
        // runs are identical. Parameters are drawn from the vendored
        // proptest shim's deterministic RNG.
        use proptest::test_runner::TestRng;
        let mut rng = TestRng::from_name("randomized_event_heap_runs_are_deterministic");
        for case in 0..4 {
            let period_ms = [50u64, 100, 150][rng.next_u64() as usize % 3];
            let physics = if rng.next_u64() % 2 == 0 {
                SimPhysics::Exact
            } else {
                SimPhysics::TickCoupled
            };
            let seed = rng.next_u64();
            let cfg = MicroSimConfig::new(
                teastore(),
                WorkloadKind::Fixed { rps: 120.0 },
                escra_with_period(period_ms),
                seed,
            )
            .with_duration(SimDuration::from_secs(4))
            .with_physics(physics);
            let a = run(&cfg);
            let b = run(&cfg);
            assert_eq!(
                digest(&a),
                digest(&b),
                "case {case}: period {period_ms}ms physics {physics:?} seed {seed}"
            );
        }
    }
}
