//! Deterministic parallel sweep runner for the benchmark grid.
//!
//! Every paper experiment is a grid of independent scenarios — a
//! benchmark × workload cell of Table I / Fig. 4, a CDF panel of
//! Figs. 5–6, one report-period setting of the sweep. Each scenario is a
//! self-contained microsim: it owns its cluster, its Controller, and a
//! scenario-local [`SimRng`] stream, and shares nothing with its
//! neighbours. That independence is what makes the grid safe to run on a
//! thread pool *without changing a single output bit*:
//!
//! 1. **Seed isolation.** [`scenario_seed`] derives each scenario's seed
//!    with [`SimRng::fork`] from the master seed and the scenario's grid
//!    index, so a scenario's random stream depends only on `(master,
//!    index)` — never on which thread ran it, in what order, or how many
//!    workers the pool had.
//! 2. **Slot-indexed collection.** Each worker writes its result into
//!    the slot of its scenario index; the caller reads the slots back in
//!    index order. The output sequence is therefore identical to a
//!    serial `map` over the scenarios.
//!
//! [`run_sweep`] is consequently *bit-identical* to [`run_serial`] for
//! any scenario function that is itself a pure function of
//! `(input, seed)` — the property CI asserts via the `--serial` flag of
//! the figure binaries.

use escra_simcore::rng::SimRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of an experiment grid: its position, its fork-derived seed,
/// and the experiment-specific input (app, workload, config, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario<I> {
    /// Position in the grid, in serial iteration order.
    pub index: usize,
    /// Scenario-local seed derived via [`scenario_seed`].
    pub seed: u64,
    /// The experiment-specific payload.
    pub input: I,
}

/// Derives the seed for the scenario at `index` from the sweep's master
/// seed: `SimRng::new(master).fork(index)`, collapsed to a `u64`.
///
/// Deterministic in `(master, index)` alone, and distinct indices give
/// independent streams, so scenarios can run in any order — or
/// concurrently — without perturbing one another's draws.
pub fn scenario_seed(master: u64, index: usize) -> u64 {
    SimRng::new(master).fork(index as u64).next_u64()
}

/// Pairs each input with its grid index and fork-derived seed.
pub fn scenarios<I>(master: u64, inputs: Vec<I>) -> Vec<Scenario<I>> {
    inputs
        .into_iter()
        .enumerate()
        .map(|(index, input)| Scenario {
            index,
            seed: scenario_seed(master, index),
            input,
        })
        .collect()
}

/// Runs every scenario on a pool of `threads` workers and returns the
/// results in scenario-index order — bit-identical to [`run_serial`]
/// (see module docs for why).
///
/// `threads` is clamped to `[1, scenarios.len()]`; with `threads == 1`
/// the pool degenerates to serial execution on one worker thread.
pub fn run_sweep<I, T, F>(scenarios: Vec<Scenario<I>>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(&Scenario<I>) -> T + Sync,
{
    let n = scenarios.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work: Vec<Mutex<Option<Scenario<I>>>> =
        scenarios.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let scenario = work[i]
                    .lock()
                    .expect("scenario slot poisoned")
                    .take()
                    .expect("each work item is claimed exactly once");
                let result = f(&scenario);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every scenario produced a result")
        })
        .collect()
}

/// Reference serial execution: a plain in-order `map` over the
/// scenarios. [`run_sweep`] must match this bit-for-bit.
pub fn run_serial<I, T, F>(scenarios: Vec<Scenario<I>>, f: F) -> Vec<T>
where
    F: Fn(&Scenario<I>) -> T,
{
    scenarios.iter().map(f).collect()
}

/// Default worker count for sweeps: the machine's available parallelism,
/// capped at 8 (the grid sizes here never benefit from more).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_depend_only_on_master_and_index() {
        assert_eq!(scenario_seed(42, 3), scenario_seed(42, 3));
        assert_ne!(scenario_seed(42, 3), scenario_seed(42, 4));
        assert_ne!(scenario_seed(42, 3), scenario_seed(43, 3));
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // A scenario function that *consumes randomness* from its seed:
        // identical output requires identical seeds, order, and count.
        let f = |s: &Scenario<u64>| {
            let mut rng = SimRng::new(s.seed);
            let mut acc = s.input;
            for _ in 0..100 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            (s.index, acc, rng.next_f64())
        };
        let inputs: Vec<u64> = (0..23).map(|i| i * 7).collect();
        let serial = run_serial(scenarios(9, inputs.clone()), f);
        for threads in [1, 2, 4, 7, 16] {
            let parallel = run_sweep(scenarios(9, inputs.clone()), threads, f);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_grids() {
        let f = |s: &Scenario<u32>| s.input * 2;
        assert!(run_sweep(scenarios::<u32>(1, vec![]), 4, f).is_empty());
        assert_eq!(run_sweep(scenarios(1, vec![21]), 4, f), vec![42]);
    }
}
