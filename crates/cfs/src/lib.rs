//! # escra-cfs
//!
//! A faithful, deterministic model of the two Linux kernel mechanisms the
//! Escra paper instruments with kernel hooks (paper §IV-B):
//!
//! * [`cpu`] — CFS bandwidth control: per-cgroup quota/period runtime
//!   accounting, throttling, and the per-period telemetry hook
//!   ([`cpu::CpuPeriodStats`]) that streams quota / unused runtime /
//!   throttled to the Escra Controller;
//! * [`memory`] — the memory cgroup with a trappable `try_charge()`:
//!   a charge that would exceed the limit yields
//!   [`memory::ChargeOutcome::WouldOom`] *before* any kill, which is the
//!   event Escra uses to grow a container instead of OOM-killing it;
//! * [`node`] — node-level max–min fair CPU arbitration among cgroups,
//!   standing in for the CFS run-queue when a node is oversubscribed.
//!
//! The real system patches Linux 4.20 (~1.5 kSLOC across six modules);
//! this crate reproduces the *semantics* those hooks expose, which is all
//! the Escra control plane consumes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod memory;
pub mod node;

pub use cpu::{CpuBandwidth, CpuPeriodStats, DEFAULT_PERIOD, MIN_QUOTA_CORES};
pub use memory::{ChargeOutcome, MemCgroup, MIB, PAGE_BYTES};
