//! Simulated memory cgroup with an OOM-trap hook.
//!
//! Models the part of `mem_cgroup` Escra hooks into: limit/usage
//! accounting via `try_charge()`. When a charge would exceed the limit,
//! instead of killing the container immediately the simulated hook
//! reports [`ChargeOutcome::WouldOom`] — the caller (the Escra Agent /
//! Controller path) may then raise the limit and retry, exactly like the
//! paper's kernel hook in `try_charge()` that catches a container "right
//! before it gets OOMed" (§III).

use serde::{Deserialize, Serialize};

/// Bytes per MiB, used throughout the workspace for readability.
pub const MIB: u64 = 1024 * 1024;

/// Kernel page size used when granting "a fixed number of pages" (§IV-D2).
pub const PAGE_BYTES: u64 = 4096;

/// Outcome of a [`MemCgroup::try_charge`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChargeOutcome {
    /// The charge fit under the limit and was applied.
    Charged,
    /// The charge would exceed the limit; nothing was applied. The hook
    /// forwards this to the Controller as an OOM event.
    WouldOom {
        /// Bytes by which the limit would be exceeded.
        shortfall_bytes: u64,
    },
}

impl ChargeOutcome {
    /// True when the charge was applied.
    pub fn is_charged(&self) -> bool {
        matches!(self, ChargeOutcome::Charged)
    }
}

/// A simulated memory cgroup: limit and usage accounting in bytes.
///
/// ```
/// use escra_cfs::memory::{ChargeOutcome, MemCgroup, MIB};
/// let mut mem = MemCgroup::new(256 * MIB);
/// assert!(mem.try_charge(200 * MIB).is_charged());
/// match mem.try_charge(100 * MIB) {
///     ChargeOutcome::WouldOom { shortfall_bytes } => {
///         assert_eq!(shortfall_bytes, 44 * MIB)
///     }
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemCgroup {
    limit_bytes: u64,
    usage_bytes: u64,
    peak_bytes: u64,
    nr_oom_events: u64,
}

impl MemCgroup {
    /// Creates a cgroup with the given limit and zero usage.
    ///
    /// # Panics
    ///
    /// Panics if the limit is zero.
    pub fn new(limit_bytes: u64) -> Self {
        assert!(limit_bytes > 0, "memory limit must be positive");
        MemCgroup {
            limit_bytes,
            usage_bytes: 0,
            peak_bytes: 0,
            nr_oom_events: 0,
        }
    }

    /// Current limit in bytes.
    pub fn limit_bytes(&self) -> u64 {
        self.limit_bytes
    }

    /// Current usage in bytes.
    pub fn usage_bytes(&self) -> u64 {
        self.usage_bytes
    }

    /// Peak usage in bytes over the cgroup's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of would-OOM events observed.
    pub fn nr_oom_events(&self) -> u64 {
        self.nr_oom_events
    }

    /// Absolute memory slack in bytes: limit minus usage (never negative).
    pub fn slack_bytes(&self) -> u64 {
        self.limit_bytes.saturating_sub(self.usage_bytes)
    }

    /// Attempts to charge `bytes` against the limit.
    ///
    /// On overflow nothing is charged and [`ChargeOutcome::WouldOom`] is
    /// returned with the shortfall; the embedding layer decides whether to
    /// grow the limit and retry (Escra) or kill the container (vanilla).
    pub fn try_charge(&mut self, bytes: u64) -> ChargeOutcome {
        let wanted = self.usage_bytes.saturating_add(bytes);
        if wanted > self.limit_bytes {
            self.nr_oom_events += 1;
            ChargeOutcome::WouldOom {
                shortfall_bytes: wanted - self.limit_bytes,
            }
        } else {
            self.usage_bytes = wanted;
            self.peak_bytes = self.peak_bytes.max(wanted);
            ChargeOutcome::Charged
        }
    }

    /// Releases `bytes` of usage (saturating at zero, like `uncharge`).
    pub fn uncharge(&mut self, bytes: u64) {
        self.usage_bytes = self.usage_bytes.saturating_sub(bytes);
    }

    /// Sets the limit directly (used for scale-up grants).
    ///
    /// # Panics
    ///
    /// Panics if the new limit is zero.
    pub fn set_limit_bytes(&mut self, limit_bytes: u64) {
        assert!(limit_bytes > 0, "memory limit must be positive");
        self.limit_bytes = limit_bytes;
    }

    /// Shrinks the limit toward `target_bytes` but never below current
    /// usage (the kernel would have to reclaim/evict below that; Escra's
    /// Agent only reclaims *unused* memory). Returns the number of bytes
    /// actually reclaimed, the paper's ψ.
    pub fn shrink_to(&mut self, target_bytes: u64) -> u64 {
        let floor = self.usage_bytes.max(1);
        let new_limit = target_bytes.max(floor);
        if new_limit >= self.limit_bytes {
            return 0;
        }
        let reclaimed = self.limit_bytes - new_limit;
        self.limit_bytes = new_limit;
        reclaimed
    }

    /// Resets usage to zero (container restart after an OOM kill).
    pub fn reset_usage(&mut self) {
        self.usage_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_uncharge_roundtrip() {
        let mut m = MemCgroup::new(100 * MIB);
        assert!(m.try_charge(60 * MIB).is_charged());
        assert_eq!(m.usage_bytes(), 60 * MIB);
        assert_eq!(m.slack_bytes(), 40 * MIB);
        m.uncharge(10 * MIB);
        assert_eq!(m.usage_bytes(), 50 * MIB);
        assert_eq!(m.peak_bytes(), 60 * MIB);
    }

    #[test]
    fn would_oom_reports_shortfall_and_charges_nothing() {
        let mut m = MemCgroup::new(100 * MIB);
        m.try_charge(90 * MIB);
        let out = m.try_charge(20 * MIB);
        assert_eq!(
            out,
            ChargeOutcome::WouldOom {
                shortfall_bytes: 10 * MIB
            }
        );
        assert_eq!(m.usage_bytes(), 90 * MIB);
        assert_eq!(m.nr_oom_events(), 1);
    }

    #[test]
    fn grant_then_retry_succeeds() {
        // The Escra flow: would-OOM -> Controller grants -> retry charges.
        let mut m = MemCgroup::new(100 * MIB);
        m.try_charge(95 * MIB);
        assert!(!m.try_charge(32 * MIB).is_charged());
        m.set_limit_bytes(m.limit_bytes() + 32 * MIB);
        assert!(m.try_charge(32 * MIB).is_charged());
        assert_eq!(m.usage_bytes(), 127 * MIB);
    }

    #[test]
    fn shrink_respects_usage_floor() {
        let mut m = MemCgroup::new(256 * MIB);
        m.try_charge(100 * MIB);
        // Reclaim toward usage + 50 MiB: psi = 256 - 150 = 106 MiB.
        let psi = m.shrink_to(150 * MIB);
        assert_eq!(psi, 106 * MIB);
        assert_eq!(m.limit_bytes(), 150 * MIB);
        // Shrinking below usage clamps at usage.
        let psi = m.shrink_to(10 * MIB);
        assert_eq!(psi, 50 * MIB);
        assert_eq!(m.limit_bytes(), 100 * MIB);
        // No-op shrink returns zero.
        assert_eq!(m.shrink_to(200 * MIB), 0);
    }

    #[test]
    fn uncharge_saturates() {
        let mut m = MemCgroup::new(MIB);
        m.uncharge(5);
        assert_eq!(m.usage_bytes(), 0);
    }

    #[test]
    fn reset_usage_clears() {
        let mut m = MemCgroup::new(MIB);
        m.try_charge(MIB / 2);
        m.reset_usage();
        assert_eq!(m.usage_bytes(), 0);
        assert_eq!(m.peak_bytes(), MIB / 2);
    }

    #[test]
    #[should_panic(expected = "memory limit must be positive")]
    fn zero_limit_panics() {
        MemCgroup::new(0);
    }
}
