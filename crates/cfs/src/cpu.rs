//! Simulated CFS bandwidth control.
//!
//! Models the Linux CFS quota/period mechanism ("CPU bandwidth control for
//! CFS", Turner et al.): a cgroup holds `quota` runtime per `period`;
//! execution draws the runtime down; when it reaches zero the group is
//! **throttled** for the rest of the period; at the period boundary the
//! runtime is refilled and — this is Escra's kernel hook — the per-period
//! statistics (quota, unused runtime, whether throttled) are exported.

use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The default CFS period (100 ms), matching both Linux and the paper's
/// telemetry report period (§VI-I "Why a 100ms Report Period?").
pub const DEFAULT_PERIOD: SimDuration = SimDuration::from_millis(100);

/// Floor on a CPU limit so a container can always make minimal progress,
/// mirroring the kernel's 1 ms minimum quota.
pub const MIN_QUOTA_CORES: f64 = 0.01;

/// Per-period statistics exported by the Escra kernel hook at each period
/// boundary (paper §IV-B): the cgroup quota, the unused runtime left in
/// the CFS bandwidth structure, and whether the group was throttled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPeriodStats {
    /// Quota at the end of the period, in cores (quota_us / period_us).
    pub quota_cores: f64,
    /// Unused runtime at the period boundary, in core-microseconds.
    pub unused_runtime_us: f64,
    /// CPU actually consumed this period, in core-microseconds.
    pub usage_us: f64,
    /// Whether the group exhausted its runtime and was throttled.
    pub throttled: bool,
}

/// Millicores per core: the fixed-point scale of the columnar wire
/// form's quota column (a u32 of millicores spans 0..4.29M cores,
/// far beyond any machine).
pub const MCORES_PER_CORE: f64 = 1000.0;

impl CpuPeriodStats {
    /// Quantizes to the columnar wire form's fixed-point integer fields:
    /// `(quota_mcores, unused_us, usage_us, throttled)`. Quota rounds to
    /// the nearest millicore; the microsecond fields round to the
    /// nearest whole microsecond (the granularity the kernel hook
    /// actually exports — the simulator's fractional microseconds are an
    /// artifact of its fluid model). Values are clamped to the u32
    /// range; NaN saturates to zero.
    pub fn to_fixed_point(&self) -> (u32, u32, u32, bool) {
        let clamp = |x: f64| x.round().clamp(0.0, u32::MAX as f64) as u32;
        (
            clamp(self.quota_cores * MCORES_PER_CORE),
            clamp(self.unused_runtime_us),
            clamp(self.usage_us),
            self.throttled,
        )
    }

    /// Reconstructs per-period statistics from the columnar wire form's
    /// fixed-point fields. Every u32 is exactly representable in f64, so
    /// `from_fixed_point(a, b, c, t)` round-trips bit-for-bit through
    /// [`CpuPeriodStats::to_fixed_point`] — the identity the columnar
    /// ingest path's decision-equivalence proofs rest on.
    pub fn from_fixed_point(
        quota_mcores: u32,
        unused_us: u32,
        usage_us: u32,
        throttled: bool,
    ) -> Self {
        CpuPeriodStats {
            quota_cores: quota_mcores as f64 / MCORES_PER_CORE,
            unused_runtime_us: unused_us as f64,
            usage_us: usage_us as f64,
            throttled,
        }
    }

    /// CPU usage in cores over the period.
    pub fn usage_cores(&self, period: SimDuration) -> f64 {
        self.usage_us / period.as_micros() as f64
    }

    /// Slack in cores: quota minus usage (the paper's *absolute slack*).
    pub fn slack_cores(&self, period: SimDuration) -> f64 {
        (self.quota_cores - self.usage_cores(period)).max(0.0)
    }

    /// Unused runtime in cores over the period (the windowed scale-down
    /// statistic the Resource Allocator ingests).
    #[inline]
    pub fn unused_cores(&self, period: SimDuration) -> f64 {
        self.unused_runtime_us / period.as_micros() as f64
    }
}

/// A simulated CFS bandwidth controller for one cgroup.
///
/// Time advances in whole periods: the embedding simulation calls
/// [`CpuBandwidth::consume`] (possibly several times) while executing a
/// period, then [`CpuBandwidth::end_period`] at the boundary, which
/// returns the telemetry and refills the runtime.
///
/// ```
/// use escra_cfs::cpu::CpuBandwidth;
/// let mut bw = CpuBandwidth::new(2.0); // 2-core limit, 100 ms period
/// let granted = bw.consume(250_000.0); // wants 2.5 cores' worth
/// assert_eq!(granted, 200_000.0);      // capped at the quota
/// let stats = bw.end_period();
/// assert!(stats.throttled);
/// assert_eq!(stats.unused_runtime_us, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CpuBandwidth {
    period: SimDuration,
    quota_cores: f64,
    runtime_remaining_us: f64,
    usage_this_period_us: f64,
    throttled_this_period: bool,
    nr_periods: u64,
    nr_throttled: u64,
    total_usage_us: f64,
}

impl CpuBandwidth {
    /// Creates a controller with the given quota (in cores) and the
    /// default 100 ms period.
    ///
    /// # Panics
    ///
    /// Panics if `quota_cores` is not finite and positive.
    pub fn new(quota_cores: f64) -> Self {
        Self::with_period(quota_cores, DEFAULT_PERIOD)
    }

    /// Creates a controller with an explicit period.
    ///
    /// # Panics
    ///
    /// Panics if `quota_cores` is not finite/positive or the period is zero.
    pub fn with_period(quota_cores: f64, period: SimDuration) -> Self {
        assert!(
            quota_cores.is_finite() && quota_cores > 0.0,
            "quota must be positive, got {quota_cores}"
        );
        assert!(!period.is_zero(), "period must be non-zero");
        let mut bw = CpuBandwidth {
            period,
            quota_cores,
            runtime_remaining_us: 0.0,
            usage_this_period_us: 0.0,
            throttled_this_period: false,
            nr_periods: 0,
            nr_throttled: 0,
            total_usage_us: 0.0,
        };
        bw.refill();
        bw
    }

    fn refill(&mut self) {
        self.runtime_remaining_us = self.quota_cores * self.period.as_micros() as f64;
        self.usage_this_period_us = 0.0;
        self.throttled_this_period = false;
    }

    /// The CFS period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Current quota in cores.
    pub fn quota_cores(&self) -> f64 {
        self.quota_cores
    }

    /// Runtime still available this period, in core-microseconds.
    pub fn runtime_remaining_us(&self) -> f64 {
        self.runtime_remaining_us
    }

    /// Whether the group has been throttled in the current period.
    pub fn is_throttled(&self) -> bool {
        self.throttled_this_period
    }

    /// Lifetime number of completed periods.
    pub fn nr_periods(&self) -> u64 {
        self.nr_periods
    }

    /// Lifetime number of throttled periods.
    pub fn nr_throttled(&self) -> u64 {
        self.nr_throttled
    }

    /// Lifetime CPU usage in core-microseconds.
    pub fn total_usage_us(&self) -> f64 {
        self.total_usage_us
    }

    /// Updates the quota (Escra applies this mid-period without restart;
    /// extra headroom becomes available immediately, mirroring a runtime
    /// write to `cpu.cfs_quota_us`).
    ///
    /// The quota is clamped to [`MIN_QUOTA_CORES`].
    pub fn set_quota_cores(&mut self, quota_cores: f64) {
        let new_quota = quota_cores.max(MIN_QUOTA_CORES);
        let delta_us = (new_quota - self.quota_cores) * self.period.as_micros() as f64;
        self.quota_cores = new_quota;
        // Adjust this period's remaining runtime by the delta, never
        // below 0. `throttled_this_period` is deliberately left set: the
        // group *was* throttled this period, and the kernel's
        // nr_throttled stays incremented after a quota raise — clearing
        // it here erased the throttle signal from this period's
        // telemetry. The group still runs again immediately because
        // runtime is available.
        self.runtime_remaining_us = (self.runtime_remaining_us + delta_us).max(0.0);
    }

    /// Attempts to consume `request_us` core-microseconds of runtime.
    ///
    /// Returns the amount actually granted; requesting more than the
    /// remaining runtime marks the group throttled, exactly like the
    /// kernel's `__account_cfs_rq_runtime`.
    pub fn consume(&mut self, request_us: f64) -> f64 {
        debug_assert!(request_us >= 0.0);
        if request_us <= 0.0 {
            return 0.0;
        }
        let granted = request_us.min(self.runtime_remaining_us);
        self.runtime_remaining_us -= granted;
        self.usage_this_period_us += granted;
        self.total_usage_us += granted;
        if granted + 1e-9 < request_us {
            self.throttled_this_period = true;
        }
        granted
    }

    /// Marks the group throttled for the current period.
    ///
    /// Used by embeddings that arbitrate CPU externally (node-level
    /// max–min sharing) and then account usage with [`CpuBandwidth::consume`]:
    /// when the *quota* — not the node — was the binding constraint on a
    /// group that still had work queued, the group is throttled exactly
    /// as `__account_cfs_rq_runtime` would have done.
    pub fn mark_throttled(&mut self) {
        self.throttled_this_period = true;
    }

    /// Closes the current period: returns the kernel-hook telemetry and
    /// refills the runtime for the next period (paper §IV-B: "after the
    /// hook finishes writing data to the buffer, the runtime of the cgroup
    /// is refilled and the next period begins").
    pub fn end_period(&mut self) -> CpuPeriodStats {
        let stats = CpuPeriodStats {
            quota_cores: self.quota_cores,
            unused_runtime_us: self.runtime_remaining_us,
            usage_us: self.usage_this_period_us,
            throttled: self.throttled_this_period,
        };
        self.nr_periods += 1;
        if self.throttled_this_period {
            self.nr_throttled += 1;
        }
        self.refill();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_quota_is_not_throttled() {
        let mut bw = CpuBandwidth::new(1.0);
        assert_eq!(bw.consume(40_000.0), 40_000.0);
        let s = bw.end_period();
        assert!(!s.throttled);
        assert_eq!(s.usage_us, 40_000.0);
        assert_eq!(s.unused_runtime_us, 60_000.0);
        assert!((s.usage_cores(bw.period()) - 0.4).abs() < 1e-12);
        assert!((s.slack_cores(bw.period()) - 0.6).abs() < 1e-12);
        assert!((s.unused_cores(bw.period()) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn over_quota_throttles_and_caps() {
        let mut bw = CpuBandwidth::new(0.5);
        let granted = bw.consume(80_000.0);
        assert_eq!(granted, 50_000.0);
        assert!(bw.is_throttled());
        let s = bw.end_period();
        assert!(s.throttled);
        assert_eq!(s.unused_runtime_us, 0.0);
        assert_eq!(bw.nr_throttled(), 1);
        assert_eq!(bw.nr_periods(), 1);
    }

    #[test]
    fn refill_after_period() {
        let mut bw = CpuBandwidth::new(1.0);
        bw.consume(100_000.0);
        bw.end_period();
        assert_eq!(bw.runtime_remaining_us(), 100_000.0);
        assert!(!bw.is_throttled());
    }

    #[test]
    fn quota_raise_mid_period_restores_runtime_but_keeps_throttle_telemetry() {
        let mut bw = CpuBandwidth::new(0.5);
        bw.consume(60_000.0); // throttled at 50k
        assert!(bw.is_throttled());
        bw.set_quota_cores(1.0); // Escra scales up without restart
                                 // Runtime is available again and consumption proceeds...
        assert_eq!(bw.runtime_remaining_us(), 50_000.0);
        let granted = bw.consume(10_000.0);
        assert_eq!(granted, 10_000.0);
        // ...but the period's throttle signal survives, matching the
        // kernel's nr_throttled semantics.
        assert!(bw.is_throttled());
        let s = bw.end_period();
        assert!(s.throttled);
        assert_eq!(bw.nr_throttled(), 1);
        // The next period starts clean.
        assert!(!bw.is_throttled());
    }

    #[test]
    fn quota_lower_clamps_remaining_runtime() {
        let mut bw = CpuBandwidth::new(2.0);
        bw.consume(150_000.0);
        bw.set_quota_cores(1.0); // remaining 50k - 100k -> 0
        assert_eq!(bw.runtime_remaining_us(), 0.0);
        assert_eq!(bw.quota_cores(), 1.0);
    }

    #[test]
    fn quota_floor_enforced() {
        let mut bw = CpuBandwidth::new(1.0);
        bw.set_quota_cores(0.0001);
        assert_eq!(bw.quota_cores(), MIN_QUOTA_CORES);
    }

    #[test]
    fn multiple_consumes_accumulate() {
        let mut bw = CpuBandwidth::new(1.0);
        bw.consume(30_000.0);
        bw.consume(30_000.0);
        let s = bw.end_period();
        assert_eq!(s.usage_us, 60_000.0);
        assert!(!s.throttled);
        assert_eq!(bw.total_usage_us(), 60_000.0);
    }

    #[test]
    fn zero_request_is_noop() {
        let mut bw = CpuBandwidth::new(1.0);
        assert_eq!(bw.consume(0.0), 0.0);
        assert!(!bw.is_throttled());
    }

    #[test]
    #[should_panic(expected = "quota must be positive")]
    fn invalid_quota_panics() {
        CpuBandwidth::new(0.0);
    }

    #[test]
    fn custom_period() {
        let mut bw = CpuBandwidth::with_period(1.0, SimDuration::from_millis(50));
        assert_eq!(bw.runtime_remaining_us(), 50_000.0);
        bw.consume(50_000.0);
        bw.consume(1.0);
        assert!(bw.is_throttled());
    }
}
