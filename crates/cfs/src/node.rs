//! Node-level CPU arbitration.
//!
//! A worker node has a fixed number of cores; when the sum of cgroup
//! demands exceeds node capacity, the real CFS scheduler divides CPU time
//! with (weighted) max–min fairness. [`arbitrate`] reproduces that
//! water-filling division so a container's *effective* CPU this period is
//! `min(demand, quota grant, fair share of the node)`.

/// Divides `capacity` among `demands` with max–min fairness (equal
/// weights): every demand is satisfied up to the water level; leftover
/// capacity from small demands raises the level for the rest.
///
/// Returns one grant per demand; grants never exceed the demand and their
/// sum never exceeds `capacity` (within floating-point tolerance).
///
/// ```
/// use escra_cfs::node::arbitrate;
/// // 10 units among demands 2, 9, 9 -> 2 satisfied, rest split 4/4.
/// let g = arbitrate(10.0, &[2.0, 9.0, 9.0]);
/// assert_eq!(g, vec![2.0, 4.0, 4.0]);
/// ```
pub fn arbitrate(capacity: f64, demands: &[f64]) -> Vec<f64> {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(demands.iter().all(|d| *d >= 0.0 && d.is_finite()));
    let total: f64 = demands.iter().sum();
    if total <= capacity {
        return demands.to_vec();
    }
    // Water-filling: process demands in ascending order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).expect("NaN demand"));
    let mut grants = vec![0.0; n];
    let mut remaining_capacity = capacity;
    let mut remaining = n;
    for &i in &order {
        let fair = remaining_capacity / remaining as f64;
        let g = demands[i].min(fair);
        grants[i] = g;
        remaining_capacity -= g;
        remaining -= 1;
    }
    grants
}

/// Weighted max–min fairness: like [`arbitrate`] but shares in proportion
/// to positive `weights` (the CFS `cpu.shares` analogue).
///
/// # Panics
///
/// Panics if lengths differ or any weight is non-positive.
pub fn arbitrate_weighted(capacity: f64, demands: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(demands.len(), weights.len(), "length mismatch");
    assert!(weights.iter().all(|w| *w > 0.0), "weights must be positive");
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let total: f64 = demands.iter().sum();
    if total <= capacity {
        return demands.to_vec();
    }
    // Sort by demand-per-weight; fill proportionally to weight.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (demands[a] / weights[a])
            .partial_cmp(&(demands[b] / weights[b]))
            .expect("NaN demand/weight")
    });
    let mut grants = vec![0.0; n];
    let mut remaining_capacity = capacity;
    let mut remaining_weight: f64 = weights.iter().sum();
    for &i in &order {
        let fair = remaining_capacity * weights[i] / remaining_weight;
        let g = demands[i].min(fair);
        grants[i] = g;
        remaining_capacity -= g;
        remaining_weight -= weights[i];
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn under_capacity_grants_all() {
        let g = arbitrate(10.0, &[1.0, 2.0, 3.0]);
        assert_eq!(g, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_demands_split_evenly() {
        let g = arbitrate(6.0, &[4.0, 4.0, 4.0]);
        assert!(g.iter().all(|x| close(*x, 2.0)));
    }

    #[test]
    fn small_demand_fully_satisfied() {
        let g = arbitrate(10.0, &[1.0, 20.0]);
        assert!(close(g[0], 1.0));
        assert!(close(g[1], 9.0));
    }

    #[test]
    fn conservation_and_bounds() {
        let demands = [0.0, 5.0, 2.5, 8.0, 1.0, 9.0];
        let g = arbitrate(7.0, &demands);
        let total: f64 = g.iter().sum();
        assert!(total <= 7.0 + 1e-9);
        assert!(close(total, 7.0)); // work conserving when oversubscribed
        for (gi, di) in g.iter().zip(demands.iter()) {
            assert!(*gi <= di + 1e-9);
            assert!(*gi >= 0.0);
        }
    }

    #[test]
    fn empty_and_zero() {
        assert!(arbitrate(5.0, &[]).is_empty());
        let g = arbitrate(0.0, &[1.0, 2.0]);
        assert!(g.iter().all(|x| close(*x, 0.0)));
    }

    #[test]
    fn weighted_respects_shares() {
        // Equal infinite-ish demands, 2:1 weights -> 2:1 grants.
        let g = arbitrate_weighted(9.0, &[100.0, 100.0], &[2.0, 1.0]);
        assert!(close(g[0], 6.0));
        assert!(close(g[1], 3.0));
    }

    #[test]
    fn weighted_small_demand_released() {
        let g = arbitrate_weighted(9.0, &[1.0, 100.0], &[2.0, 1.0]);
        assert!(close(g[0], 1.0));
        assert!(close(g[1], 8.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_length_mismatch_panics() {
        arbitrate_weighted(1.0, &[1.0], &[1.0, 2.0]);
    }
}
