//! Deterministic fault injection for the control-plane network.
//!
//! A [`FaultPlan`] describes an imperfect network: independent message
//! loss, duplication, latency spikes, and timed partitions between
//! [`Addr`] pairs. A [`FaultInjector`] turns the plan into per-message
//! [`FaultDecision`]s, drawing from its own forked [`SimRng`] stream so
//! that (a) same-seed runs are bit-reproducible and (b) the empty plan
//! ([`FaultPlan::none`]) consumes **zero** random draws — a faultless
//! run through the injector is byte-identical to one without it.

use crate::fabric::Addr;
use escra_metrics::trace::{NoopSink, TraceEventKind, TraceSink};
use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A timed bidirectional partition between two endpoints: messages in
/// either direction are dropped while `start <= now < end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// One side of the severed link.
    pub a: Addr,
    /// The other side.
    pub b: Addr,
    /// Partition onset (inclusive).
    pub start: SimTime,
    /// Partition healing time (exclusive).
    pub end: SimTime,
}

impl Partition {
    /// Whether this partition severs a `from → to` send at `now`.
    pub fn severs(&self, from: Addr, to: Addr, now: SimTime) -> bool {
        let pair_matches = (self.a == from && self.b == to) || (self.a == to && self.b == from);
        pair_matches && now >= self.start && now < self.end
    }
}

/// The fault model applied to every message on a network.
///
/// Probabilities are independent per message. `FaultPlan::none()` (the
/// default) is guaranteed to be a no-op: no random draws, no drops, no
/// extra delay — so enabling the machinery cannot perturb a faultless
/// run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a message is silently dropped.
    pub drop_probability: f64,
    /// Probability a message is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a message suffers an extra delay spike.
    pub delay_spike_probability: f64,
    /// The extra delay added when a spike hits.
    pub delay_spike: SimDuration,
    /// Timed partitions; a severed message is dropped regardless of the
    /// probabilities above.
    pub partitions: Vec<Partition>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: deliver everything exactly once, on time.
    pub fn none() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            delay_spike_probability: 0.0,
            delay_spike: SimDuration::ZERO,
            partitions: Vec::new(),
        }
    }

    /// True when the plan can never affect a message.
    pub fn is_none(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && (self.delay_spike_probability <= 0.0 || self.delay_spike.is_zero())
            && self.partitions.is_empty()
    }

    /// Sets the drop probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_probability = p;
        self
    }

    /// Sets the duplicate probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability must be in [0,1]"
        );
        self.duplicate_probability = p;
        self
    }

    /// Sets the delay-spike probability and magnitude (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_delay_spikes(mut self, p: f64, extra: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "spike probability must be in [0,1]"
        );
        self.delay_spike_probability = p;
        self.delay_spike = extra;
        self
    }

    /// Adds a timed bidirectional partition between `a` and `b`
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn with_partition(mut self, a: Addr, b: Addr, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "partition must have positive duration");
        self.partitions.push(Partition { a, b, start, end });
        self
    }
}

/// What the injector decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The message never arrives.
    Drop,
    /// Deliver `copies` copies (1 = normal, 2 = duplicated), each with
    /// `extra_delay` added on top of the network's own latency.
    Deliver {
        /// Number of delivered copies (≥ 1).
        copies: u32,
        /// Extra delay from a spike (zero when no spike hit).
        extra_delay: SimDuration,
    },
}

impl FaultDecision {
    /// The pass-through decision.
    pub const CLEAN: FaultDecision = FaultDecision::Deliver {
        copies: 1,
        extra_delay: SimDuration::ZERO,
    };
}

/// Counters of injected faults, for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages dropped by the loss probability.
    pub dropped: u64,
    /// Messages dropped by an active partition.
    pub partitioned: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages hit by a delay spike.
    pub delayed: u64,
}

/// Applies a [`FaultPlan`] to a message stream, deterministically.
///
/// The injector owns a dedicated RNG fork, independent of any latency
/// RNG, and consumes draws **only when the plan is non-empty** — so a
/// `FaultPlan::none()` injector never changes the embedding's random
/// sequence.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `plan`, forking a dedicated RNG stream
    /// from `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: SimRng::new(seed).fork(0x0066_6175_6c74), // "fault"
            stats: FaultStats::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides the fate of one `from → to` message sent at `now`.
    pub fn decide(&mut self, now: SimTime, from: Addr, to: Addr) -> FaultDecision {
        self.decide_traced(now, from, to, &mut NoopSink)
    }

    /// Like [`FaultInjector::decide`], recording each injected fault
    /// (drop, duplicate, delay spike) into `sink`. Clean deliveries emit
    /// nothing; the decision itself is identical to `decide` — tracing
    /// never consumes RNG draws.
    pub fn decide_traced<S: TraceSink>(
        &mut self,
        now: SimTime,
        from: Addr,
        to: Addr,
        sink: &mut S,
    ) -> FaultDecision {
        if self.plan.is_none() {
            return FaultDecision::CLEAN;
        }
        if self.plan.partitions.iter().any(|p| p.severs(from, to, now)) {
            self.stats.partitioned += 1;
            if S::ENABLED {
                sink.emit(
                    now,
                    TraceEventKind::FaultDrop {
                        from: from.as_u64(),
                        to: to.as_u64(),
                        partitioned: true,
                    },
                );
            }
            return FaultDecision::Drop;
        }
        if self.plan.drop_probability > 0.0 && self.rng.chance(self.plan.drop_probability) {
            self.stats.dropped += 1;
            if S::ENABLED {
                sink.emit(
                    now,
                    TraceEventKind::FaultDrop {
                        from: from.as_u64(),
                        to: to.as_u64(),
                        partitioned: false,
                    },
                );
            }
            return FaultDecision::Drop;
        }
        let copies = if self.plan.duplicate_probability > 0.0
            && self.rng.chance(self.plan.duplicate_probability)
        {
            self.stats.duplicated += 1;
            if S::ENABLED {
                sink.emit(
                    now,
                    TraceEventKind::FaultDuplicate {
                        from: from.as_u64(),
                        to: to.as_u64(),
                    },
                );
            }
            2
        } else {
            1
        };
        let extra_delay = if self.plan.delay_spike_probability > 0.0
            && !self.plan.delay_spike.is_zero()
            && self.rng.chance(self.plan.delay_spike_probability)
        {
            self.stats.delayed += 1;
            if S::ENABLED {
                sink.emit(
                    now,
                    TraceEventKind::FaultDelay {
                        from: from.as_u64(),
                        to: to.as_u64(),
                        extra_us: self.plan.delay_spike.as_micros(),
                    },
                );
            }
            self.plan.delay_spike
        } else {
            SimDuration::ZERO
        };
        FaultDecision::Deliver {
            copies,
            extra_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(raw: u64) -> Addr {
        Addr::from_raw(raw)
    }

    #[test]
    fn none_plan_is_clean_and_rng_neutral() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 7);
        let rng_before = format!("{:?}", inj.rng);
        for i in 0..1000 {
            assert_eq!(
                inj.decide(SimTime::from_millis(i), addr(0), addr(1)),
                FaultDecision::CLEAN
            );
        }
        assert_eq!(format!("{:?}", inj.rng), rng_before, "no draws consumed");
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut inj = FaultInjector::new(FaultPlan::none().with_loss(1.0), 7);
        for i in 0..100 {
            assert_eq!(
                inj.decide(SimTime::from_millis(i), addr(0), addr(1)),
                FaultDecision::Drop
            );
        }
        assert_eq!(inj.stats().dropped, 100);
    }

    #[test]
    fn partition_severs_both_directions_within_window() {
        let plan = FaultPlan::none().with_partition(
            addr(0),
            addr(1),
            SimTime::from_secs(1),
            SimTime::from_secs(3),
        );
        let mut inj = FaultInjector::new(plan, 7);
        assert_eq!(
            inj.decide(SimTime::from_millis(500), addr(0), addr(1)),
            FaultDecision::CLEAN
        );
        assert_eq!(
            inj.decide(SimTime::from_secs(1), addr(0), addr(1)),
            FaultDecision::Drop
        );
        assert_eq!(
            inj.decide(SimTime::from_secs(2), addr(1), addr(0)),
            FaultDecision::Drop
        );
        // Other pairs unaffected.
        assert_eq!(
            inj.decide(SimTime::from_secs(2), addr(0), addr(2)),
            FaultDecision::CLEAN
        );
        // Healed.
        assert_eq!(
            inj.decide(SimTime::from_secs(3), addr(0), addr(1)),
            FaultDecision::CLEAN
        );
        assert_eq!(inj.stats().partitioned, 2);
    }

    #[test]
    fn duplicates_and_spikes_are_reported() {
        let plan = FaultPlan::none()
            .with_duplicates(1.0)
            .with_delay_spikes(1.0, SimDuration::from_secs(1));
        let mut inj = FaultInjector::new(plan, 7);
        assert_eq!(
            inj.decide(SimTime::ZERO, addr(0), addr(1)),
            FaultDecision::Deliver {
                copies: 2,
                extra_delay: SimDuration::from_secs(1)
            }
        );
        assert_eq!(inj.stats().duplicated, 1);
        assert_eq!(inj.stats().delayed, 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::none()
            .with_loss(0.3)
            .with_duplicates(0.2)
            .with_delay_spikes(0.1, SimDuration::from_millis(200));
        let mut a = FaultInjector::new(plan.clone(), 99);
        let mut b = FaultInjector::new(plan, 99);
        for i in 0..1000 {
            let now = SimTime::from_millis(i);
            assert_eq!(
                a.decide(now, addr(i % 3), addr(3)),
                b.decide(now, addr(i % 3), addr(3))
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan::none().with_loss(0.1), 1234);
        let mut drops = 0;
        for i in 0..10_000 {
            if inj.decide(SimTime::from_millis(i), addr(0), addr(1)) == FaultDecision::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / 10_000.0;
        assert!((0.07..0.13).contains(&rate), "observed loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_loss_rejected() {
        let _ = FaultPlan::none().with_loss(1.5);
    }

    #[test]
    fn traced_decisions_match_untraced_and_record_faults() {
        use escra_metrics::trace::TraceRecorder;
        let plan = FaultPlan::none()
            .with_loss(0.3)
            .with_duplicates(0.2)
            .with_delay_spikes(0.1, SimDuration::from_millis(200))
            .with_partition(addr(0), addr(1), SimTime::ZERO, SimTime::from_millis(50));
        let mut plain = FaultInjector::new(plan.clone(), 42);
        let mut traced = FaultInjector::new(plan, 42);
        let mut rec = TraceRecorder::with_capacity(4096);
        for i in 0..1000 {
            let now = SimTime::from_millis(i);
            assert_eq!(
                plain.decide(now, addr(i % 3), addr(3 - (i % 2))),
                traced.decide_traced(now, addr(i % 3), addr(3 - (i % 2)), &mut rec)
            );
        }
        let stats = traced.stats();
        assert_eq!(stats, plain.stats(), "tracing never consumes RNG draws");
        let events: Vec<_> = rec.iter().collect();
        let drops = events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::FaultDrop { .. }))
            .count() as u64;
        let dups = events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::FaultDuplicate { .. }))
            .count() as u64;
        let delays = events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::FaultDelay { .. }))
            .count() as u64;
        assert_eq!(drops, stats.dropped + stats.partitioned);
        assert_eq!(dups, stats.duplicated);
        assert_eq!(delays, stats.delayed);
        assert!(drops > 0 && dups > 0 && delays > 0, "plan actually fired");
    }
}
