//! Wire-byte accounting for the network-overhead experiment (§VI-I).

use escra_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Wire size of a batched report that shares one envelope across many
/// entries: one `header` (IP/UDP framing plus the per-node tag) is
/// charged per message, and each entry adds only its payload bytes.
///
/// This is the arithmetic behind per-node telemetry batching (§VI-I):
/// `n` containers reporting individually pay `n` full envelopes, while a
/// node-level batch pays one, so control-plane Mbps grows with the
/// *payload* rate instead of the message rate.
///
/// The sharded Controller preserves this: a `CpuStatsBatch` arriving at
/// the controller is charged one envelope on the wire *before* the
/// in-process fan-out splits it across shard queues, so sharding changes
/// neither side of the batched-vs-unbatched comparison (asserted by
/// `batch_fan_out_is_charged_one_envelope` in `escra-core::sharded`).
///
/// ```
/// use escra_net::batch_wire_bytes;
/// // One shared 40-byte envelope + 24 bytes per container...
/// assert_eq!(batch_wire_bytes(40, 24, 10), 280);
/// // ...versus 10 × (40 + 24) = 640 for individual messages.
/// assert!(batch_wire_bytes(40, 24, 10) < 10 * batch_wire_bytes(40, 24, 1));
/// ```
pub const fn batch_wire_bytes(header_bytes: u64, entry_bytes: u64, entries: u64) -> u64 {
    header_bytes + entry_bytes * entries
}

/// Accumulates bytes sent per one-second bucket.
///
/// ```
/// use escra_net::BandwidthAccountant;
/// use escra_simcore::time::SimTime;
/// let mut acc = BandwidthAccountant::new();
/// acc.record(SimTime::from_millis(100), 1_000_000);
/// acc.record(SimTime::from_millis(900), 500_000);
/// acc.record(SimTime::from_secs(2), 250_000);
/// assert_eq!(acc.total_bytes(), 1_750_000);
/// assert!((acc.peak_mbps() - 12.0).abs() < 1e-9); // 1.5 MB in second 0
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BandwidthAccountant {
    /// (second index, bytes) — seconds recorded in order, sparse.
    buckets: Vec<(u64, u64)>,
    total: u64,
}

impl BandwidthAccountant {
    /// Creates an empty accountant.
    pub fn new() -> Self {
        BandwidthAccountant::default()
    }

    /// Records `bytes` sent at time `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        let sec = now.as_micros() / 1_000_000;
        self.total += bytes;
        match self.buckets.last_mut() {
            Some((s, b)) if *s == sec => *b += bytes,
            Some((s, _)) if *s > sec => {
                // Out-of-order (rare: caller clock skew); merge backwards.
                if let Some(entry) = self.buckets.iter_mut().find(|(s2, _)| *s2 == sec) {
                    entry.1 += bytes;
                } else {
                    let pos = self.buckets.partition_point(|(s2, _)| *s2 < sec);
                    self.buckets.insert(pos, (sec, bytes));
                }
            }
            _ => self.buckets.push((sec, bytes)),
        }
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Peak one-second throughput in megabits per second.
    pub fn peak_mbps(&self) -> f64 {
        self.buckets
            .iter()
            .map(|(_, b)| *b as f64 * 8.0 / 1e6)
            .fold(0.0, f64::max)
    }

    /// Mean throughput in Mbps over the recorded span (0.0 when empty).
    pub fn mean_mbps(&self) -> f64 {
        match (self.buckets.first(), self.buckets.last()) {
            (Some((first, _)), Some((last, _))) => {
                let span_secs = (last - first + 1) as f64;
                self.total as f64 * 8.0 / 1e6 / span_secs
            }
            _ => 0.0,
        }
    }

    /// Per-second series `(second, mbps)` for plotting.
    pub fn series_mbps(&self) -> Vec<(u64, f64)> {
        self.buckets
            .iter()
            .map(|(s, b)| (*s, *b as f64 * 8.0 / 1e6))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let acc = BandwidthAccountant::new();
        assert_eq!(acc.total_bytes(), 0);
        assert_eq!(acc.peak_mbps(), 0.0);
        assert_eq!(acc.mean_mbps(), 0.0);
        assert!(acc.series_mbps().is_empty());
    }

    #[test]
    fn buckets_by_second() {
        let mut acc = BandwidthAccountant::new();
        acc.record(SimTime::from_millis(0), 100);
        acc.record(SimTime::from_millis(999), 100);
        acc.record(SimTime::from_millis(1000), 300);
        let series = acc.series_mbps();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 0);
        assert!((series[0].1 - 200.0 * 8.0 / 1e6).abs() < 1e-12);
        assert!((acc.peak_mbps() - 300.0 * 8.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn mean_spans_recorded_seconds() {
        let mut acc = BandwidthAccountant::new();
        acc.record(SimTime::from_secs(0), 1_000_000);
        acc.record(SimTime::from_secs(3), 1_000_000);
        // 2 MB over 4 seconds = 4 Mbps.
        assert!((acc.mean_mbps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn batched_telemetry_charges_one_shared_header() {
        // A node with 32 containers reporting at 10 Hz: batching pays the
        // envelope once per period instead of once per container.
        let unbatched = 32 * batch_wire_bytes(40, 24, 1);
        let batched = batch_wire_bytes(40, 24, 32);
        assert_eq!(unbatched, 2048);
        assert_eq!(batched, 808);
        // An empty batch is just the envelope (nodes with no running
        // containers send nothing, but the arithmetic must not underflow).
        assert_eq!(batch_wire_bytes(40, 24, 0), 40);
    }

    #[test]
    fn out_of_order_merges() {
        let mut acc = BandwidthAccountant::new();
        acc.record(SimTime::from_secs(2), 100);
        acc.record(SimTime::from_secs(1), 50);
        acc.record(SimTime::from_secs(1), 25);
        assert_eq!(acc.total_bytes(), 175);
        let series = acc.series_mbps();
        assert_eq!(series[0].0, 1);
        assert!((series[0].1 - 75.0 * 8.0 / 1e6).abs() < 1e-12);
    }
}
