//! The message fabric: endpoints, latency, in-order delivery.

use crate::accounting::BandwidthAccountant;
use crate::fault::{FaultDecision, FaultInjector, FaultPlan, FaultStats};
use escra_simcore::events::EventQueue;
use escra_simcore::rng::SimRng;
use escra_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An opaque endpoint address on the simulated control-plane network.
///
/// Addresses are handed out by [`Network::register`]; higher layers map
/// them to the Controller, per-node Agents, and per-container kernel
/// sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(u64);

impl Addr {
    /// Raw numeric form, useful as a map key or RNG stream label.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Builds an address from its raw numeric form.
    ///
    /// Embeddings that assign well-known addresses (e.g. "controller is
    /// address 0, node *n* is address 1 + *n*") use this instead of
    /// [`Network::register`]; a [`FaultPlan`] can then name endpoints
    /// without holding a `Network`.
    pub const fn from_raw(raw: u64) -> Self {
        Addr(raw)
    }
}

/// One-way delivery latency: a fixed base plus uniform jitter in
/// `[0, jitter]`.
///
/// Defaults model a single-datacenter control plane: 250 µs base,
/// 100 µs jitter — consistent with the paper's claim that limits are
/// applied "on the order of 100s of microseconds".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed one-way delay component.
    pub base: SimDuration,
    /// Upper bound of the uniform jitter added to `base`.
    pub jitter: SimDuration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base: SimDuration::from_micros(250),
            jitter: SimDuration::from_micros(100),
        }
    }
}

impl LatencyModel {
    /// A zero-latency model (useful in unit tests).
    pub fn zero() -> Self {
        LatencyModel {
            base: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
        }
    }

    /// Samples one one-way delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.jitter.is_zero() {
            self.base
        } else {
            self.base + SimDuration::from_micros(rng.next_below(self.jitter.as_micros() + 1))
        }
    }
}

/// An in-flight message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Sender address.
    pub from: Addr,
    /// Recipient address.
    pub to: Addr,
    /// The payload.
    pub message: M,
}

/// A simulated control-plane network, generic over the message type.
///
/// Messages are delayed by the [`LatencyModel`], delivered in
/// deterministic (time, FIFO) order, and have their wire size charged to
/// a [`BandwidthAccountant`].
///
/// ```
/// use escra_net::{LatencyModel, Network};
/// use escra_simcore::time::SimTime;
///
/// let mut net: Network<&str> = Network::new(LatencyModel::default(), 42);
/// let a = net.register();
/// let b = net.register();
/// net.send(SimTime::ZERO, a, b, "hello", 64);
/// let delivered = net.poll(SimTime::from_millis(1));
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].1.message, "hello");
/// ```
#[derive(Debug)]
pub struct Network<M> {
    latency: LatencyModel,
    rng: SimRng,
    queue: EventQueue<Delivery<M>>,
    next_addr: u64,
    accountant: BandwidthAccountant,
    faults: FaultInjector,
}

impl<M> Network<M> {
    /// Creates a network with the given latency model and RNG seed.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        Network::with_faults(latency, seed, FaultPlan::none())
    }

    /// Creates a network that additionally injects the faults described
    /// by `plan`.
    ///
    /// The injector draws from its own RNG fork of `seed`, and the
    /// empty plan consumes no draws at all — so
    /// `with_faults(l, s, FaultPlan::none())` is bit-identical to
    /// `new(l, s)`.
    pub fn with_faults(latency: LatencyModel, seed: u64, plan: FaultPlan) -> Self {
        Network {
            latency,
            rng: SimRng::new(seed).fork(0x006e_6574), // "net"
            queue: EventQueue::new(),
            next_addr: 0,
            accountant: BandwidthAccountant::new(),
            faults: FaultInjector::new(plan, seed),
        }
    }

    /// Allocates a fresh endpoint address.
    pub fn register(&mut self) -> Addr {
        let a = Addr(self.next_addr);
        self.next_addr += 1;
        a
    }

    /// Pops every message due at or before `now`, in delivery order.
    pub fn poll(&mut self, now: SimTime) -> Vec<(SimTime, Delivery<M>)> {
        let mut out = Vec::new();
        while let Some(item) = self.queue.pop_due(now) {
            out.push(item);
        }
        out
    }

    /// Time of the next pending delivery, if any.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of messages in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// The wire-byte accountant (for the network-overhead experiment).
    pub fn accountant(&self) -> &BandwidthAccountant {
        &self.accountant
    }

    /// The fault plan in force (`FaultPlan::none()` by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Counters of injected faults so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Round-trip estimate for an RPC: two sampled one-way delays plus
    /// `processing` — used where the caller needs a latency without
    /// materialising both directions as messages.
    pub fn rpc_round_trip(&mut self, processing: SimDuration) -> SimDuration {
        self.latency.sample(&mut self.rng) + self.latency.sample(&mut self.rng) + processing
    }
}

impl<M: Clone> Network<M> {
    /// Sends `message` of `wire_bytes` from `from` to `to` at time `now`;
    /// it will be delivered after a sampled one-way latency, subject to
    /// the network's [`FaultPlan`].
    ///
    /// Wire bytes are charged even for dropped messages — the sender
    /// still put them on the wire. A dropped message consumes no latency
    /// draw; a duplicated one gets an independent latency per copy. With
    /// the empty plan this samples exactly one latency, matching the
    /// faultless network draw for draw.
    pub fn send(&mut self, now: SimTime, from: Addr, to: Addr, message: M, wire_bytes: u64) {
        self.accountant.record(now, wire_bytes);
        match self.faults.decide(now, from, to) {
            FaultDecision::Drop => {}
            FaultDecision::Deliver {
                copies,
                extra_delay,
            } => {
                for _ in 0..copies {
                    let delay = self.latency.sample(&mut self.rng) + extra_delay;
                    self.queue.push(
                        now + delay,
                        Delivery {
                            from,
                            to,
                            message: message.clone(),
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network<u32> {
        Network::new(
            LatencyModel {
                base: SimDuration::from_micros(500),
                jitter: SimDuration::ZERO,
            },
            1,
        )
    }

    #[test]
    fn delivers_after_latency() {
        let mut n = net();
        let a = n.register();
        let b = n.register();
        n.send(SimTime::ZERO, a, b, 7, 100);
        assert!(n.poll(SimTime::from_micros(499)).is_empty());
        let d = n.poll(SimTime::from_micros(500));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, SimTime::from_micros(500));
        assert_eq!(
            d[0].1,
            Delivery {
                from: a,
                to: b,
                message: 7
            }
        );
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn fifo_between_same_instant_sends() {
        let mut n = net();
        let a = n.register();
        let b = n.register();
        for i in 0..5 {
            n.send(SimTime::ZERO, a, b, i, 10);
        }
        let msgs: Vec<u32> = n
            .poll(SimTime::from_secs(1))
            .into_iter()
            .map(|(_, d)| d.message)
            .collect();
        assert_eq!(msgs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let lat = LatencyModel {
            base: SimDuration::from_micros(100),
            jitter: SimDuration::from_micros(50),
        };
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        for _ in 0..100 {
            let d1 = lat.sample(&mut r1);
            assert!(d1 >= SimDuration::from_micros(100));
            assert!(d1 <= SimDuration::from_micros(150));
            assert_eq!(d1, lat.sample(&mut r2));
        }
    }

    #[test]
    fn bytes_are_accounted() {
        let mut n = net();
        let a = n.register();
        let b = n.register();
        n.send(SimTime::ZERO, a, b, 1, 1000);
        n.send(SimTime::from_millis(10), a, b, 2, 500);
        assert_eq!(n.accountant().total_bytes(), 1500);
    }

    #[test]
    fn rpc_round_trip_includes_processing() {
        let mut n = net();
        let rt = n.rpc_round_trip(SimDuration::from_micros(200));
        assert_eq!(rt, SimDuration::from_micros(1200));
    }

    #[test]
    fn addresses_are_unique() {
        let mut n = net();
        let a = n.register();
        let b = n.register();
        assert_ne!(a, b);
        assert_eq!(a.as_u64() + 1, b.as_u64());
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_faultless_network() {
        let lat = LatencyModel::default();
        let mut plain: Network<u32> = Network::new(lat, 42);
        let mut faulty: Network<u32> = Network::with_faults(lat, 42, FaultPlan::none());
        let (a, b) = (Addr::from_raw(0), Addr::from_raw(1));
        for i in 0..500 {
            let now = SimTime::from_millis(i as u64);
            plain.send(now, a, b, i, 64);
            faulty.send(now, a, b, i, 64);
        }
        let end = SimTime::from_secs(10);
        assert_eq!(plain.poll(end), faulty.poll(end));
        assert_eq!(
            plain.accountant().total_bytes(),
            faulty.accountant().total_bytes()
        );
    }

    #[test]
    fn dropped_messages_still_cost_wire_bytes() {
        let mut n: Network<u32> =
            Network::with_faults(LatencyModel::zero(), 1, FaultPlan::none().with_loss(1.0));
        let (a, b) = (Addr::from_raw(0), Addr::from_raw(1));
        n.send(SimTime::ZERO, a, b, 7, 100);
        assert!(n.poll(SimTime::from_secs(1)).is_empty());
        assert_eq!(n.accountant().total_bytes(), 100);
        assert_eq!(n.fault_stats().dropped, 1);
    }

    #[test]
    fn duplicated_message_arrives_twice() {
        let mut n: Network<u32> = Network::with_faults(
            LatencyModel::zero(),
            1,
            FaultPlan::none().with_duplicates(1.0),
        );
        let (a, b) = (Addr::from_raw(0), Addr::from_raw(1));
        n.send(SimTime::ZERO, a, b, 7, 100);
        let out = n.poll(SimTime::from_secs(1));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, d)| d.message == 7));
        assert_eq!(n.fault_stats().duplicated, 1);
    }

    #[test]
    fn delay_spike_defers_delivery() {
        let mut n: Network<u32> = Network::with_faults(
            LatencyModel::zero(),
            1,
            FaultPlan::none().with_delay_spikes(1.0, SimDuration::from_secs(2)),
        );
        let (a, b) = (Addr::from_raw(0), Addr::from_raw(1));
        n.send(SimTime::ZERO, a, b, 7, 100);
        assert!(n.poll(SimTime::from_millis(1999)).is_empty());
        assert_eq!(n.poll(SimTime::from_secs(2)).len(), 1);
    }

    #[test]
    fn partition_blackholes_the_pair_then_heals() {
        let plan = FaultPlan::none().with_partition(
            Addr::from_raw(0),
            Addr::from_raw(1),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let mut n: Network<u32> = Network::with_faults(LatencyModel::zero(), 1, plan);
        let (a, b) = (Addr::from_raw(0), Addr::from_raw(1));
        n.send(SimTime::from_millis(1500), a, b, 1, 10);
        n.send(SimTime::from_millis(1500), b, a, 2, 10);
        n.send(SimTime::from_secs(2), a, b, 3, 10);
        let out: Vec<u32> = n
            .poll(SimTime::from_secs(5))
            .into_iter()
            .map(|(_, d)| d.message)
            .collect();
        assert_eq!(out, vec![3]);
        assert_eq!(n.fault_stats().partitioned, 2);
    }

    #[test]
    fn faulty_networks_with_same_seed_are_identical() {
        let plan = FaultPlan::none()
            .with_loss(0.2)
            .with_duplicates(0.1)
            .with_delay_spikes(0.05, SimDuration::from_millis(300));
        let lat = LatencyModel::default();
        let mut x: Network<u32> = Network::with_faults(lat, 9, plan.clone());
        let mut y: Network<u32> = Network::with_faults(lat, 9, plan);
        let (a, b) = (Addr::from_raw(0), Addr::from_raw(1));
        for i in 0..1000 {
            let now = SimTime::from_millis(i as u64);
            x.send(now, a, b, i, 64);
            y.send(now, a, b, i, 64);
        }
        let end = SimTime::from_secs(100);
        assert_eq!(x.poll(end), y.poll(end));
        assert_eq!(x.fault_stats(), y.fault_stats());
    }
}
