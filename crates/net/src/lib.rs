//! # escra-net
//!
//! Simulated control-plane network for the Escra reproduction.
//!
//! The paper's control plane uses per-container kernel TCP sockets for
//! registration and OOM events, UDP for the per-period CPU telemetry
//! stream, and gRPC between Controller and Agents. What the allocation
//! algorithms observe from all of that is (a) **delivery latency** and
//! (b) **bytes on the wire** (for the §VI-I network-overhead analysis).
//! This crate models exactly those two things:
//!
//! * [`Network`] — a latency-delayed, deterministically ordered message
//!   fabric between [`Addr`] endpoints, generic over the message type;
//! * [`LatencyModel`] — base + bounded uniform jitter one-way delay;
//! * [`BandwidthAccountant`] — per-second byte counters with peak-Mbps
//!   queries, reproducing the paper's "12.06 Mbps for 32 containers"
//!   style of measurement;
//! * [`FaultPlan`] / [`FaultInjector`] — deterministic fault injection
//!   (loss, duplication, delay spikes, timed partitions) for robustness
//!   experiments, with the guarantee that the empty plan perturbs
//!   nothing;
//! * [`InFlightSet`] — a canonical, enumerable in-flight message
//!   multiset: the network as the `escra-mc` model checker sees it,
//!   branching over every deliver/drop/duplicate choice.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accounting;
pub mod fabric;
pub mod fault;
pub mod inflight;

pub use accounting::{batch_wire_bytes, BandwidthAccountant};
pub use fabric::{Addr, LatencyModel, Network};
pub use fault::{FaultDecision, FaultInjector, FaultPlan, FaultStats, Partition};
pub use inflight::{InFlightSet, WireEncode};
