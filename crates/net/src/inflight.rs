//! An enumerable in-flight message multiset for exhaustive exploration.
//!
//! The latency fabric ([`crate::fabric::Network`]) answers "*when* does
//! this message arrive?" — the right question for simulation. A model
//! checker asks a different one: "*which* in-flight message is delivered
//! (or dropped, or duplicated) next?" and needs to branch over every
//! answer. [`InFlightSet`] holds the undelivered messages as a canonical
//! multiset: entries are keyed by their wire encoding ([`WireEncode`]),
//! kept sorted, and carry a copy count, so
//!
//! * identical messages collapse into one branching choice (delivering
//!   either copy of a duplicate leads to the same successor state),
//! * the set of distinct messages is enumerable in a deterministic
//!   order regardless of insertion history, and
//! * the whole network state folds into a state fingerprint in one pass.
//!
//! Reordering needs no explicit operation: the checker picks *any*
//! distinct entry to deliver next, which is exactly the set of
//! reorderings of an asynchronous network.

use escra_metrics::fingerprint::StateHash;

/// A canonical byte encoding for model-checked messages.
///
/// Two messages must encode equal iff delivering them is behaviourally
/// indistinguishable. Implementations append to `out` (no length prefix
/// needed; encodings are compared whole).
pub trait WireEncode {
    /// Appends this message's canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// One distinct in-flight message plus its copy count.
#[derive(Debug, Clone)]
struct Entry<M> {
    key: Vec<u8>,
    msg: M,
    copies: u32,
}

/// The in-flight message multiset (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct InFlightSet<M> {
    entries: Vec<Entry<M>>,
}

impl<M: WireEncode> InFlightSet<M> {
    /// An empty network.
    pub fn new() -> Self {
        InFlightSet {
            entries: Vec::new(),
        }
    }

    /// Total undelivered copies.
    pub fn len(&self) -> usize {
        self.entries.iter().map(|e| e.copies as usize).sum()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of *distinct* messages — the branching factor for
    /// deliver/drop choices.
    pub fn distinct_len(&self) -> usize {
        self.entries.len()
    }

    /// The `i`-th distinct message (canonical order) and its copy count.
    ///
    /// # Panics
    ///
    /// Panics when `i >= distinct_len()`.
    pub fn get(&self, i: usize) -> (&M, u32) {
        let e = &self.entries[i];
        (&e.msg, e.copies)
    }

    /// Puts one copy of `msg` in flight.
    pub fn insert(&mut self, msg: M) {
        let mut key = Vec::with_capacity(16);
        msg.encode(&mut key);
        match self.entries.binary_search_by(|e| e.key.cmp(&key)) {
            Ok(pos) => self.entries[pos].copies += 1,
            Err(pos) => self.entries.insert(
                pos,
                Entry {
                    key,
                    msg,
                    copies: 1,
                },
            ),
        }
    }

    /// Removes one copy of the `i`-th distinct message and returns it
    /// (clone while further copies remain, the original otherwise).
    ///
    /// # Panics
    ///
    /// Panics when `i >= distinct_len()`.
    pub fn take(&mut self, i: usize) -> M
    where
        M: Clone,
    {
        if self.entries[i].copies > 1 {
            self.entries[i].copies -= 1;
            self.entries[i].msg.clone()
        } else {
            self.entries.remove(i).msg
        }
    }

    /// Adds one more copy of the `i`-th distinct message (the network
    /// duplicated it).
    ///
    /// # Panics
    ///
    /// Panics when `i >= distinct_len()`.
    pub fn duplicate(&mut self, i: usize) {
        self.entries[i].copies += 1;
    }

    /// Iterates `(message, copies)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&M, u32)> {
        self.entries.iter().map(|e| (&e.msg, e.copies))
    }

    /// Folds the multiset (encodings + counts) into a state fingerprint.
    pub fn fingerprint_into(&self, h: &mut StateHash) {
        h.write_u64(self.entries.len() as u64);
        for e in &self.entries {
            h.write_u64(e.key.len() as u64);
            h.write_bytes(&e.key);
            h.write_u32(e.copies);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl WireEncode for u32 {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.to_le_bytes());
        }
    }

    #[test]
    fn canonical_order_is_insertion_independent() {
        let mut a = InFlightSet::new();
        for m in [3u32, 1, 2, 1] {
            a.insert(m);
        }
        let mut b = InFlightSet::new();
        for m in [1u32, 1, 2, 3] {
            b.insert(m);
        }
        let collect = |s: &InFlightSet<u32>| s.iter().map(|(m, c)| (*m, c)).collect::<Vec<_>>();
        assert_eq!(collect(&a), collect(&b));
        assert_eq!(collect(&a), vec![(1, 2), (2, 1), (3, 1)]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.distinct_len(), 3);

        let mut ha = StateHash::new();
        a.fingerprint_into(&mut ha);
        let mut hb = StateHash::new();
        b.fingerprint_into(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn take_and_duplicate_adjust_copies() {
        let mut s = InFlightSet::new();
        s.insert(7u32);
        s.duplicate(0);
        assert_eq!(s.get(0), (&7, 2));
        assert_eq!(s.take(0), 7);
        assert_eq!(s.get(0), (&7, 1));
        assert_eq!(s.take(0), 7);
        assert!(s.is_empty());
    }

    #[test]
    fn duplicates_collapse_into_one_choice() {
        let mut s = InFlightSet::new();
        s.insert(5u32);
        s.insert(5u32);
        assert_eq!(s.distinct_len(), 1);
        assert_eq!(s.len(), 2);
    }
}
