//! Vendored, offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this shim provides
//! the subset of proptest this workspace uses: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], range and tuple strategies,
//! `any::<bool>()`, and `collection::vec`. Sampling is driven by a
//! splitmix64 generator seeded from the test name, so every run of a
//! given test explores the same deterministic case set (no shrinking).

pub mod strategy;
pub mod test_runner;

/// Number of cases each `proptest!` test runs.
pub const NUM_CASES: u32 = 96;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` that samples [`NUM_CASES`](crate::NUM_CASES)
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    $(
                        #[allow(unused_mut)]
                        let mut $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}
