//! Deterministic RNG and case-failure plumbing for the proptest shim.

use std::fmt;

/// A failed property case. Carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator, seeded from the test name so
/// each property test replays the same case set on every run.
///
/// Self-contained (no dependency on `escra-simcore`) because simcore
/// dev-depends on this crate.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an FNV-1a hash of the test name.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::from_name("t1");
        let mut b = TestRng::from_name("t2");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TestRng::from_name("f");
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
