//! Value-generation strategies for the proptest shim.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Generates values of `Self::Value` from the deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        })*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Types with a canonical full-range strategy (the `any::<T>()` entry
/// point).
pub trait Arbitrary {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let u = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let s = (0usize..1).generate(&mut rng);
            assert_eq!(s, 0);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_name("tuples");
        let (b, n, f) = (any::<bool>(), 0u64..8, 0.0f64..1.0).generate(&mut rng);
        let _: bool = b;
        assert!(n < 8);
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn vec_lengths_honor_size_range() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f64..1.0, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
