//! ARC-V-style phase-aware vertical scaling (after "ARC-V: Vertical
//! Resource Adaptivity for HPC Workloads in Containerized Environments",
//! arXiv 2505.02964): limits are raised and shrunk **in place** (no
//! restart), gated by the observed utilization *slope* — the phase
//! detector — and a per-container cooldown.
//!
//! The intuition: HPC-style phases alternate compute-heavy and
//! I/O-heavy stretches. A high utilization with a non-falling slope
//! means the container is entering (or holding) a hot phase — raise the
//! limit multiplicatively before throttling bites. A sustained low
//! utilization with a non-rising slope means the phase ended — shrink,
//! but never below what the recent window actually used. The cooldown
//! keeps the controller from chattering at phase boundaries; an OOM
//! event bypasses it (memory pressure cannot wait).

use crate::types::{
    validate_observation, validate_update_period, LimitUpdate, PeriodicScaler, UsageSample,
};
use escra_cluster::ContainerId;
use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// ARC-V configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArcVConfig {
    /// Utilization (usage/limit) above which a non-falling phase grows
    /// the limit.
    pub high_utilization: f64,
    /// Utilization below which samples count toward the shrink streak.
    pub low_utilization: f64,
    /// Samples in the slope window (one sample per second).
    pub slope_window: usize,
    /// Least-squares slope magnitude (cores per sample) below which the
    /// phase counts as flat.
    pub slope_epsilon: f64,
    /// Multiplicative in-place raise.
    pub grow_factor: f64,
    /// Multiplicative in-place shrink.
    pub shrink_factor: f64,
    /// Samples between scaling actions on one container (the cooldown).
    pub cooldown_samples: u64,
    /// Consecutive low-utilization samples required before a shrink.
    pub shrink_patience: u64,
    /// How often recommendations are computed.
    pub update_period: SimDuration,
    /// Floor for CPU limits, in cores.
    pub min_cpu_cores: f64,
    /// Floor for memory limits, in bytes.
    pub min_mem_bytes: u64,
    /// Ceiling for CPU limits, in cores (node capacity).
    pub max_cpu_cores: f64,
    /// Ceiling for memory limits, in bytes (node capacity).
    pub max_mem_bytes: u64,
}

impl Default for ArcVConfig {
    fn default() -> Self {
        ArcVConfig {
            high_utilization: 0.85,
            low_utilization: 0.40,
            slope_window: 8,
            slope_epsilon: 0.01,
            grow_factor: 1.25,
            shrink_factor: 0.85,
            cooldown_samples: 10,
            shrink_patience: 8,
            update_period: SimDuration::from_secs(2),
            min_cpu_cores: 0.05,
            min_mem_bytes: 32 * escra_cfs::MIB,
            max_cpu_cores: 64.0,
            max_mem_bytes: 64 * 1024 * escra_cfs::MIB,
        }
    }
}

/// Half-life, in samples, of the tracked memory peak (ARC-V shrinks
/// memory toward recent peaks, not the all-time one).
const MEM_PEAK_DECAY: f64 = 0.95;

#[derive(Debug, Default)]
struct ArcVState {
    cpu_limit: f64,
    mem_limit: u64,
    window: VecDeque<f64>,
    mem_peak: f64,
    last_mem_usage: u64,
    samples_since_action: u64,
    low_streak: u64,
    /// Emergency memory raise queued by an OOM event; bypasses the
    /// cooldown at the next recommendation.
    oom_raise_bytes: Option<u64>,
}

/// Least-squares slope of the window, in cores per sample; 0 for fewer
/// than two samples.
fn window_slope(window: &VecDeque<f64>) -> f64 {
    let n = window.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = window.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in window.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The ARC-V-style scaler.
///
/// The harness must seed current limits via
/// [`PeriodicScaler::track`] (utilization is usage **relative to the
/// applied limit**) and applies recommendations in place.
#[derive(Debug)]
pub struct ArcVScaler {
    cfg: ArcVConfig,
    containers: BTreeMap<ContainerId, ArcVState>,
}

impl ArcVScaler {
    /// Creates a scaler.
    ///
    /// # Panics
    ///
    /// Panics unless `low_utilization < high_utilization`,
    /// `shrink_factor < 1 < grow_factor`, the floor/ceiling pairs are
    /// ordered, and the update period is non-zero.
    pub fn new(cfg: ArcVConfig) -> Self {
        assert!(
            cfg.low_utilization < cfg.high_utilization,
            "low utilization must be below high utilization"
        );
        assert!(
            cfg.shrink_factor < 1.0 && cfg.grow_factor > 1.0,
            "shrink factor must be < 1 < grow factor"
        );
        assert!(
            cfg.min_cpu_cores <= cfg.max_cpu_cores && cfg.min_mem_bytes <= cfg.max_mem_bytes,
            "floors must not exceed ceilings"
        );
        assert!(cfg.slope_window >= 2, "slope needs at least 2 samples");
        validate_update_period(cfg.update_period);
        ArcVScaler {
            cfg,
            containers: BTreeMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ArcVConfig {
        &self.cfg
    }
}

impl PeriodicScaler for ArcVScaler {
    fn observe(&mut self, container: ContainerId, sample: UsageSample) {
        validate_observation(&sample, self.cfg.max_cpu_cores);
        let cfg = self.cfg;
        let st = self.containers.entry(container).or_default();
        st.window.push_back(sample.cpu_cores);
        while st.window.len() > cfg.slope_window {
            st.window.pop_front();
        }
        st.mem_peak = (st.mem_peak * MEM_PEAK_DECAY).max(sample.mem_bytes as f64);
        st.last_mem_usage = sample.mem_bytes;
        st.samples_since_action = st.samples_since_action.saturating_add(1);
        if st.cpu_limit > 0.0 && sample.cpu_cores / st.cpu_limit <= cfg.low_utilization {
            st.low_streak = st.low_streak.saturating_add(1);
        } else {
            st.low_streak = 0;
        }
    }

    fn recommend(&mut self) -> Vec<LimitUpdate> {
        let cfg = self.cfg;
        let mut out = Vec::new();
        for (id, st) in &mut self.containers {
            // An OOM-queued memory raise fires regardless of phase or
            // cooldown.
            if let Some(target) = st.oom_raise_bytes.take() {
                let mem = target.clamp(cfg.min_mem_bytes, cfg.max_mem_bytes);
                st.mem_limit = mem;
                st.samples_since_action = 0;
                out.push(LimitUpdate {
                    container: *id,
                    cpu_limit_cores: None,
                    mem_limit_bytes: Some(mem),
                    requires_restart: false,
                });
                continue;
            }
            if st.cpu_limit <= 0.0
                || st.window.is_empty()
                || st.samples_since_action < cfg.cooldown_samples
            {
                continue;
            }
            let usage = *st.window.back().expect("non-empty window");
            let util = usage / st.cpu_limit;
            let mem_util = if st.mem_limit > 0 {
                st.last_mem_usage as f64 / st.mem_limit as f64
            } else {
                0.0
            };
            let slope = window_slope(&st.window);
            let rising = slope >= cfg.slope_epsilon;
            let falling = slope <= -cfg.slope_epsilon;

            let mut new_cpu = None;
            let mut new_mem = None;
            if (util >= cfg.high_utilization && !falling) || mem_util >= cfg.high_utilization {
                // Hot phase: grow whichever resource is saturated.
                if util >= cfg.high_utilization {
                    new_cpu = Some(
                        (st.cpu_limit * cfg.grow_factor)
                            .clamp(cfg.min_cpu_cores, cfg.max_cpu_cores),
                    );
                }
                if mem_util >= cfg.high_utilization {
                    new_mem = Some(
                        ((st.mem_limit as f64 * cfg.grow_factor) as u64)
                            .clamp(cfg.min_mem_bytes, cfg.max_mem_bytes),
                    );
                }
            } else if st.low_streak >= cfg.shrink_patience && !rising {
                // Phase ended: shrink, but never below what the window
                // actually used (plus the high-utilization margin).
                let window_max = st.window.iter().copied().fold(0.0, f64::max);
                let cpu = (st.cpu_limit * cfg.shrink_factor)
                    .max(window_max / cfg.high_utilization)
                    .clamp(cfg.min_cpu_cores, cfg.max_cpu_cores);
                if cpu < st.cpu_limit * 0.999 {
                    new_cpu = Some(cpu);
                }
                let mem = ((st.mem_limit as f64 * cfg.shrink_factor)
                    .max(st.mem_peak / cfg.high_utilization) as u64)
                    .clamp(cfg.min_mem_bytes, cfg.max_mem_bytes);
                if mem < st.mem_limit {
                    new_mem = Some(mem);
                }
            }
            if new_cpu.is_none() && new_mem.is_none() {
                continue;
            }
            if let Some(cpu) = new_cpu {
                st.cpu_limit = cpu;
            }
            if let Some(mem) = new_mem {
                st.mem_limit = mem;
            }
            st.samples_since_action = 0;
            st.low_streak = 0;
            out.push(LimitUpdate {
                container: *id,
                cpu_limit_cores: new_cpu,
                mem_limit_bytes: new_mem,
                requires_restart: false,
            });
        }
        out
    }

    fn on_oom(&mut self, container: ContainerId, limit_bytes: u64) {
        let st = self.containers.entry(container).or_default();
        let target = limit_bytes.saturating_add(limit_bytes / 2);
        st.oom_raise_bytes = Some(st.oom_raise_bytes.map_or(target, |t| t.max(target)));
        st.mem_peak = st.mem_peak.max(limit_bytes as f64);
    }

    fn track(&mut self, container: ContainerId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        let st = self.containers.entry(container).or_default();
        st.cpu_limit = cpu_limit_cores;
        st.mem_limit = mem_limit_bytes;
        // Eligible for a first action as soon as a slope exists.
        st.samples_since_action = self.cfg.cooldown_samples;
    }

    fn forget(&mut self, container: ContainerId) {
        self.containers.remove(&container);
    }

    fn update_period(&self) -> SimDuration {
        self.cfg.update_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ContainerId = ContainerId::new(0);

    fn sample(cpu: f64, mem_mib: u64) -> UsageSample {
        UsageSample {
            cpu_cores: cpu,
            mem_bytes: mem_mib * escra_cfs::MIB,
        }
    }

    fn scaler() -> ArcVScaler {
        let mut a = ArcVScaler::new(ArcVConfig::default());
        a.track(C, 1.0, 256 * escra_cfs::MIB);
        a
    }

    #[test]
    fn slope_of_a_ramp_is_positive() {
        let mut w = VecDeque::new();
        for i in 0..8 {
            w.push_back(i as f64 * 0.1);
        }
        assert!((window_slope(&w) - 0.1).abs() < 1e-9);
        w.clear();
        w.push_back(1.0);
        assert_eq!(window_slope(&w), 0.0);
    }

    #[test]
    fn hot_rising_phase_grows_in_place() {
        let mut a = scaler();
        // Utilization ramps toward saturation: high util + rising slope.
        for i in 0..10 {
            a.observe(C, sample(0.5 + 0.05 * i as f64, 64));
        }
        let up = a.recommend();
        assert_eq!(up.len(), 1);
        assert!(!up[0].requires_restart, "ARC-V scales in place");
        assert_eq!(up[0].cpu_limit_cores, Some(1.25));
    }

    #[test]
    fn falling_phase_does_not_grow() {
        let mut a = scaler();
        // High utilization but clearly decaying — the phase detector
        // must hold fire.
        for i in 0..8 {
            a.observe(C, sample(0.99 - 0.03 * i as f64, 64));
        }
        assert!(a.recommend().is_empty());
    }

    #[test]
    fn sustained_low_phase_shrinks_after_patience() {
        let mut a = scaler();
        for _ in 0..7 {
            a.observe(C, sample(0.2, 64));
            assert!(a.recommend().is_empty(), "inside the patience window");
        }
        a.observe(C, sample(0.2, 64));
        let up = a.recommend();
        assert_eq!(up.len(), 1);
        let cpu = up[0].cpu_limit_cores.unwrap();
        assert!(cpu < 1.0 && cpu >= 0.2, "cpu {cpu}");
    }

    #[test]
    fn cooldown_spaces_out_actions() {
        let mut a = scaler();
        for _ in 0..8 {
            a.observe(C, sample(0.95, 64));
        }
        assert_eq!(a.recommend().len(), 1);
        // Still saturated, but inside the cooldown.
        for _ in 0..9 {
            a.observe(C, sample(1.2, 64));
            assert!(a.recommend().is_empty(), "inside the cooldown");
        }
        a.observe(C, sample(1.2, 64));
        assert_eq!(a.recommend().len(), 1, "cooldown elapsed");
    }

    #[test]
    fn oom_bypasses_the_cooldown() {
        let mut a = scaler();
        for _ in 0..8 {
            a.observe(C, sample(0.95, 64));
        }
        assert_eq!(a.recommend().len(), 1); // action resets the cooldown
        a.on_oom(C, 256 * escra_cfs::MIB);
        let up = a.recommend();
        assert_eq!(up.len(), 1, "OOM raise must not wait for the cooldown");
        assert_eq!(up[0].cpu_limit_cores, None);
        assert_eq!(up[0].mem_limit_bytes, Some(384 * escra_cfs::MIB));
    }

    #[test]
    fn quiescence_is_silent() {
        let mut a = scaler();
        // Mid-range utilization, flat slope: no action, ever.
        for _ in 0..50 {
            a.observe(C, sample(0.6, 64));
            assert!(a.recommend().is_empty());
        }
    }

    #[test]
    fn shrink_converges_to_a_fixed_point() {
        let mut a = scaler();
        let mut emitted = 0;
        for _ in 0..200 {
            a.observe(C, sample(0.2, 64));
            emitted += a.recommend().len();
        }
        // The limit walks down to window_max / high_utilization and then
        // goes quiet instead of re-emitting the same value forever.
        let final_updates: usize = (0..20)
            .map(|_| {
                a.observe(C, sample(0.2, 64));
                a.recommend().len()
            })
            .sum();
        assert!(emitted >= 2, "shrink steps {emitted}");
        assert_eq!(final_updates, 0, "must converge to silence");
    }

    #[test]
    fn limits_respect_the_ceiling() {
        let mut a = ArcVScaler::new(ArcVConfig {
            max_cpu_cores: 1.1,
            ..ArcVConfig::default()
        });
        a.track(C, 1.0, 256 * escra_cfs::MIB);
        for _ in 0..10 {
            a.observe(C, sample(1.0, 64));
        }
        let up = a.recommend();
        assert_eq!(up[0].cpu_limit_cores, Some(1.1), "clamped at node capacity");
    }

    #[test]
    #[should_panic(expected = "low utilization must be below")]
    fn inverted_thresholds_panic() {
        ArcVScaler::new(ArcVConfig {
            low_utilization: 0.9,
            ..ArcVConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "update period must be non-zero")]
    fn zero_period_panics() {
        ArcVScaler::new(ArcVConfig {
            update_period: SimDuration::ZERO,
            ..ArcVConfig::default()
        });
    }
}
