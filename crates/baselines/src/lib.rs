//! # escra-baselines
//!
//! The allocation policies Escra is compared against in the paper's
//! evaluation:
//!
//! * [`static_alloc`] — common practice: fixed limits at
//!   `factor × profiled peak` (0.75× / 1.0× / 1.5×, §VI-B);
//! * [`autopilot`] — a recreation of Google Autopilot's moving-window +
//!   multi-armed-bandit recommender (§VI-A), with a configurable update
//!   period for the 1 s / 10 s / 30 s / 60 s sensitivity study;
//! * [`vpa`] — a Kubernetes VPA-style threshold autoscaler whose updates
//!   require container restarts and are rate-limited to one per minute
//!   (§II);
//! * [`tiny_autoscaler`] — a per-function window-percentile CPU
//!   predictor in the spirit of "tiny autoscalers for tiny workloads"
//!   (Zhao & Uta): VPA imitated at function granularity with a short
//!   history and configurable percentile/headroom;
//! * [`arc_v`] — ARC-V-style phase-aware vertical scaling: in-place
//!   limit raises/shrinks gated by the observed utilization slope and a
//!   cooldown;
//! * [`types`] — the [`types::PeriodicScaler`] trait and shared
//!   recommendation/profile types.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arc_v;
pub mod autopilot;
pub mod static_alloc;
pub mod tiny_autoscaler;
pub mod types;
pub mod vpa;

pub use arc_v::{ArcVConfig, ArcVScaler};
pub use autopilot::{Arm, AutopilotConfig, AutopilotScaler};
pub use static_alloc::StaticPolicy;
pub use tiny_autoscaler::{TinyAutoscaler, TinyAutoscalerConfig};
pub use types::{
    validate_observation, validate_update_period, ContainerProfile, LimitUpdate, PeriodicScaler,
    UsageSample,
};
pub use vpa::{VpaConfig, VpaScaler};
