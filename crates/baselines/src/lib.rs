//! # escra-baselines
//!
//! The allocation policies Escra is compared against in the paper's
//! evaluation:
//!
//! * [`static_alloc`] — common practice: fixed limits at
//!   `factor × profiled peak` (0.75× / 1.0× / 1.5×, §VI-B);
//! * [`autopilot`] — a recreation of Google Autopilot's moving-window +
//!   multi-armed-bandit recommender (§VI-A), with a configurable update
//!   period for the 1 s / 10 s / 30 s / 60 s sensitivity study;
//! * [`vpa`] — a Kubernetes VPA-style threshold autoscaler whose updates
//!   require container restarts and are rate-limited to one per minute
//!   (§II);
//! * [`types`] — the [`types::PeriodicScaler`] trait and shared
//!   recommendation/profile types.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autopilot;
pub mod static_alloc;
pub mod types;
pub mod vpa;

pub use autopilot::{Arm, AutopilotConfig, AutopilotScaler};
pub use static_alloc::StaticPolicy;
pub use types::{ContainerProfile, LimitUpdate, PeriodicScaler, UsageSample};
pub use vpa::{VpaConfig, VpaScaler};
