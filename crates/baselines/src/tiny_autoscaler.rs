//! A per-function window-percentile CPU autoscaler, after Zhao & Uta's
//! "Tiny Autoscalers for Tiny Workloads" (CCGrid 2022): imitate what
//! Kubernetes VPA computes, but at function granularity and on a short
//! sliding window, so tiny serverless workloads get resource predictions
//! within seconds instead of minutes.
//!
//! The recipe: keep the last `history_samples` usage observations per
//! container, predict the next interval's demand as a configurable
//! percentile of that window, and provision `headroom ×` the prediction.
//! Unlike VPA the limits apply **in place** (no restart) and there is no
//! once-per-minute rate limit — the paper's point is that the simple
//! window statistic is competitive with heavyweight forecasters at a
//! fraction of the cost.

use crate::types::{
    validate_observation, validate_update_period, LimitUpdate, PeriodicScaler, UsageSample,
};
use escra_cluster::ContainerId;
use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Tiny-Autoscaler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TinyAutoscalerConfig {
    /// Sliding-window length, in samples (one sample per second in the
    /// harness; the paper's windows are 10–60 s).
    pub history_samples: usize,
    /// Percentile of the window used as the demand prediction.
    pub percentile: f64,
    /// Multiplicative headroom on top of the prediction.
    pub headroom: f64,
    /// How often recommendations are computed.
    pub update_period: SimDuration,
    /// Minimum relative change before a new limit is emitted (suppresses
    /// churn; makes decisions converge under flat usage).
    pub min_change_fraction: f64,
    /// Floor for CPU limits, in cores.
    pub min_cpu_cores: f64,
    /// Floor for memory limits, in bytes.
    pub min_mem_bytes: u64,
    /// Ceiling for CPU limits, in cores (node capacity).
    pub max_cpu_cores: f64,
    /// Ceiling for memory limits, in bytes (node capacity).
    pub max_mem_bytes: u64,
}

impl Default for TinyAutoscalerConfig {
    fn default() -> Self {
        TinyAutoscalerConfig {
            history_samples: 30,
            percentile: 95.0,
            headroom: 1.15,
            update_period: SimDuration::from_secs(5),
            min_change_fraction: 0.05,
            min_cpu_cores: 0.05,
            min_mem_bytes: 32 * escra_cfs::MIB,
            max_cpu_cores: 64.0,
            max_mem_bytes: 64 * 1024 * escra_cfs::MIB,
        }
    }
}

#[derive(Debug, Default)]
struct TinyState {
    cpu_window: VecDeque<f64>,
    mem_window: VecDeque<u64>,
    /// Last emitted (or seeded) limits; 0 = none yet.
    cpu_limit: f64,
    mem_limit: u64,
    /// Raised on OOM: the window can never observe usage above the
    /// limit, so without this an undersized memory limit is a fixed
    /// point and the container crash-loops.
    mem_oom_floor: u64,
}

/// Nearest-rank percentile of a window (deterministic total order).
fn window_percentile(window: &VecDeque<f64>, p: f64) -> f64 {
    let mut sorted: Vec<f64> = window.iter().copied().collect();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The Tiny-Autoscaler.
///
/// ```
/// use escra_baselines::tiny_autoscaler::{TinyAutoscaler, TinyAutoscalerConfig};
/// use escra_baselines::types::{PeriodicScaler, UsageSample};
/// use escra_cluster::ContainerId;
///
/// let mut tiny = TinyAutoscaler::new(TinyAutoscalerConfig::default());
/// let c = ContainerId::new(0);
/// for _ in 0..30 {
///     tiny.observe(c, UsageSample { cpu_cores: 0.8, mem_bytes: 100 << 20 });
/// }
/// let updates = tiny.recommend();
/// let cpu = updates[0].cpu_limit_cores.expect("cpu limit");
/// assert!((cpu - 0.8 * 1.15).abs() < 1e-9); // p95 of flat window × headroom
/// assert!(!updates[0].requires_restart);     // in-place, unlike VPA
/// ```
#[derive(Debug)]
pub struct TinyAutoscaler {
    cfg: TinyAutoscalerConfig,
    containers: BTreeMap<ContainerId, TinyState>,
}

impl TinyAutoscaler {
    /// Creates a scaler.
    ///
    /// # Panics
    ///
    /// Panics on an empty window, a percentile outside `(0, 100]`,
    /// non-positive headroom, inverted floor/ceiling pairs, or a zero
    /// update period.
    pub fn new(cfg: TinyAutoscalerConfig) -> Self {
        assert!(cfg.history_samples >= 1, "window needs at least 1 sample");
        assert!(
            cfg.percentile > 0.0 && cfg.percentile <= 100.0,
            "percentile must be in (0, 100]"
        );
        assert!(cfg.headroom > 0.0, "headroom must be positive");
        assert!(
            cfg.min_cpu_cores <= cfg.max_cpu_cores && cfg.min_mem_bytes <= cfg.max_mem_bytes,
            "floors must not exceed ceilings"
        );
        assert!(
            cfg.min_change_fraction >= 0.0,
            "min change fraction must be non-negative"
        );
        validate_update_period(cfg.update_period);
        TinyAutoscaler {
            cfg,
            containers: BTreeMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TinyAutoscalerConfig {
        &self.cfg
    }
}

fn rel_change(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        f64::INFINITY
    } else {
        (new - old).abs() / old
    }
}

impl PeriodicScaler for TinyAutoscaler {
    fn observe(&mut self, container: ContainerId, sample: UsageSample) {
        validate_observation(&sample, self.cfg.max_cpu_cores);
        let window = self.cfg.history_samples;
        let st = self.containers.entry(container).or_default();
        st.cpu_window.push_back(sample.cpu_cores);
        st.mem_window.push_back(sample.mem_bytes);
        while st.cpu_window.len() > window {
            st.cpu_window.pop_front();
        }
        while st.mem_window.len() > window {
            st.mem_window.pop_front();
        }
    }

    fn recommend(&mut self) -> Vec<LimitUpdate> {
        let cfg = self.cfg;
        let mut out = Vec::new();
        for (id, st) in &mut self.containers {
            if st.cpu_window.is_empty() {
                continue;
            }
            let cpu = (window_percentile(&st.cpu_window, cfg.percentile) * cfg.headroom)
                .clamp(cfg.min_cpu_cores, cfg.max_cpu_cores);
            let mem_peak = st.mem_window.iter().copied().max().unwrap_or(0);
            let mem = ((mem_peak as f64 * cfg.headroom) as u64)
                .max(st.mem_oom_floor)
                .clamp(cfg.min_mem_bytes, cfg.max_mem_bytes);
            let cpu_changed = rel_change(st.cpu_limit, cpu) > cfg.min_change_fraction;
            let mem_changed = rel_change(st.mem_limit as f64, mem as f64) > cfg.min_change_fraction;
            if !(cpu_changed || mem_changed) {
                continue;
            }
            if cpu_changed {
                st.cpu_limit = cpu;
            }
            if mem_changed {
                st.mem_limit = mem;
            }
            out.push(LimitUpdate {
                container: *id,
                cpu_limit_cores: cpu_changed.then_some(cpu),
                mem_limit_bytes: mem_changed.then_some(mem),
                requires_restart: false,
            });
        }
        out
    }

    fn on_oom(&mut self, container: ContainerId, limit_bytes: u64) {
        let st = self.containers.entry(container).or_default();
        st.mem_oom_floor = st
            .mem_oom_floor
            .max(limit_bytes.saturating_add(limit_bytes / 4));
    }

    fn track(&mut self, container: ContainerId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        let st = self.containers.entry(container).or_default();
        st.cpu_limit = cpu_limit_cores;
        st.mem_limit = mem_limit_bytes;
    }

    fn forget(&mut self, container: ContainerId) {
        self.containers.remove(&container);
    }

    fn update_period(&self) -> SimDuration {
        self.cfg.update_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ContainerId = ContainerId::new(0);

    fn sample(cpu: f64, mem_mib: u64) -> UsageSample {
        UsageSample {
            cpu_cores: cpu,
            mem_bytes: mem_mib * escra_cfs::MIB,
        }
    }

    #[test]
    fn percentile_of_window_drives_the_limit() {
        let mut t = TinyAutoscaler::new(TinyAutoscalerConfig::default());
        // 29 samples at 0.5 cores, one spike at 2.0: p95 over 30 samples
        // is the 29th-ranked value = 0.5.
        for _ in 0..29 {
            t.observe(C, sample(0.5, 64));
        }
        t.observe(C, sample(2.0, 64));
        let up = t.recommend();
        assert_eq!(up.len(), 1);
        let cpu = up[0].cpu_limit_cores.unwrap();
        assert!((cpu - 0.5 * 1.15).abs() < 1e-9, "cpu {cpu}");
    }

    #[test]
    fn window_slides_past_old_peaks() {
        let mut t = TinyAutoscaler::new(TinyAutoscalerConfig::default());
        for _ in 0..30 {
            t.observe(C, sample(4.0, 64));
        }
        let high = t.recommend()[0].cpu_limit_cores.unwrap();
        // 30 fresh low samples fully evict the old phase.
        for _ in 0..30 {
            t.observe(C, sample(0.2, 64));
        }
        let low = t.recommend()[0].cpu_limit_cores.unwrap();
        assert!(high > 4.0 && low < 0.3, "high {high} low {low}");
    }

    #[test]
    fn flat_usage_converges_to_silence() {
        let mut t = TinyAutoscaler::new(TinyAutoscalerConfig::default());
        for _ in 0..30 {
            t.observe(C, sample(1.0, 128));
        }
        assert_eq!(t.recommend().len(), 1);
        for _ in 0..10 {
            t.observe(C, sample(1.0, 128));
            assert!(t.recommend().is_empty(), "flat usage must not churn");
        }
    }

    #[test]
    fn oom_raises_the_memory_floor() {
        let mut t = TinyAutoscaler::new(TinyAutoscalerConfig::default());
        t.observe(C, sample(0.5, 100));
        let before = t.recommend()[0].mem_limit_bytes.unwrap();
        t.on_oom(C, 200 * escra_cfs::MIB);
        t.observe(C, sample(0.5, 100));
        let after = t.recommend()[0].mem_limit_bytes.unwrap();
        assert!(after >= 250 * escra_cfs::MIB, "after {after}");
        assert!(after > before);
    }

    #[test]
    fn limits_respect_floor_and_ceiling() {
        let cfg = TinyAutoscalerConfig {
            max_cpu_cores: 2.0,
            ..TinyAutoscalerConfig::default()
        };
        let mut t = TinyAutoscaler::new(cfg);
        t.observe(C, sample(0.0, 0));
        let up = t.recommend();
        assert_eq!(up[0].cpu_limit_cores, Some(cfg.min_cpu_cores));
        assert_eq!(up[0].mem_limit_bytes, Some(cfg.min_mem_bytes));
        let d = ContainerId::new(1);
        t.observe(d, sample(2.0, 64));
        let up = t.recommend();
        assert_eq!(up[0].cpu_limit_cores, Some(2.0), "clamped at the ceiling");
    }

    #[test]
    fn forget_drops_state_and_track_seeds_limits() {
        let mut t = TinyAutoscaler::new(TinyAutoscalerConfig::default());
        let seeded_mem = ((64 * escra_cfs::MIB) as f64 * 1.15) as u64;
        t.track(C, 1.15, seeded_mem);
        t.observe(C, sample(1.0, 64));
        // Seeded limits equal the prediction → suppressed.
        assert!(t.recommend().is_empty());
        t.forget(C);
        assert!(t.recommend().is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn invalid_percentile_panics() {
        TinyAutoscaler::new(TinyAutoscalerConfig {
            percentile: 0.0,
            ..TinyAutoscalerConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "update period must be non-zero")]
    fn zero_period_panics() {
        TinyAutoscaler::new(TinyAutoscalerConfig {
            update_period: SimDuration::ZERO,
            ..TinyAutoscalerConfig::default()
        });
    }
}
