//! Static allocation — the "common practice" baseline (§VI-B/C).
//!
//! Limits are set once, to `factor ×` the profiled peak usage of each
//! container, and never change. The paper evaluates 0.75× (underutilized),
//! 1.0× (best estimate) and 1.5× (safe buffer), settling on 1.5× for the
//! comparisons.

use crate::types::{
    validate_observation, ContainerProfile, LimitUpdate, PeriodicScaler, UsageSample,
};
use escra_cluster::ContainerId;
use escra_simcore::time::SimDuration;
use std::collections::BTreeMap;

/// The static allocation policy: per-container fixed limits derived from
/// a profiling run.
///
/// ```
/// use escra_baselines::static_alloc::StaticPolicy;
/// use escra_baselines::types::ContainerProfile;
/// use escra_cluster::ContainerId;
///
/// let mut profiles = std::collections::BTreeMap::new();
/// profiles.insert(
///     ContainerId::new(0),
///     ContainerProfile { peak_cpu_cores: 2.0, peak_mem_bytes: 100 << 20 },
/// );
/// let policy = StaticPolicy::from_profiles(&profiles, 1.5);
/// let updates = policy.initial_limits();
/// assert_eq!(updates[0].cpu_limit_cores, Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    limits: BTreeMap<ContainerId, ContainerProfile>,
    factor: f64,
    emitted: bool,
}

impl StaticPolicy {
    /// Builds the policy from profiled peaks and a provisioning factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn from_profiles(profiles: &BTreeMap<ContainerId, ContainerProfile>, factor: f64) -> Self {
        assert!(factor > 0.0, "provisioning factor must be positive");
        StaticPolicy {
            limits: profiles
                .iter()
                .map(|(id, p)| (*id, p.scaled(factor)))
                .collect(),
            factor,
            emitted: false,
        }
    }

    /// The provisioning factor in use.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The fixed limits, as one-shot updates applied at deployment.
    pub fn initial_limits(&self) -> Vec<LimitUpdate> {
        self.limits
            .iter()
            .map(|(id, p)| LimitUpdate {
                container: *id,
                cpu_limit_cores: Some(p.peak_cpu_cores.max(0.05)),
                mem_limit_bytes: Some(p.peak_mem_bytes.max(1)),
                requires_restart: false,
            })
            .collect()
    }

    /// The fixed CPU limit for one container, if profiled.
    pub fn cpu_limit_of(&self, container: ContainerId) -> Option<f64> {
        self.limits.get(&container).map(|p| p.peak_cpu_cores)
    }

    /// The fixed memory limit for one container, if profiled.
    pub fn mem_limit_of(&self, container: ContainerId) -> Option<u64> {
        self.limits.get(&container).map(|p| p.peak_mem_bytes)
    }
}

/// The degenerate periodic scaler: emits [`StaticPolicy::initial_limits`]
/// exactly once, then stays silent forever — letting the conformance
/// suite and the drivers treat "common practice" as just another policy
/// behind the shared trait.
impl PeriodicScaler for StaticPolicy {
    fn observe(&mut self, _container: ContainerId, sample: UsageSample) {
        validate_observation(&sample, f64::INFINITY);
    }

    fn recommend(&mut self) -> Vec<LimitUpdate> {
        if self.emitted {
            return Vec::new();
        }
        self.emitted = true;
        self.initial_limits()
    }

    fn update_period(&self) -> SimDuration {
        SimDuration::from_secs(60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> BTreeMap<ContainerId, ContainerProfile> {
        let mut m = BTreeMap::new();
        m.insert(
            ContainerId::new(0),
            ContainerProfile {
                peak_cpu_cores: 1.0,
                peak_mem_bytes: 100,
            },
        );
        m.insert(
            ContainerId::new(1),
            ContainerProfile {
                peak_cpu_cores: 2.0,
                peak_mem_bytes: 200,
            },
        );
        m
    }

    #[test]
    fn applies_factor_to_every_container() {
        let p = StaticPolicy::from_profiles(&profiles(), 1.5);
        assert_eq!(p.cpu_limit_of(ContainerId::new(0)), Some(1.5));
        assert_eq!(p.mem_limit_of(ContainerId::new(1)), Some(300));
        assert_eq!(p.factor(), 1.5);
        assert_eq!(p.initial_limits().len(), 2);
    }

    #[test]
    fn limits_never_change() {
        let p = StaticPolicy::from_profiles(&profiles(), 1.0);
        let a = p.initial_limits();
        let b = p.initial_limits();
        assert_eq!(a, b);
        assert!(a.iter().all(|u| !u.requires_restart));
    }

    #[test]
    fn unknown_container_is_none() {
        let p = StaticPolicy::from_profiles(&profiles(), 1.0);
        assert_eq!(p.cpu_limit_of(ContainerId::new(9)), None);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_factor_panics() {
        StaticPolicy::from_profiles(&profiles(), 0.0);
    }

    #[test]
    fn trait_impl_emits_once_then_goes_quiet() {
        let mut p = StaticPolicy::from_profiles(&profiles(), 1.5);
        p.observe(
            ContainerId::new(0),
            UsageSample {
                cpu_cores: 0.5,
                mem_bytes: 10,
            },
        );
        assert_eq!(p.recommend().len(), 2, "one-shot initial limits");
        for _ in 0..5 {
            assert!(p.recommend().is_empty(), "static limits never change");
        }
        assert_eq!(p.update_period(), SimDuration::from_secs(60));
    }
}
