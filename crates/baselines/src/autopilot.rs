//! A recreation of Google's Autopilot recommender (Rzadca et al.,
//! EuroSys 2020), as the paper builds one for its evaluation (§VI-A):
//!
//! > "The Autopilot ML recommender is inspired by a multi-armed bandit
//! > problem in which an agent tries to use the best set of arms to
//! > maximize the total reward gain over time."
//!
//! Per container and resource, Autopilot keeps exponentially decaying
//! histograms of usage; each **arm** is a (decay half-life, percentile,
//! safety margin) triple yielding a candidate limit; arms accrue an
//! exponentially smoothed cost of overruns (`w_o`), underruns/slack
//! (`w_u`) and limit churn (`w_Δ`); each update period the cheapest arm's
//! candidate becomes the limit. Like the original (and unlike VPA), the
//! limits apply without container restarts.

use crate::types::{
    validate_observation, validate_update_period, LimitUpdate, PeriodicScaler, UsageSample,
};
use escra_cluster::ContainerId;
use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bandit arm: a decayed-histogram percentile with a safety margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arm {
    /// Histogram half-life in samples.
    pub half_life_samples: f64,
    /// Percentile of the decayed usage distribution, in `[0, 100]`.
    pub percentile: f64,
    /// Multiplicative safety margin on top of the percentile.
    pub margin: f64,
}

/// Autopilot configuration. The weight values (`w_o`, `w_u`, …) are the
/// parameters the paper notes Google tuned by hand; as in the paper we
/// tune them for best baseline performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutopilotConfig {
    /// How often limits are recomputed. Autopilot defaults to 5 min; the
    /// paper shows 1 s is its best case and compares against that.
    pub update_period: SimDuration,
    /// The CPU arms of the bandit.
    pub arms: Vec<Arm>,
    /// Cost weight of an overrun (usage above the candidate limit).
    pub w_overrun: f64,
    /// Cost weight of slack (candidate limit above usage).
    pub w_underrun: f64,
    /// Cost weight of changing the applied limit (churn).
    pub w_delta: f64,
    /// Half-life, in samples, of the per-arm cost smoothing.
    pub cost_half_life_samples: f64,
    /// Memory limit = decayed peak × (1 + `mem_margin`).
    pub mem_margin: f64,
    /// Half-life, in samples, of the memory peak decay.
    pub mem_half_life_samples: f64,
    /// Minimum relative change before a new limit is actually emitted.
    pub min_change_fraction: f64,
    /// Floor for CPU limits, in cores.
    pub min_cpu_cores: f64,
    /// Floor for memory limits, in bytes.
    pub min_mem_bytes: u64,
}

impl Default for AutopilotConfig {
    fn default() -> Self {
        AutopilotConfig {
            update_period: SimDuration::from_secs(1),
            arms: vec![
                Arm {
                    half_life_samples: 30.0,
                    percentile: 95.0,
                    margin: 0.10,
                },
                Arm {
                    half_life_samples: 30.0,
                    percentile: 99.0,
                    margin: 0.15,
                },
                Arm {
                    half_life_samples: 120.0,
                    percentile: 90.0,
                    margin: 0.25,
                },
                Arm {
                    half_life_samples: 120.0,
                    percentile: 95.0,
                    margin: 0.15,
                },
                Arm {
                    half_life_samples: 600.0,
                    percentile: 99.0,
                    margin: 0.10,
                },
            ],
            w_overrun: 4.0,
            w_underrun: 1.0,
            w_delta: 0.1,
            cost_half_life_samples: 60.0,
            mem_margin: 0.25,
            mem_half_life_samples: 300.0,
            min_change_fraction: 0.02,
            min_cpu_cores: 0.05,
            min_mem_bytes: 32 * escra_cfs::MIB,
        }
    }
}

impl AutopilotConfig {
    /// Sets the update period (builder style) — used by the §VI-A
    /// update-period sensitivity experiment (1 s / 10 s / 30 s / 60 s).
    pub fn with_update_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "update period must be non-zero");
        self.update_period = period;
        self
    }
}

/// An exponentially decaying histogram over non-negative values with
/// fixed-width buckets.
#[derive(Debug, Clone)]
struct DecayedHistogram {
    weights: Vec<f64>,
    bucket_width: f64,
    decay: f64, // per-sample multiplicative decay
    total: f64,
}

impl DecayedHistogram {
    fn new(bucket_width: f64, max_value: f64, half_life_samples: f64) -> Self {
        let n = (max_value / bucket_width).ceil() as usize + 1;
        DecayedHistogram {
            weights: vec![0.0; n],
            bucket_width,
            decay: 0.5f64.powf(1.0 / half_life_samples),
            total: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        for w in &mut self.weights {
            *w *= self.decay;
        }
        self.total *= self.decay;
        let idx = ((value / self.bucket_width) as usize).min(self.weights.len() - 1);
        self.weights[idx] += 1.0;
        self.total += 1.0;
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let target = self.total * p / 100.0;
        let mut cum = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            cum += w;
            if cum >= target {
                return (i as f64 + 1.0) * self.bucket_width;
            }
        }
        self.weights.len() as f64 * self.bucket_width
    }
}

#[derive(Debug)]
struct ArmState {
    hist: DecayedHistogram,
    cost: f64,
}

#[derive(Debug)]
struct ContainerState {
    arms: Vec<ArmState>,
    mem_peak: f64,
    mem_decay: f64,
    applied_cpu: f64,
    applied_mem: u64,
}

/// The Autopilot-style periodic scaler.
///
/// ```
/// use escra_baselines::autopilot::{AutopilotConfig, AutopilotScaler};
/// use escra_baselines::types::{PeriodicScaler, UsageSample};
/// use escra_cluster::ContainerId;
///
/// let mut ap = AutopilotScaler::new(AutopilotConfig::default());
/// let c = ContainerId::new(0);
/// for _ in 0..60 {
///     ap.observe(c, UsageSample { cpu_cores: 1.0, mem_bytes: 100 << 20 });
/// }
/// let updates = ap.recommend();
/// assert_eq!(updates.len(), 1);
/// let cpu = updates[0].cpu_limit_cores.expect("cpu limit");
/// assert!(cpu > 1.0 && cpu < 1.5); // percentile + margin above usage
/// ```
#[derive(Debug)]
pub struct AutopilotScaler {
    cfg: AutopilotConfig,
    cost_decay: f64,
    containers: BTreeMap<ContainerId, ContainerState>,
}

impl AutopilotScaler {
    /// Creates a scaler.
    ///
    /// # Panics
    ///
    /// Panics if the config has no arms.
    pub fn new(cfg: AutopilotConfig) -> Self {
        assert!(!cfg.arms.is_empty(), "Autopilot needs at least one arm");
        validate_update_period(cfg.update_period);
        let cost_decay = 0.5f64.powf(1.0 / cfg.cost_half_life_samples);
        AutopilotScaler {
            cost_decay,
            cfg,
            containers: BTreeMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AutopilotConfig {
        &self.cfg
    }

    /// Warm-starts a container's recommender from profiled peaks, as a
    /// production Autopilot would from historical usage: the histograms
    /// are seeded with `samples` observations around the peak so the
    /// first recommendations start at the profiled level instead of the
    /// floor (avoiding a throttle-feedback cold start). The seed decays
    /// away at each arm's half-life as real usage arrives.
    pub fn seed_profile(
        &mut self,
        container: ContainerId,
        peak_cpu_cores: f64,
        peak_mem_bytes: u64,
        samples: usize,
    ) {
        for i in 0..samples {
            // Alternate the peak with a mid value so percentiles have a
            // distribution to work with, not a single spike.
            let cpu = if i % 2 == 0 {
                peak_cpu_cores
            } else {
                peak_cpu_cores * 0.6
            };
            self.observe(
                container,
                UsageSample {
                    cpu_cores: cpu,
                    mem_bytes: peak_mem_bytes,
                },
            );
        }
        // Neutralize the cost accumulated while seeding.
        if let Some(state) = self.containers.get_mut(&container) {
            for arm in &mut state.arms {
                arm.cost = 0.0;
            }
        }
    }

    fn state_for(&mut self, container: ContainerId) -> &mut ContainerState {
        let cfg = &self.cfg;
        self.containers.entry(container).or_insert_with(|| {
            ContainerState {
                arms: cfg
                    .arms
                    .iter()
                    .map(|a| ArmState {
                        // 0.05-core buckets up to 64 cores.
                        hist: DecayedHistogram::new(0.05, 64.0, a.half_life_samples),
                        cost: 0.0,
                    })
                    .collect(),
                mem_peak: 0.0,
                mem_decay: 0.5f64.powf(1.0 / cfg.mem_half_life_samples),
                applied_cpu: 0.0,
                applied_mem: 0,
            }
        })
    }

    fn arm_candidate(arm: &Arm, state: &ArmState, floor: f64) -> f64 {
        (state.hist.percentile(arm.percentile) * (1.0 + arm.margin)).max(floor)
    }
}

impl PeriodicScaler for AutopilotScaler {
    fn observe(&mut self, container: ContainerId, sample: UsageSample) {
        validate_observation(&sample, f64::INFINITY);
        let cost_decay = self.cost_decay;
        let (w_o, w_u, w_d) = (self.cfg.w_overrun, self.cfg.w_underrun, self.cfg.w_delta);
        let arms = self.cfg.arms.clone();
        let floor = self.cfg.min_cpu_cores;
        let state = self.state_for(container);
        let applied = state.applied_cpu;
        for (arm, st) in arms.iter().zip(state.arms.iter_mut()) {
            st.hist.observe(sample.cpu_cores);
            let candidate = (st.hist.percentile(arm.percentile) * (1.0 + arm.margin)).max(floor);
            let over = (sample.cpu_cores - candidate).max(0.0) / candidate.max(1e-6);
            let under = (candidate - sample.cpu_cores).max(0.0) / candidate.max(1e-6);
            let churn = if applied > 0.0 {
                (candidate - applied).abs() / applied
            } else {
                0.0
            };
            st.cost = st.cost * cost_decay + w_o * over + w_u * under + w_d * churn;
        }
        state.mem_peak = (state.mem_peak * state.mem_decay).max(sample.mem_bytes as f64);
    }

    fn recommend(&mut self) -> Vec<LimitUpdate> {
        let cfg = self.cfg.clone();
        let mut out = Vec::new();
        for (id, state) in &mut self.containers {
            // Best arm by smoothed cost.
            let (best_idx, _) = state
                .arms
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.cost.partial_cmp(&b.cost).expect("NaN cost"))
                .expect("at least one arm");
            let cpu = Self::arm_candidate(
                &cfg.arms[best_idx],
                &state.arms[best_idx],
                cfg.min_cpu_cores,
            );
            let mem = ((state.mem_peak * (1.0 + cfg.mem_margin)) as u64).max(cfg.min_mem_bytes);

            let cpu_changed = state.applied_cpu <= 0.0
                || (cpu - state.applied_cpu).abs() / state.applied_cpu > cfg.min_change_fraction;
            let mem_changed = state.applied_mem == 0
                || (mem as f64 - state.applied_mem as f64).abs() / state.applied_mem as f64
                    > cfg.min_change_fraction;
            if cpu_changed || mem_changed {
                if cpu_changed {
                    state.applied_cpu = cpu;
                }
                if mem_changed {
                    state.applied_mem = mem;
                }
                out.push(LimitUpdate {
                    container: *id,
                    cpu_limit_cores: cpu_changed.then_some(cpu),
                    mem_limit_bytes: mem_changed.then_some(mem),
                    requires_restart: false,
                });
            }
        }
        out
    }

    fn update_period(&self) -> SimDuration {
        self.cfg.update_period
    }

    /// Warm-starts from the applied limits, exactly as the microsim
    /// seeds from profiled peaks (40 alternating samples).
    fn track(&mut self, container: ContainerId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        self.seed_profile(container, cpu_limit_cores, mem_limit_bytes, 40);
    }

    /// Removes a container's state (terminated pod).
    fn forget(&mut self, container: ContainerId) {
        self.containers.remove(&container);
    }

    fn on_oom(&mut self, container: ContainerId, limit_bytes: u64) {
        // Treat the OOM as evidence of demand ~25% above the limit —
        // the original Autopilot bumps limits on OOM events too.
        let state = self.state_for(container);
        state.mem_peak = state.mem_peak.max(limit_bytes as f64 * 1.25);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ContainerId = ContainerId::new(0);

    fn sample(cpu: f64, mem_mib: u64) -> UsageSample {
        UsageSample {
            cpu_cores: cpu,
            mem_bytes: mem_mib * escra_cfs::MIB,
        }
    }

    #[test]
    fn decayed_histogram_percentiles() {
        let mut h = DecayedHistogram::new(0.1, 10.0, 1e9); // ~no decay
        for _ in 0..90 {
            h.observe(1.0);
        }
        for _ in 0..10 {
            h.observe(5.0);
        }
        assert!((h.percentile(50.0) - 1.1).abs() < 0.11);
        assert!(h.percentile(99.0) >= 5.0);
    }

    #[test]
    fn decay_forgets_old_peaks() {
        let mut h = DecayedHistogram::new(0.1, 10.0, 5.0); // fast decay
        for _ in 0..10 {
            h.observe(8.0);
        }
        for _ in 0..200 {
            h.observe(1.0);
        }
        assert!(h.percentile(99.0) < 2.0, "old peak should have decayed");
    }

    #[test]
    fn limit_sits_above_steady_usage() {
        let mut ap = AutopilotScaler::new(AutopilotConfig::default());
        for _ in 0..120 {
            ap.observe(C, sample(2.0, 256));
        }
        let up = ap.recommend();
        let cpu = up[0].cpu_limit_cores.unwrap();
        let mem = up[0].mem_limit_bytes.unwrap();
        assert!(cpu > 2.0 && cpu < 3.0, "cpu limit {cpu}");
        assert!(mem > 256 * escra_cfs::MIB && mem < 350 * escra_cfs::MIB);
    }

    #[test]
    fn slow_reaction_to_bursts() {
        // This is the Autopilot weakness Escra exploits: after a long calm
        // phase, a sudden burst exceeds the limit until enough samples
        // shift the percentile.
        let mut ap = AutopilotScaler::new(AutopilotConfig::default());
        for _ in 0..300 {
            ap.observe(C, sample(0.5, 128));
        }
        let calm_limit = ap.recommend()[0].cpu_limit_cores.unwrap();
        // During the calm phase the limit converges well below the coming
        // burst: when the burst arrives the container is throttled until
        // the *next* update period — the lag Escra's per-period telemetry
        // avoids.
        assert!(calm_limit < 1.0, "calm limit {calm_limit}");
        // After sustained burst samples, the recommender catches up.
        for _ in 0..600 {
            ap.observe(C, sample(4.0, 128));
        }
        let after = ap
            .recommend()
            .first()
            .and_then(|u| u.cpu_limit_cores)
            .unwrap_or(calm_limit);
        assert!(after > 4.0, "limit {after} should exceed usage eventually");
    }

    #[test]
    fn small_changes_are_suppressed() {
        let mut ap = AutopilotScaler::new(AutopilotConfig::default());
        for _ in 0..100 {
            ap.observe(C, sample(1.0, 100));
        }
        let first = ap.recommend();
        assert_eq!(first.len(), 1);
        // A couple more identical samples should not trigger churn.
        ap.observe(C, sample(1.0, 100));
        ap.observe(C, sample(1.0, 100));
        let second = ap.recommend();
        assert!(second.is_empty(), "identical usage must not churn limits");
    }

    #[test]
    fn forget_drops_state() {
        let mut ap = AutopilotScaler::new(AutopilotConfig::default());
        ap.observe(C, sample(1.0, 100));
        ap.forget(C);
        assert!(ap.recommend().is_empty());
    }

    #[test]
    fn update_period_configurable() {
        let ap = AutopilotScaler::new(
            AutopilotConfig::default().with_update_period(SimDuration::from_secs(30)),
        );
        assert_eq!(ap.update_period(), SimDuration::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_arms_panics() {
        AutopilotScaler::new(AutopilotConfig {
            arms: vec![],
            ..AutopilotConfig::default()
        });
    }
}
