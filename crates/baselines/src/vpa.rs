//! A Kubernetes Vertical Pod Autoscaler (VPA) style scaler (§II).
//!
//! Threshold-based: a target utilization with lower/upper bounds; when
//! usage crosses a bound the limit is rescaled toward the target. The two
//! limitations the paper calls out are modelled faithfully:
//!
//! * applying a recommendation **restarts the container**;
//! * a container is rescaled **at most once per minute**.

use crate::types::{
    validate_observation, validate_update_period, LimitUpdate, PeriodicScaler, UsageSample,
};
use escra_cluster::ContainerId;
use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// VPA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VpaConfig {
    /// Desired usage/limit ratio after a rescale.
    pub target_utilization: f64,
    /// Rescale up when usage/limit exceeds this.
    pub upper_bound: f64,
    /// Rescale down when usage/limit falls below this.
    pub lower_bound: f64,
    /// Minimum time between rescales of one container (paper: 1 min).
    pub min_rescale_gap: SimDuration,
    /// How often recommendations are computed.
    pub update_period: SimDuration,
    /// Floor for CPU limits, in cores.
    pub min_cpu_cores: f64,
    /// Floor for memory limits, in bytes.
    pub min_mem_bytes: u64,
}

impl Default for VpaConfig {
    fn default() -> Self {
        VpaConfig {
            target_utilization: 0.7,
            upper_bound: 0.95,
            lower_bound: 0.35,
            min_rescale_gap: SimDuration::from_secs(60),
            update_period: SimDuration::from_secs(10),
            min_cpu_cores: 0.05,
            min_mem_bytes: 32 * escra_cfs::MIB,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct VpaState {
    cpu_limit: f64,
    mem_limit: u64,
    last_cpu_usage: f64,
    last_mem_usage: u64,
    /// Decaying peaks — VPA recommends from windowed usage history, not
    /// instantaneous samples (which would starve a restarting container).
    peak_cpu: f64,
    peak_mem: f64,
    /// Samples since the last rescale; gates the once-per-minute rule.
    samples_since_rescale: u64,
}

/// Per-sample decay of the tracked usage peaks (~1 min half-life at the
/// default 10 s update period).
const PEAK_DECAY: f64 = 0.9;

/// The VPA-style scaler.
///
/// The harness must seed current limits via [`VpaScaler::set_limits`]
/// (VPA reads them from the pod spec) and honour
/// [`LimitUpdate::requires_restart`] when applying recommendations.
#[derive(Debug)]
pub struct VpaScaler {
    cfg: VpaConfig,
    samples_per_gap: u64,
    containers: BTreeMap<ContainerId, VpaState>,
}

impl VpaScaler {
    /// Creates a scaler.
    ///
    /// # Panics
    ///
    /// Panics unless `lower_bound < target_utilization < upper_bound`.
    pub fn new(cfg: VpaConfig) -> Self {
        assert!(
            cfg.lower_bound < cfg.target_utilization && cfg.target_utilization < cfg.upper_bound,
            "bounds must straddle the target utilization"
        );
        validate_update_period(cfg.update_period);
        let samples_per_gap =
            (cfg.min_rescale_gap.as_micros() / cfg.update_period.as_micros()).max(1);
        VpaScaler {
            cfg,
            samples_per_gap,
            containers: BTreeMap::new(),
        }
    }

    /// Seeds the scaler's view of a container's current limits.
    pub fn set_limits(&mut self, container: ContainerId, cpu_cores: f64, mem_bytes: u64) {
        let st = self.containers.entry(container).or_default();
        st.cpu_limit = cpu_cores;
        st.mem_limit = mem_bytes;
        st.samples_since_rescale = u64::MAX / 2; // eligible immediately
    }
}

impl PeriodicScaler for VpaScaler {
    fn observe(&mut self, container: ContainerId, sample: UsageSample) {
        validate_observation(&sample, f64::INFINITY);
        let st = self.containers.entry(container).or_default();
        st.last_cpu_usage = sample.cpu_cores;
        st.last_mem_usage = sample.mem_bytes;
        st.peak_cpu = (st.peak_cpu * PEAK_DECAY).max(sample.cpu_cores);
        st.peak_mem = (st.peak_mem * PEAK_DECAY).max(sample.mem_bytes as f64);
    }

    fn recommend(&mut self) -> Vec<LimitUpdate> {
        let cfg = self.cfg;
        let gap = self.samples_per_gap;
        let mut out = Vec::new();
        for (id, st) in &mut self.containers {
            st.samples_since_rescale = st.samples_since_rescale.saturating_add(1);
            if st.cpu_limit <= 0.0 || st.samples_since_rescale < gap {
                continue;
            }
            let cpu_util = st.last_cpu_usage / st.cpu_limit;
            let mem_util = if st.mem_limit > 0 {
                st.last_mem_usage as f64 / st.mem_limit as f64
            } else {
                0.0
            };
            let cpu_out = cpu_util > cfg.upper_bound || cpu_util < cfg.lower_bound;
            let mem_out = mem_util > cfg.upper_bound || mem_util < cfg.lower_bound;
            if !(cpu_out || mem_out) {
                continue;
            }
            let new_cpu = (st.peak_cpu / cfg.target_utilization).max(cfg.min_cpu_cores);
            let new_mem = ((st.peak_mem / cfg.target_utilization) as u64).max(cfg.min_mem_bytes);
            st.cpu_limit = new_cpu;
            st.mem_limit = new_mem;
            st.samples_since_rescale = 0;
            out.push(LimitUpdate {
                container: *id,
                cpu_limit_cores: Some(new_cpu),
                mem_limit_bytes: Some(new_mem),
                requires_restart: true, // the VPA limitation
            });
        }
        out
    }

    fn track(&mut self, container: ContainerId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        self.set_limits(container, cpu_limit_cores, mem_limit_bytes);
    }

    fn forget(&mut self, container: ContainerId) {
        self.containers.remove(&container);
    }

    fn update_period(&self) -> SimDuration {
        self.cfg.update_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ContainerId = ContainerId::new(0);

    fn scaler() -> VpaScaler {
        let mut v = VpaScaler::new(VpaConfig::default());
        v.set_limits(C, 1.0, 256 * escra_cfs::MIB);
        v
    }

    #[test]
    fn rescales_up_when_above_upper_bound() {
        let mut v = scaler();
        v.observe(
            C,
            UsageSample {
                cpu_cores: 0.98,
                mem_bytes: 100 * escra_cfs::MIB,
            },
        );
        let up = v.recommend();
        assert_eq!(up.len(), 1);
        assert!(up[0].requires_restart);
        let cpu = up[0].cpu_limit_cores.unwrap();
        assert!((cpu - 0.98 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn within_bounds_is_quiet() {
        let mut v = scaler();
        v.observe(
            C,
            UsageSample {
                cpu_cores: 0.7,
                mem_bytes: 180 * escra_cfs::MIB,
            },
        );
        assert!(v.recommend().is_empty());
    }

    #[test]
    fn respects_min_rescale_gap() {
        let mut v = scaler();
        v.observe(
            C,
            UsageSample {
                cpu_cores: 0.98,
                mem_bytes: 250 * escra_cfs::MIB,
            },
        );
        assert_eq!(v.recommend().len(), 1);
        // Still over the bound, but inside the 60 s gap (6 update periods).
        for _ in 0..5 {
            v.observe(
                C,
                UsageSample {
                    cpu_cores: 2.0,
                    mem_bytes: 250 * escra_cfs::MIB,
                },
            );
            assert!(v.recommend().is_empty(), "rescale inside the gap");
        }
        v.observe(
            C,
            UsageSample {
                cpu_cores: 2.0,
                mem_bytes: 250 * escra_cfs::MIB,
            },
        );
        assert_eq!(v.recommend().len(), 1, "gap elapsed");
    }

    #[test]
    fn scales_down_when_idle() {
        let mut v = scaler();
        v.observe(
            C,
            UsageSample {
                cpu_cores: 0.1,
                mem_bytes: 200 * escra_cfs::MIB,
            },
        );
        let up = v.recommend();
        assert_eq!(up.len(), 1);
        assert!(up[0].cpu_limit_cores.unwrap() < 0.2);
    }

    #[test]
    #[should_panic(expected = "bounds must straddle")]
    fn invalid_bounds_panic() {
        VpaScaler::new(VpaConfig {
            lower_bound: 0.8,
            ..VpaConfig::default()
        });
    }
}
