//! Shared types for baseline autoscaling policies.

use escra_cluster::ContainerId;
use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A limit recommendation emitted by a periodic autoscaler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LimitUpdate {
    /// Target container.
    pub container: ContainerId,
    /// New CPU limit in cores, if changed.
    pub cpu_limit_cores: Option<f64>,
    /// New memory limit in bytes, if changed.
    pub mem_limit_bytes: Option<u64>,
    /// Whether applying this update restarts the container (VPA does;
    /// Autopilot and Escra do not).
    pub requires_restart: bool,
}

/// One usage observation for a container over a sample interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageSample {
    /// Mean CPU usage over the interval, in cores.
    pub cpu_cores: f64,
    /// Memory usage at the end of the interval, in bytes.
    pub mem_bytes: u64,
}

/// A periodic (sampling) autoscaler: the interface shared by the
/// Autopilot recreation and the VPA-style scaler. The harness feeds one
/// [`UsageSample`] per container per sample period and asks for
/// recommendations every update period.
pub trait PeriodicScaler {
    /// Ingests one usage sample for `container`.
    fn observe(&mut self, container: ContainerId, sample: UsageSample);

    /// Produces limit updates; called once per update period.
    fn recommend(&mut self) -> Vec<LimitUpdate>;

    /// Notifies the scaler that `container` was OOM-killed at its
    /// current memory limit. Default: no reaction. Autopilot reacts by
    /// raising its memory estimate (usage can never be observed above
    /// the limit, so without this signal an undersized limit is a fixed
    /// point and the container crash-loops).
    fn on_oom(&mut self, container: ContainerId, limit_bytes: u64) {
        let _ = (container, limit_bytes);
    }

    /// How often [`PeriodicScaler::recommend`] should be called.
    fn update_period(&self) -> SimDuration;
}

/// Peak resource usage measured for one container during a profiling run
/// (with coarse, seconds-level aggregation — the paper stresses that
/// such tooling "smooths out usage spikes", §VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ContainerProfile {
    /// Peak 1-second-averaged CPU usage, in cores.
    pub peak_cpu_cores: f64,
    /// Peak memory usage, in bytes.
    pub peak_mem_bytes: u64,
}

impl ContainerProfile {
    /// Scales the profile by a provisioning factor (0.75× / 1.0× / 1.5×
    /// in the paper's under/best/safe provisioning study).
    pub fn scaled(&self, factor: f64) -> ContainerProfile {
        ContainerProfile {
            peak_cpu_cores: self.peak_cpu_cores * factor,
            peak_mem_bytes: (self.peak_mem_bytes as f64 * factor) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_scaling() {
        let p = ContainerProfile {
            peak_cpu_cores: 2.0,
            peak_mem_bytes: 1000,
        };
        let s = p.scaled(1.5);
        assert_eq!(s.peak_cpu_cores, 3.0);
        assert_eq!(s.peak_mem_bytes, 1500);
    }
}
