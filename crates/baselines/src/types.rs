//! Shared types for baseline autoscaling policies.

use escra_cluster::ContainerId;
use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A limit recommendation emitted by a periodic autoscaler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LimitUpdate {
    /// Target container.
    pub container: ContainerId,
    /// New CPU limit in cores, if changed.
    pub cpu_limit_cores: Option<f64>,
    /// New memory limit in bytes, if changed.
    pub mem_limit_bytes: Option<u64>,
    /// Whether applying this update restarts the container (VPA does;
    /// Autopilot and Escra do not).
    pub requires_restart: bool,
}

/// One usage observation for a container over a sample interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageSample {
    /// Mean CPU usage over the interval, in cores.
    pub cpu_cores: f64,
    /// Memory usage at the end of the interval, in bytes.
    pub mem_bytes: u64,
}

/// Debug-asserted sanity checks on one telemetry observation, shared by
/// every [`PeriodicScaler`] impl: malformed telemetry (NaN/negative
/// usage, usage above the physical capacity) fails loudly in tests
/// instead of silently propagating into limit recommendations. Callers
/// that do not know the node capacity pass [`f64::INFINITY`]; the
/// harness validates against the real node core count before feeding
/// scalers.
pub fn validate_observation(sample: &UsageSample, capacity_cores: f64) {
    debug_assert!(
        sample.cpu_cores.is_finite(),
        "malformed telemetry: CPU usage must be finite, got {}",
        sample.cpu_cores
    );
    debug_assert!(
        sample.cpu_cores >= 0.0,
        "malformed telemetry: CPU usage must be non-negative, got {}",
        sample.cpu_cores
    );
    debug_assert!(
        sample.cpu_cores <= capacity_cores,
        "malformed telemetry: CPU usage {} cores exceeds capacity {} cores",
        sample.cpu_cores,
        capacity_cores
    );
}

/// Rejects a zero update period — a zero-period scaler would divide the
/// sample-per-gap bookkeeping by zero and can never be scheduled. Every
/// scaler constructor calls this.
///
/// # Panics
///
/// Panics if `period` is zero.
pub fn validate_update_period(period: SimDuration) {
    assert!(!period.is_zero(), "update period must be non-zero");
}

/// A periodic (sampling) autoscaler: the interface shared by the
/// baseline policies (Static, Autopilot recreation, VPA style,
/// Tiny-Autoscaler, ARC-V). The harness feeds one [`UsageSample`] per
/// container per sample period and asks for recommendations every
/// update period.
pub trait PeriodicScaler {
    /// Ingests one usage sample for `container`.
    fn observe(&mut self, container: ContainerId, sample: UsageSample);

    /// Produces limit updates; called once per update period.
    fn recommend(&mut self) -> Vec<LimitUpdate>;

    /// Notifies the scaler that `container` was OOM-killed at its
    /// current memory limit. Default: no reaction. Autopilot reacts by
    /// raising its memory estimate (usage can never be observed above
    /// the limit, so without this signal an undersized limit is a fixed
    /// point and the container crash-loops).
    fn on_oom(&mut self, container: ContainerId, limit_bytes: u64) {
        let _ = (container, limit_bytes);
    }

    /// Registers `container` with its currently applied limits — the
    /// seeding step when a pod spawns mid-run (serverless drivers) or at
    /// deployment (the microsim). Default: no-op, for scalers that learn
    /// lazily from observations alone.
    fn track(&mut self, container: ContainerId, cpu_limit_cores: f64, mem_limit_bytes: u64) {
        let _ = (container, cpu_limit_cores, mem_limit_bytes);
    }

    /// Drops all state for `container` (torn-down pod). Default: no-op.
    /// Scalers that keep per-container state must implement this so
    /// dynamic pod populations do not leak state or emit updates for
    /// dead containers.
    fn forget(&mut self, container: ContainerId) {
        let _ = container;
    }

    /// How often [`PeriodicScaler::recommend`] should be called.
    fn update_period(&self) -> SimDuration;
}

/// Peak resource usage measured for one container during a profiling run
/// (with coarse, seconds-level aggregation — the paper stresses that
/// such tooling "smooths out usage spikes", §VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ContainerProfile {
    /// Peak 1-second-averaged CPU usage, in cores.
    pub peak_cpu_cores: f64,
    /// Peak memory usage, in bytes.
    pub peak_mem_bytes: u64,
}

impl ContainerProfile {
    /// Scales the profile by a provisioning factor (0.75× / 1.0× / 1.5×
    /// in the paper's under/best/safe provisioning study).
    pub fn scaled(&self, factor: f64) -> ContainerProfile {
        ContainerProfile {
            peak_cpu_cores: self.peak_cpu_cores * factor,
            peak_mem_bytes: (self.peak_mem_bytes as f64 * factor) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_observation_passes() {
        validate_observation(
            &UsageSample {
                cpu_cores: 1.5,
                mem_bytes: 1 << 20,
            },
            16.0,
        );
        validate_update_period(SimDuration::from_millis(100));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "malformed telemetry"))]
    fn usage_above_capacity_fails_loudly() {
        validate_observation(
            &UsageSample {
                cpu_cores: 17.0,
                mem_bytes: 0,
            },
            16.0,
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "malformed telemetry"))]
    fn nan_usage_fails_loudly() {
        validate_observation(
            &UsageSample {
                cpu_cores: f64::NAN,
                mem_bytes: 0,
            },
            f64::INFINITY,
        );
    }

    #[test]
    #[should_panic(expected = "update period must be non-zero")]
    fn zero_period_fails_loudly() {
        validate_update_period(SimDuration::ZERO);
    }

    #[test]
    fn profile_scaling() {
        let p = ContainerProfile {
            peak_cpu_cores: 2.0,
            peak_mem_bytes: 1000,
        };
        let s = p.scaled(1.5);
        assert_eq!(s.peak_cpu_cores, 3.0);
        assert_eq!(s.peak_mem_bytes, 1500);
    }
}
