//! Criterion microbenchmarks of the Escra control plane: how expensive
//! is one telemetry ingest, one allocator decision, one Autopilot
//! recommender step. These back the §VI-I controller-capacity analysis
//! (`overhead_controller` converts ingest rate into containers/core).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use escra_baselines::{AutopilotConfig, AutopilotScaler, PeriodicScaler, UsageSample};
use escra_cfs::{CpuPeriodStats, MIB};
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_core::allocator::ResourceAllocator;
use escra_core::telemetry::ToController;
use escra_core::{Controller, CpuStatsEntry, EscraConfig};
use escra_simcore::time::SimTime;
use std::hint::black_box;

fn stats(throttled: bool) -> CpuPeriodStats {
    CpuPeriodStats {
        quota_cores: 1.0,
        usage_us: if throttled { 100_000.0 } else { 40_000.0 },
        unused_runtime_us: if throttled { 0.0 } else { 60_000.0 },
        throttled,
    }
}

fn allocator_with(n: u64) -> ResourceAllocator {
    let mut a = ResourceAllocator::new(EscraConfig::default());
    a.register_app(AppId::new(0), n as f64, n * 256 * MIB);
    for i in 0..n {
        a.register_container(
            ContainerId::new(i),
            AppId::new(0),
            NodeId::new(i % 8),
            1.0,
            128 * MIB,
        )
        .expect("register");
    }
    a
}

fn bench_allocator_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.sample_size(30);
    for n in [10u64, 100, 1_000] {
        group.bench_function(format!("cpu_decision/{n}_containers"), |b| {
            let mut alloc = allocator_with(n);
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n;
                black_box(
                    alloc
                        .on_cpu_stats(ContainerId::new(i), stats(i.is_multiple_of(5)))
                        .expect("tracked"),
                )
            });
        });
    }
    group.finish();
}

fn bench_controller_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller");
    group.sample_size(30);
    group.bench_function("ingest_cpu_stats/1000_containers", |b| {
        let n = 1_000u64;
        let mut ctl = Controller::new(EscraConfig::default());
        ctl.register_app(AppId::new(0), n as f64, n * 256 * MIB);
        for i in 0..n {
            ctl.register_container(
                ContainerId::new(i),
                AppId::new(0),
                NodeId::new(i % 8),
                1.0,
                128 * MIB,
            )
            .expect("register");
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % n;
            let msg = ToController::CpuStats {
                container: ContainerId::new(i),
                stats: stats(i.is_multiple_of(5)),
            };
            black_box(ctl.handle(SimTime::ZERO, msg))
        });
    });
    group.bench_function("ingest_cpu_batch/1000_containers", |b| {
        // The batched, allocation-free path: one per-node batch of 125
        // entries through `ingest_cpu_batch` with a reused action buffer
        // — compare per entry against ingest_cpu_stats above.
        let n = 1_000u64;
        let nodes = 8u64;
        let mut ctl = Controller::new(EscraConfig::default());
        ctl.register_app(AppId::new(0), n as f64, n * 256 * MIB);
        for i in 0..n {
            ctl.register_container(
                ContainerId::new(i),
                AppId::new(0),
                NodeId::new(i % nodes),
                1.0,
                128 * MIB,
            )
            .expect("register");
        }
        let mut batch: Vec<CpuStatsEntry> = Vec::with_capacity((n / nodes) as usize);
        let mut out = Vec::new();
        let mut node = 0u64;
        b.iter(|| {
            node = (node + 1) % nodes;
            batch.clear();
            let mut i = node;
            while i < n {
                batch.push(CpuStatsEntry {
                    container: ContainerId::new(i),
                    stats: stats(i.is_multiple_of(5)),
                });
                i += nodes;
            }
            out.clear();
            ctl.ingest_cpu_batch(&batch, &mut out);
            black_box(out.len())
        });
    });
    group.bench_function("oom_event_grant", |b| {
        b.iter_batched(
            || {
                let mut ctl = Controller::new(EscraConfig::default());
                ctl.register_app(AppId::new(0), 8.0, 8 << 30);
                ctl.register_container(
                    ContainerId::new(0),
                    AppId::new(0),
                    NodeId::new(0),
                    1.0,
                    256 * MIB,
                )
                .expect("register");
                ctl
            },
            |mut ctl| {
                black_box(ctl.handle(
                    SimTime::ZERO,
                    ToController::OomEvent {
                        container: ContainerId::new(0),
                        shortfall_bytes: MIB,
                        current_limit_bytes: 256 * MIB,
                    },
                ))
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_autopilot_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("autopilot");
    group.sample_size(20);
    group.bench_function("observe/100_containers", |b| {
        let mut ap = AutopilotScaler::new(AutopilotConfig::default());
        for i in 0..100u64 {
            ap.seed_profile(ContainerId::new(i), 1.0, 256 * MIB, 10);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100;
            ap.observe(
                ContainerId::new(i),
                UsageSample {
                    cpu_cores: 0.5 + (i % 7) as f64 * 0.1,
                    mem_bytes: 128 * MIB,
                },
            );
        });
    });
    group.bench_function("recommend/100_containers", |b| {
        let mut ap = AutopilotScaler::new(AutopilotConfig::default());
        for i in 0..100u64 {
            ap.seed_profile(ContainerId::new(i), 1.0, 256 * MIB, 10);
        }
        b.iter(|| black_box(ap.recommend()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_allocator_decision,
    bench_controller_ingest,
    bench_autopilot_step
);
criterion_main!(benches);
