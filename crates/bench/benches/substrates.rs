//! Criterion microbenchmarks of the simulated substrates: CFS period
//! accounting, node arbitration, histogram recording, and a full
//! end-to-end simulated second of the smallest paper application.

use criterion::{criterion_group, criterion_main, Criterion};
use escra_cfs::node::arbitrate;
use escra_cfs::CpuBandwidth;
use escra_harness::{run, MicroSimConfig, Policy};
use escra_simcore::histogram::LogHistogram;
use escra_simcore::rng::SimRng;
use escra_simcore::time::SimDuration;
use escra_workloads::{teastore, WorkloadKind};
use std::hint::black_box;

fn bench_cfs_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfs");
    group.sample_size(30);
    group.bench_function("consume_and_end_period", |b| {
        let mut bw = CpuBandwidth::new(2.0);
        b.iter(|| {
            bw.consume(black_box(150_000.0));
            black_box(bw.end_period())
        });
    });
    group.finish();
}

fn bench_arbitrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("node");
    group.sample_size(30);
    let mut rng = SimRng::new(1);
    for n in [8usize, 64] {
        let demands: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 200_000.0)).collect();
        group.bench_function(format!("arbitrate/{n}_containers"), |b| {
            b.iter(|| black_box(arbitrate(black_box(500_000.0), &demands)));
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    group.sample_size(30);
    group.bench_function("record", |b| {
        let mut h = LogHistogram::new();
        let mut rng = SimRng::new(2);
        b.iter(|| h.record(black_box(rng.exponential(0.01))));
    });
    group.bench_function("percentile_p999", |b| {
        let mut h = LogHistogram::new();
        let mut rng = SimRng::new(3);
        for _ in 0..100_000 {
            h.record(rng.exponential(0.01));
        }
        b.iter(|| black_box(h.percentile(99.9)));
    });
    group.finish();
}

fn bench_end_to_end_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("teastore_escra_5s_run", |b| {
        b.iter(|| {
            let cfg = MicroSimConfig::new(
                teastore(),
                WorkloadKind::Fixed { rps: 150.0 },
                Policy::escra_default(),
                7,
            )
            .with_duration(SimDuration::from_secs(5));
            black_box(run(&cfg).metrics.throughput())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cfs_tick,
    bench_arbitrate,
    bench_histogram,
    bench_end_to_end_second
);
criterion_main!(benches);
