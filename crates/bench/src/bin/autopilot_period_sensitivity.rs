//! Regenerates the **§VI-A update-period sensitivity** study: HipsterShop
//! throughput under Autopilot at 1 s / 10 s / 30 s / 60 s update periods
//! (the paper reports 422 → 382 → 279 → 108 req/s degradation), plus the
//! same sweep under the Burst workload where the effect is strongest.

use escra_baselines::AutopilotConfig;
use escra_bench::{write_json, SEED};
use escra_harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::{hipster_shop, WorkloadKind};

fn main() {
    let mut dump = Vec::new();
    for (wl_name, wl) in [
        ("fixed", WorkloadKind::paper_fixed()),
        ("burst", WorkloadKind::paper_burst()),
    ] {
        let base = MicroSimConfig::new(hipster_shop(), wl, Policy::static_1_5x(), SEED)
            .with_duration(SimDuration::from_secs(60));
        let profiles = profile_run(&base);
        let mut table = Table::new(vec![
            "update period",
            "tput(req/s)",
            "p99.9(ms)",
            "OOM kills",
        ]);
        for secs in [1u64, 10, 30, 60] {
            let cfg = MicroSimConfig {
                policy: Policy::Autopilot(
                    AutopilotConfig::default().with_update_period(SimDuration::from_secs(secs)),
                ),
                ..base.clone()
            };
            let m = run_with_profiles(&cfg, &profiles).metrics;
            table.row(vec![
                format!("{secs}s"),
                format!("{:.1}", m.throughput()),
                format!("{:.0}", m.latency.p(99.9)),
                format!("{}", m.oom_kills),
            ]);
            dump.push((wl_name, secs, m.throughput(), m.latency.p(99.9)));
        }
        println!("Autopilot update-period sensitivity — HipsterShop, {wl_name} workload");
        println!("{}", table.render());
    }
    println!("(paper, HipsterShop: 422 / 382 / 279 / 108 req/s at 1 / 10 / 30 / 60 s;");
    println!(" coarser periods react later to shifts and suffer more OOM restarts)");
    let path = write_json("autopilot_period_sensitivity", &to_json(&dump));
    println!("rows written to {}", path.display());
}
