//! Ablations over the design choices called out in DESIGN.md §4:
//! the scale-up growth cap, the scale-down margin γ, the sliding-window
//! length n, the reclamation margin δ, and the reclamation interval —
//! all on HipsterShop × Burst, the cell most sensitive to reaction speed.

use escra_bench::{write_json, SEED};
use escra_core::EscraConfig;
use escra_harness::{run, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::{hipster_shop, WorkloadKind};

fn run_with(cfg: EscraConfig) -> escra_metrics::RunMetrics {
    let sim = MicroSimConfig::new(
        hipster_shop(),
        WorkloadKind::paper_burst(),
        Policy::Escra(cfg),
        SEED,
    )
    .with_duration(SimDuration::from_secs(45));
    run(&sim).metrics
}

fn row(table: &mut Table, name: String, m: &escra_metrics::RunMetrics) {
    table.row(vec![
        name,
        format!("{:.1}", m.throughput()),
        format!("{:.0}", m.latency.p(99.9)),
        format!("{:.2}", m.slack.cpu_p(50.0)),
        format!("{:.0}", m.slack.mem_p(50.0)),
    ]);
}

fn main() {
    let headers = vec![
        "variant",
        "tput(req/s)",
        "p99.9(ms)",
        "cpu slack p50",
        "mem slack p50(MiB)",
    ];
    let mut dump: Vec<(String, f64, f64)> = Vec::new();
    let record = |m: &escra_metrics::RunMetrics, name: &str, dump: &mut Vec<(String, f64, f64)>| {
        dump.push((name.to_string(), m.throughput(), m.latency.p(99.9)));
    };

    println!("Ablations — HipsterShop x Burst, Escra variants\n");

    let mut t = Table::new(headers.clone());
    for factor in [1.1, 1.5, 2.0, 4.0] {
        let cfg = EscraConfig {
            max_quota_growth_factor: factor,
            ..EscraConfig::default()
        };
        let m = run_with(cfg);
        record(&m, &format!("growth-cap {factor}x"), &mut dump);
        row(&mut t, format!("growth cap {factor}x/period"), &m);
    }
    println!(
        "scale-up growth cap (reaction speed vs over-grant):\n{}",
        t.render()
    );

    let mut t = Table::new(headers.clone());
    for gamma in [0.1, 0.25, 0.5, 1.0] {
        let m = run_with(EscraConfig::default().with_gamma(gamma));
        record(&m, &format!("gamma {gamma}"), &mut dump);
        row(&mut t, format!("γ = {gamma} cores"), &m);
    }
    println!("scale-down margin γ (cushion vs slack):\n{}", t.render());

    let mut t = Table::new(headers.clone());
    for n in [1usize, 5, 20] {
        let m = run_with(EscraConfig::default().with_window(n));
        record(&m, &format!("window {n}"), &mut dump);
        row(&mut t, format!("window n = {n} periods"), &m);
    }
    println!(
        "sliding-window length (smoothing vs responsiveness):\n{}",
        t.render()
    );

    let mut t = Table::new(headers.clone());
    for mib in [10u64, 50, 200] {
        let m = run_with(EscraConfig::default().with_delta_bytes(mib * 1024 * 1024));
        record(&m, &format!("delta {mib}MiB"), &mut dump);
        row(&mut t, format!("δ = {mib} MiB"), &m);
    }
    println!("reclamation safe margin δ (paper: 50 MiB):\n{}", t.render());

    let mut t = Table::new(headers.clone());
    for secs in [1u64, 5, 30] {
        let cfg = EscraConfig {
            reclaim_interval: SimDuration::from_secs(secs),
            ..EscraConfig::default()
        };
        let m = run_with(cfg);
        record(&m, &format!("reclaim {secs}s"), &mut dump);
        row(&mut t, format!("reclaim every {secs} s"), &m);
    }
    println!("reclamation interval (paper: 5 s):\n{}", t.render());

    let path = write_json("ablation_design_choices", &to_json(&dump));
    println!("rows written to {}", path.display());
}
