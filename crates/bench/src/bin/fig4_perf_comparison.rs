//! Regenerates **Fig. 4**: % decrease in 99.9 % latency and % increase
//! in throughput of Escra vs every baseline (Static-1.5×, Autopilot,
//! tiny autoscaler, ARC-V), for all four applications × four
//! workloads.

use escra_bench::{parse_sweep_args, run_matrix_args, write_json};
use escra_metrics::{to_json, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    app: String,
    workload: String,
    vs: String,
    latency_decrease_pct: f64,
    throughput_increase_pct: f64,
}

fn main() {
    let cells = run_matrix_args(&parse_sweep_args());
    let mut table = Table::new(vec![
        "app",
        "workload",
        "dLat vs Static%",
        "dTput vs Static%",
        "dLat vs Autopilot%",
        "dTput vs Autopilot%",
        "dLat vs Tiny%",
        "dTput vs Tiny%",
        "dLat vs ARC-V%",
        "dTput vs ARC-V%",
    ]);
    let mut bars = Vec::new();
    for c in &cells {
        let lat = |m: &escra_metrics::RunMetrics| m.latency.p(99.9);
        let deltas = |m: &escra_metrics::RunMetrics| {
            (
                (lat(m) - lat(&c.escra)) / lat(m) * 100.0,
                (c.escra.throughput() - m.throughput()) / m.throughput() * 100.0,
            )
        };
        let baselines = [
            ("static-1.5x", deltas(&c.static_1_5)),
            ("autopilot", deltas(&c.autopilot)),
            ("tiny", deltas(&c.tiny)),
            ("arc-v", deltas(&c.arc_v)),
        ];
        let mut row = vec![c.app.to_string(), c.workload.to_string()];
        for &(_, (dl, dt)) in &baselines {
            row.push(format!("{dl:.1}"));
            row.push(format!("{dt:.1}"));
        }
        table.row(row);
        for (vs, (dl, dt)) in baselines {
            bars.push(Bar {
                app: c.app.into(),
                workload: c.workload.into(),
                vs: vs.into(),
                latency_decrease_pct: dl,
                throughput_increase_pct: dt,
            });
        }
    }
    println!("Fig. 4 — change in 99.9% latency and throughput, Escra vs baselines");
    println!("(positive = Escra better; paper reports up to 96.9% latency decrease and");
    println!(" 134%/324% TrainTicket burst/exp throughput increases, with a few small");
    println!(" negative cells such as TrainTicket-fixed at -5.5% tput)\n");
    println!("{}", table.render());
    let path = write_json("fig4_perf_comparison", &to_json(&bars));
    println!("bars written to {}", path.display());
}
