//! Regenerates **Fig. 4**: % decrease in 99.9 % latency and % increase
//! in throughput of Escra vs Autopilot and vs Static-1.5×, for all four
//! applications × four workloads.

use escra_bench::{parse_sweep_args, run_matrix_args, write_json};
use escra_metrics::{to_json, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    app: String,
    workload: String,
    vs: String,
    latency_decrease_pct: f64,
    throughput_increase_pct: f64,
}

fn main() {
    let cells = run_matrix_args(&parse_sweep_args());
    let mut table = Table::new(vec![
        "app",
        "workload",
        "dLat vs Static%",
        "dTput vs Static%",
        "dLat vs Autopilot%",
        "dTput vs Autopilot%",
    ]);
    let mut bars = Vec::new();
    for c in &cells {
        let lat = |m: &escra_metrics::RunMetrics| m.latency.p(99.9);
        let d_lat_static = (lat(&c.static_1_5) - lat(&c.escra)) / lat(&c.static_1_5) * 100.0;
        let d_tput_static =
            (c.escra.throughput() - c.static_1_5.throughput()) / c.static_1_5.throughput() * 100.0;
        let d_lat_ap = (lat(&c.autopilot) - lat(&c.escra)) / lat(&c.autopilot) * 100.0;
        let d_tput_ap =
            (c.escra.throughput() - c.autopilot.throughput()) / c.autopilot.throughput() * 100.0;
        table.row(vec![
            c.app.into(),
            c.workload.into(),
            format!("{d_lat_static:.1}"),
            format!("{d_tput_static:.1}"),
            format!("{d_lat_ap:.1}"),
            format!("{d_tput_ap:.1}"),
        ]);
        for (vs, dl, dt) in [
            ("static-1.5x", d_lat_static, d_tput_static),
            ("autopilot", d_lat_ap, d_tput_ap),
        ] {
            bars.push(Bar {
                app: c.app.into(),
                workload: c.workload.into(),
                vs: vs.into(),
                latency_decrease_pct: dl,
                throughput_increase_pct: dt,
            });
        }
    }
    println!("Fig. 4 — change in 99.9% latency and throughput, Escra vs baselines");
    println!("(positive = Escra better; paper reports up to 96.9% latency decrease and");
    println!(" 134%/324% TrainTicket burst/exp throughput increases, with a few small");
    println!(" negative cells such as TrainTicket-fixed at -5.5% tput)\n");
    println!("{}", table.render());
    let path = write_json("fig4_perf_comparison", &to_json(&bars));
    println!("bars written to {}", path.display());
}
