//! Simulator-core gates: the serial-tick vs event-heap **identity
//! check** and the 10k-node **scale smoke**.
//!
//! * `--identity` — runs committed paper scenarios (Teastore and
//!   HipsterShop cells at the smoke duration, Escra and Static policies)
//!   once on the frozen [`SimEngine::SerialTick`] reference loop and
//!   once on [`SimEngine::EventHeap`] with tick-coupled physics, and
//!   fails unless every observable output (metrics, network bytes,
//!   controller stats, fault stats, profiles) is byte-for-byte
//!   identical. This is the gate that let the experiment bins move onto
//!   the event engine.
//! * default mode — a synthetic 10 000-node cluster hosting 12 000
//!   containers under Escra, driven on the event heap with exact
//!   physics for millions of container-periods. Wall-time and
//!   throughput (container-periods/s, heap events/s) go to
//!   `BENCH_sim.json`; `--record` commits the numbers as the baseline
//!   and `--check` fails on a >2× throughput regression (generous,
//!   because shared CI hosts are noisy).
//!
//! `--smoke` shortens the scale run (still ≥ 1M container-periods).

use escra_bench::{write_json, SEED, SMOKE_RUN_SECS};
use escra_harness::{run, MicroSimConfig, MicroSimOutput, Policy, SimEngine, SimPhysics};
use escra_metrics::Table;
use escra_simcore::time::SimDuration;
use escra_workloads::{
    hipster_shop, teastore, MicroserviceApp, RequestClass, ServiceTier, WorkloadKind,
};
use std::time::Instant;

/// Committed baseline written by `--record`, validated by `--check`.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");

/// Scale-run cluster size (the ISSUE's 10k-node target).
const SCALE_NODES: usize = 10_000;
/// Replicas per tier in the synthetic scale app (2 tiers).
const SCALE_REPLICAS: usize = 6_000;

/// Everything observable about a run except the engine counters (which
/// legitimately differ between drivers).
fn digest(out: &MicroSimOutput) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        out.metrics, out.network, out.controller_stats, out.fault_stats, out.profiles
    )
}

/// The committed identity scenarios: two real apps × two policies at the
/// smoke duration, master seed — the same cells the experiment matrix
/// commits to EXPERIMENTS.md.
fn identity_scenarios() -> Vec<(String, MicroSimConfig)> {
    let mut out = Vec::new();
    for (app_name, app, workload) in [
        ("Teastore", teastore(), WorkloadKind::Fixed { rps: 150.0 }),
        ("HipsterShop", hipster_shop(), WorkloadKind::paper_exp()),
    ] {
        for policy in [Policy::escra_default(), Policy::static_1_5x()] {
            let label = format!("{app_name}/{}", policy.name());
            out.push((
                label,
                MicroSimConfig::new(app.clone(), workload.clone(), policy, SEED)
                    .with_duration(SimDuration::from_secs(SMOKE_RUN_SECS)),
            ));
        }
    }
    out
}

fn run_identity_gate() {
    let mut checked = 0usize;
    for (label, cfg) in identity_scenarios() {
        let serial = run(&cfg.clone().with_engine(SimEngine::SerialTick));
        let heap = run(&cfg
            .clone()
            .with_engine(SimEngine::EventHeap)
            .with_physics(SimPhysics::TickCoupled));
        let (ds, dh) = (digest(&serial), digest(&heap));
        if ds != dh {
            let at = ds
                .bytes()
                .zip(dh.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(ds.len().min(dh.len()));
            eprintln!("FAIL: serial-tick and event-heap outputs diverge on {label} at byte {at}");
            std::process::exit(1);
        }
        println!(
            "identity: {label} OK ({} bytes, {} rounds, {} heap events)",
            ds.len(),
            heap.sim.rounds,
            heap.sim.heap_events
        );
        checked += 1;
    }
    println!("serial-tick vs event-heap identity: OK ({checked} scenarios)");
}

/// A synthetic two-tier application sized for the scale run. Tier
/// parameters mirror Teastore-class services; background chains are
/// thinned to one event per 10 s per container so the heap carries a
/// realistic (not pathological) timer load at 12k containers.
fn scale_app() -> MicroserviceApp {
    let tier = |name: &str, cpu_per_req_ms: f64| ServiceTier {
        name: name.into(),
        replicas: SCALE_REPLICAS,
        cpu_per_req_ms,
        cpu_cv: 0.3,
        mem_base_mib: 48,
        mem_per_inflight_kib: 256,
        mem_cache_mib: 64,
        parallelism: 8.0,
        startup_cpu_cores: 0.5,
        bg_work_ms: 40.0,
        bg_interval_s: 10.0,
    };
    let containers = (2 * SCALE_REPLICAS) as f64;
    MicroserviceApp {
        name: "scale-synthetic".into(),
        tiers: vec![tier("edge", 4.0), tier("backend", 8.0)],
        classes: vec![RequestClass {
            name: "get".into(),
            weight: 1.0,
            path: vec![0, 1],
        }],
        global_cpu_cores: containers * 2.0,
        global_mem_mib: (2 * SCALE_REPLICAS) as u64 * 256,
    }
}

fn scale_cfg(duration_secs: u64) -> MicroSimConfig {
    let mut cfg = MicroSimConfig::new(
        scale_app(),
        WorkloadKind::Fixed { rps: 400.0 },
        Policy::escra_default(),
        SEED,
    )
    .with_duration(SimDuration::from_secs(duration_secs));
    cfg.worker_nodes = SCALE_NODES;
    cfg.node_cores = 4;
    cfg
}

/// Minimal JSON number extraction: the vendored serde_json shim only
/// serializes, so the committed baseline is read back by string search.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let rest = &json[at + pat.len()..];
    let rest = &rest[rest.find(':')? + 1..];
    let end = rest
        .find(|c| c == ',' || c == '}' || c == '\n')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let identity = args.iter().any(|a| a == "--identity");
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let record = args.iter().any(|a| a == "--record");
    for a in &args {
        assert!(
            matches!(
                a.as_str(),
                "--identity" | "--smoke" | "--check" | "--record"
            ),
            "unknown flag {a:?} (expected --identity, --smoke, --check, --record)"
        );
    }

    if identity {
        run_identity_gate();
        return;
    }

    let duration_secs = if smoke { 10 } else { 50 };
    let cfg = scale_cfg(duration_secs);
    let containers = cfg.app.container_count() as u64;
    let start = Instant::now();
    let out = run(&cfg);
    let wall = start.elapsed().as_secs_f64();

    let container_periods = out.sim.rounds * containers;
    let cp_rate = container_periods as f64 / wall;
    let ev_rate = out.sim.heap_events as f64 / wall;
    assert!(
        container_periods >= 1_000_000,
        "scale run too small: {container_periods} container-periods"
    );
    assert!(
        out.metrics.latency.successes() > 0,
        "scale run served no requests"
    );

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["nodes".into(), format!("{SCALE_NODES}")]);
    table.row(vec!["containers".into(), format!("{containers}")]);
    table.row(vec![
        "simulated".into(),
        format!("{duration_secs}s (+10s warm-up)"),
    ]);
    table.row(vec!["rounds".into(), format!("{}", out.sim.rounds)]);
    table.row(vec![
        "container-periods".into(),
        format!("{container_periods}"),
    ]);
    table.row(vec![
        "heap events".into(),
        format!("{}", out.sim.heap_events),
    ]);
    table.row(vec![
        "background jobs".into(),
        format!("{}", out.sim.bg_jobs),
    ]);
    table.row(vec![
        "requests served".into(),
        format!("{}", out.metrics.latency.successes()),
    ]);
    table.row(vec!["wall time".into(), format!("{wall:.2}s")]);
    table.row(vec!["container-periods/s".into(), format!("{cp_rate:.0}")]);
    table.row(vec!["heap events/s".into(), format!("{ev_rate:.0}")]);
    println!("Event-heap scale run ({SCALE_NODES} nodes, host-clock)");
    println!("{}", table.render());

    let json = format!(
        "{{\n  \"nodes\": {SCALE_NODES},\n  \
         \"containers\": {containers},\n  \
         \"rounds\": {},\n  \
         \"container_periods\": {container_periods},\n  \
         \"heap_events\": {},\n  \
         \"wall_secs\": {wall:.3},\n  \
         \"container_periods_per_sec\": {cp_rate:.0},\n  \
         \"heap_events_per_sec\": {ev_rate:.0}\n}}\n",
        out.sim.rounds, out.sim.heap_events,
    );
    let path = write_json("sim_scale", &json);
    println!("numbers written to {}", path.display());

    if record {
        std::fs::write(BASELINE_PATH, &json).expect("write committed baseline");
        println!("committed baseline recorded to {BASELINE_PATH}");
    }
    if check {
        let committed = std::fs::read_to_string(BASELINE_PATH)
            .unwrap_or_else(|e| panic!("read {BASELINE_PATH}: {e} (run with --record first)"));
        let committed_rate = extract_number(&committed, "container_periods_per_sec")
            .expect("baseline has container_periods_per_sec");
        println!(
            "check: {cp_rate:.0} container-periods/s vs committed {committed_rate:.0} \
             (floor {:.0})",
            0.5 * committed_rate
        );
        if cp_rate < 0.5 * committed_rate {
            eprintln!(
                "FAIL: scale-run throughput regressed >2x vs committed baseline \
                 ({cp_rate:.0} < 0.5 * {committed_rate:.0})"
            );
            std::process::exit(1);
        }
        println!("check: OK");
    }
}
