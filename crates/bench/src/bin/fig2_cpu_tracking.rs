//! Regenerates **Fig. 2**: Escra's CPU limit tracking a dynamic
//! sysbench-style workload saturating 1–4 CPUs over ~40 s.

use escra_bench::write_json;
use escra_core::EscraConfig;
use escra_harness::tracking::run_tracking;
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::SysbenchLoad;

fn main() {
    let result = run_tracking(
        &EscraConfig::default(),
        &SysbenchLoad::paper_fig2(),
        5.0,
        SimDuration::from_secs(40),
    );
    let mut table = Table::new(vec!["time(ms)", "limit(#CPUs)", "usage(#CPUs)"]);
    // Print one row per 500 ms, like reading points off the figure.
    for (i, ((t, limit), (_, usage))) in result.limit.iter().zip(result.usage.iter()).enumerate() {
        if i % 5 == 0 {
            table.row(vec![
                format!("{}", t.as_millis()),
                format!("{limit:.2}"),
                format!("{usage:.2}"),
            ]);
        }
    }
    println!("Fig. 2 — Escra CPU tracking under a dynamic (sysbench) workload");
    println!("(paper: limit hugs usage through the 1->3->2->4->1->2 core phases)\n");
    println!("{}", table.render());
    println!(
        "mean absolute slack: {:.3} cores; throttled periods: {} / {}",
        result.mean_slack_cores(),
        result.throttles,
        result.limit.len()
    );
    let series: Vec<(u64, f64, f64)> = result
        .limit
        .iter()
        .zip(result.usage.iter())
        .map(|((t, l), (_, u))| (t.as_millis(), l, u))
        .collect();
    let path = write_json("fig2_cpu_tracking", &to_json(&series));
    println!("series written to {}", path.display());
}
