//! Regenerates the **§VI-I network overhead** analysis: control-plane
//! bandwidth of Escra (UDP telemetry + RPC limit updates) versus the
//! number of managed containers. The paper measures a 12.06 Mbps peak
//! for 32 containers and expects linear scaling with container count.

use escra_bench::{write_json, SEED};
use escra_harness::{run, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::{hipster_shop, media_microservice, teastore, train_ticket, WorkloadKind};

fn main() {
    let mut table = Table::new(vec![
        "app",
        "containers",
        "peak Mbps",
        "mean Mbps",
        "bytes/container/s",
    ]);
    let mut dump = Vec::new();
    for app in [
        teastore(),
        hipster_shop(),
        media_microservice(),
        train_ticket(),
    ] {
        let n = app.container_count();
        let name = app.name.clone();
        let cfg = MicroSimConfig::new(
            app,
            WorkloadKind::paper_fixed(),
            Policy::escra_default(),
            SEED,
        )
        .with_duration(SimDuration::from_secs(60));
        let out = run(&cfg);
        let net = out.network.expect("escra run accounts bytes");
        let secs = 60.0 + 10.0; // measured run + warm-up
        let per_container = net.total_bytes() as f64 / n as f64 / secs;
        table.row(vec![
            name.clone(),
            format!("{n}"),
            format!("{:.3}", net.peak_mbps()),
            format!("{:.3}", net.mean_mbps()),
            format!("{per_container:.0}"),
        ]);
        dump.push((name, n, net.peak_mbps(), net.mean_mbps()));
    }
    println!("Escra control-plane network overhead vs container count");
    println!("{}", table.render());
    println!("(paper: 12.06 Mbps peak at 32 containers on their wire format; telemetry");
    println!(" is batched per node, so Mbps grows with the entry payload rate and the");
    println!(" per-container share of envelope headers drops as containers pack nodes)");
    let path = write_json("overhead_network", &to_json(&dump));
    println!("rows written to {}", path.display());
}
