//! Trace-driven mega-scenario benchmark: tens of thousands of traced
//! serverless apps — one Distributed Container each — across hundreds
//! of nodes, sharded over the deterministic sweep runner.
//!
//! The population is the synthetic Azure-Functions-shaped `mega_mix`
//! (76 % tiny steady apps, 19 % diurnal, 5 % heavy bursty), partitioned
//! round-robin into [`SHARDS`] independent sub-clusters. Each shard runs
//! the [`escra_harness::trace_sim`] driver with columnar telemetry on a
//! jittered report plan; shard results are reduced in shard order, so
//! the merged output is a pure function of `(population, seed)` — the
//! `--serial` flag re-runs the grid serially and asserts the serialized
//! shard summaries are byte-identical to the parallel run.
//!
//! Reported side by side: the paper's metrics (99.9 %-ile latency,
//! CPU/memory slack percentiles, aggregate limits, OOM kills, throttle
//! rate) and the serverless statistics (cold starts and their latency,
//! wasted resource-time, absolute exec/total slowdown).
//!
//! `--record` commits wall-clock throughput to `BENCH_trace.json`;
//! `--check` fails on a >2× regression (generous: CI hosts are noisy)
//! and re-asserts the scale floors (≥ 10 000 apps, ≥ 1M
//! container-periods).

use escra_bench::{assert_byte_identical, write_json, SEED};
use escra_core::EscraConfig;
use escra_harness::{
    default_threads, run_serial, run_sweep, run_trace_sim, scenarios, ReportPlan, TraceSimConfig,
    TraceSimOutput,
};
use escra_metrics::{to_json, LatencyRecorder, ServerlessStats, SlackRecorder};
use escra_simcore::time::SimTime;
use escra_workloads::{mega_mix, synthetic_trace, TraceWorkload};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Committed baseline written by `--record`, validated by `--check`.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");

/// Fixed shard count — independent of `--threads`, so the grid (and its
/// seeds) never changes shape with the worker pool.
const SHARDS: usize = 16;

/// The smoke/full population sizes. Both clear the ISSUE floors
/// (≥ 10 000 traced apps, ≥ 1M container-periods).
const SMOKE_APPS: usize = 10_000;
const SMOKE_MINUTES: usize = 2;
const SMOKE_NODES: usize = 192;
const FULL_APPS: usize = 20_000;
const FULL_MINUTES: usize = 6;
const FULL_NODES: usize = 384;

/// One shard's serialized summary — the byte-identity currency of the
/// `--serial` gate (no wall times, pure simulation output).
#[derive(Debug, Clone, Serialize)]
struct ShardSummary {
    shard: usize,
    apps: usize,
    invocations: u64,
    cold_starts: u64,
    cold_start_mean_ms: f64,
    wasted_cpu_core_secs: f64,
    wasted_mem_mib_secs: f64,
    exec_slowdown_mean_ms: f64,
    total_slowdown_mean_ms: f64,
    latency_p999_ms: f64,
    cpu_slack_p99_cores: f64,
    mem_slack_p99_mib: f64,
    cpu_limit_mean_cores: f64,
    mem_limit_mean_mib: f64,
    oom_kills: u64,
    container_periods: u64,
    throttled_periods: u64,
    pods_spawned: u64,
    peak_pods: usize,
    control_bytes: u64,
    rounds_executed: u64,
    rounds_fast_forwarded: u64,
}

fn summarize(shard: usize, apps: usize, out: &TraceSimOutput) -> ShardSummary {
    ShardSummary {
        shard,
        apps,
        invocations: out.serverless.invocations,
        cold_starts: out.serverless.cold_starts,
        cold_start_mean_ms: out.serverless.cold_start_mean_ms(),
        wasted_cpu_core_secs: out.serverless.wasted_cpu_core_secs,
        wasted_mem_mib_secs: out.serverless.wasted_mem_mib_secs,
        exec_slowdown_mean_ms: out.serverless.abs_exec_slowdown_mean_ms(),
        total_slowdown_mean_ms: out.serverless.abs_total_slowdown_mean_ms(),
        latency_p999_ms: out.metrics.latency.p(99.9),
        cpu_slack_p99_cores: out.metrics.slack.cpu_p(99.0),
        mem_slack_p99_mib: out.metrics.slack.mem_p(99.0),
        cpu_limit_mean_cores: out.metrics.cpu_limit_series.mean(),
        mem_limit_mean_mib: out.metrics.mem_limit_series.mean(),
        oom_kills: out.metrics.oom_kills,
        container_periods: out.container_periods,
        throttled_periods: out.throttled_periods,
        pods_spawned: out.pods_spawned,
        peak_pods: out.peak_pods,
        control_bytes: out.control_bytes,
        rounds_executed: out.rounds_executed,
        rounds_fast_forwarded: out.rounds_fast_forwarded,
    }
}

/// Partitions the population round-robin into shard sub-workloads, so
/// every shard sees the same class mix.
fn shard_workloads(w: &TraceWorkload) -> Vec<TraceWorkload> {
    let mut shards = vec![
        TraceWorkload {
            apps: Vec::new(),
            minutes: w.minutes,
        };
        SHARDS
    ];
    for (i, app) in w.apps.iter().enumerate() {
        shards[i % SHARDS].apps.push(app.clone());
    }
    shards
}

fn shard_cfg(seed: u64, nodes_per_shard: usize) -> TraceSimConfig {
    let mut cfg = TraceSimConfig::paper_like(Some(EscraConfig::default()), seed, nodes_per_shard);
    // Batch several windows per datagram, desynchronized across nodes —
    // the realistic (and adversarial-for-determinism) telemetry shape.
    cfg.report_plan = ReportPlan {
        period_multipliers: vec![1, 2, 5],
        jitter_frac: 0.5,
    };
    cfg.columnar = true;
    cfg
}

/// Merged cross-shard view (reduced in shard-index order).
struct Merged {
    latency: LatencyRecorder,
    slack: SlackRecorder,
    serverless: ServerlessStats,
    cpu_limit: BTreeMap<SimTime, f64>,
    mem_limit: BTreeMap<SimTime, f64>,
    oom_kills: u64,
    container_periods: u64,
    throttled_periods: u64,
    pods_spawned: u64,
    peak_pods: usize,
    control_bytes: u64,
}

fn merge(outs: &[TraceSimOutput]) -> Merged {
    let mut m = Merged {
        latency: LatencyRecorder::new(),
        slack: SlackRecorder::new(),
        serverless: ServerlessStats::new(),
        cpu_limit: BTreeMap::new(),
        mem_limit: BTreeMap::new(),
        oom_kills: 0,
        container_periods: 0,
        throttled_periods: 0,
        pods_spawned: 0,
        peak_pods: 0,
        control_bytes: 0,
    };
    for out in outs {
        m.latency.merge(&out.metrics.latency);
        m.slack.merge(&out.metrics.slack);
        m.serverless.merge(&out.serverless);
        for (t, v) in out.metrics.cpu_limit_series.iter() {
            *m.cpu_limit.entry(t).or_insert(0.0) += v;
        }
        for (t, v) in out.metrics.mem_limit_series.iter() {
            *m.mem_limit.entry(t).or_insert(0.0) += v;
        }
        m.oom_kills += out.metrics.oom_kills;
        m.container_periods += out.container_periods;
        m.throttled_periods += out.throttled_periods;
        m.pods_spawned += out.pods_spawned;
        // Shards are disjoint sub-clusters; the fleet peak is the sum of
        // per-shard peaks (an upper bound on the simultaneous peak).
        m.peak_pods += out.peak_pods;
        m.control_bytes += out.control_bytes;
    }
    m
}

fn mean(series: &BTreeMap<SimTime, f64>) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.values().sum::<f64>() / series.len() as f64
    }
}

/// Minimal JSON number extraction (the vendored serde_json shim only
/// serializes; committed baselines are read back by string search).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let rest = &json[at + pat.len()..];
    let rest = &rest[rest.find(':')? + 1..];
    let end = rest
        .find(|c| c == ',' || c == '}' || c == '\n')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut check = false;
    let mut record = false;
    let mut serial_check = false;
    let mut threads = default_threads();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--record" => record = true,
            "--serial" => serial_check = true,
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--threads needs a positive integer"));
            }
            other => panic!(
                "unknown flag {other:?} (expected --smoke, --check, --record, --serial, \
                 --threads N)"
            ),
        }
    }

    let (apps, minutes, nodes) = if smoke {
        (SMOKE_APPS, SMOKE_MINUTES, SMOKE_NODES)
    } else {
        (FULL_APPS, FULL_MINUTES, FULL_NODES)
    };
    let nodes_per_shard = (nodes / SHARDS).max(1);
    let population = synthetic_trace(&mega_mix(apps, minutes, SEED));
    let shards = shard_workloads(&population);
    let shard_sizes: Vec<usize> = shards.iter().map(|s| s.apps.len()).collect();

    let f = |s: &escra_harness::Scenario<TraceWorkload>| {
        run_trace_sim(&s.input, &shard_cfg(s.seed, nodes_per_shard))
    };
    let start = Instant::now();
    let outs = run_sweep(scenarios(SEED, shards.clone()), threads, &f);
    let wall = start.elapsed().as_secs_f64();

    let summaries: Vec<ShardSummary> = outs
        .iter()
        .enumerate()
        .map(|(i, o)| summarize(i, shard_sizes[i], o))
        .collect();
    if serial_check {
        let serial_outs = run_serial(scenarios(SEED, shards), &f);
        let serial_summaries: Vec<ShardSummary> = serial_outs
            .iter()
            .enumerate()
            .map(|(i, o)| summarize(i, shard_sizes[i], o))
            .collect();
        assert_byte_identical(&summaries, &serial_summaries);
    }

    let m = merge(&outs);
    let cp_rate = m.container_periods as f64 / wall;
    assert!(apps >= 10_000, "population too small: {apps} apps");
    assert!(
        m.container_periods >= 1_000_000,
        "run too small: {} container-periods",
        m.container_periods
    );
    assert!(m.serverless.invocations > 0, "run served no invocations");

    let throttle_rate = m.throttled_periods as f64 / m.container_periods.max(1) as f64;
    println!(
        "Trace mega-scenario ({apps} apps, {} shards x {nodes_per_shard} nodes, {minutes} min)",
        SHARDS
    );
    println!("  invocations          {}", m.serverless.invocations);
    println!(
        "  latency p99.9        {:.1} ms (mean {:.1} ms)",
        m.latency.p(99.9),
        m.latency.mean_ms()
    );
    println!(
        "  cold starts          {} ({:.1} % of invocations, mean {:.0} ms)",
        m.serverless.cold_starts,
        100.0 * m.serverless.cold_start_rate(),
        m.serverless.cold_start_mean_ms()
    );
    println!(
        "  abs slowdown         exec {:.1} ms / total {:.1} ms (mean)",
        m.serverless.abs_exec_slowdown_mean_ms(),
        m.serverless.abs_total_slowdown_mean_ms()
    );
    println!(
        "  wasted               {:.0} core-s CPU, {:.0} MiB-s memory",
        m.serverless.wasted_cpu_core_secs, m.serverless.wasted_mem_mib_secs
    );
    println!(
        "  slack p50/p99        CPU {:.2}/{:.2} cores, mem {:.0}/{:.0} MiB",
        m.slack.cpu_p(50.0),
        m.slack.cpu_p(99.0),
        m.slack.mem_p(50.0),
        m.slack.mem_p(99.0)
    );
    println!(
        "  aggregate limits     {:.0} cores / {:.0} MiB (mean)",
        mean(&m.cpu_limit),
        mean(&m.mem_limit)
    );
    println!(
        "  OOM kills            {} | throttle rate {:.2} %",
        m.oom_kills,
        100.0 * throttle_rate
    );
    println!(
        "  scale                {} container-periods, {} pods spawned (peak Σ {}), {} control bytes",
        m.container_periods, m.pods_spawned, m.peak_pods, m.control_bytes
    );
    println!("  wall                 {wall:.2}s ({cp_rate:.0} container-periods/s)");

    let shards_json = to_json(&summaries);
    let json = format!(
        "{{\n  \"apps\": {apps},\n  \
         \"minutes\": {minutes},\n  \
         \"shards\": {SHARDS},\n  \
         \"invocations\": {},\n  \
         \"cold_starts\": {},\n  \
         \"container_periods\": {},\n  \
         \"throttled_periods\": {},\n  \
         \"oom_kills\": {},\n  \
         \"pods_spawned\": {},\n  \
         \"wall_secs\": {wall:.3},\n  \
         \"container_periods_per_sec\": {cp_rate:.0},\n  \
         \"shard_summaries\": {shards_json}\n}}\n",
        m.serverless.invocations,
        m.serverless.cold_starts,
        m.container_periods,
        m.throttled_periods,
        m.oom_kills,
        m.pods_spawned,
    );
    let tag = if threads == 1 {
        "trace_mega_serial".to_string()
    } else {
        format!("trace_mega_t{threads}")
    };
    let path = write_json(&tag, &json);
    println!("numbers written to {}", path.display());
    // The deterministic dump (no wall times) for cross-process cmp.
    let det = write_json(&format!("{tag}.shards"), &shards_json);
    println!("shard summaries written to {}", det.display());

    if record {
        std::fs::write(BASELINE_PATH, &json).expect("write committed baseline");
        println!("committed baseline recorded to {BASELINE_PATH}");
    }
    if check {
        let committed = std::fs::read_to_string(BASELINE_PATH)
            .unwrap_or_else(|e| panic!("read {BASELINE_PATH}: {e} (run with --record first)"));
        let committed_rate = extract_number(&committed, "container_periods_per_sec")
            .expect("baseline has container_periods_per_sec");
        let committed_cp = extract_number(&committed, "container_periods")
            .expect("baseline has container_periods");
        assert!(
            committed_cp >= 1_000_000.0,
            "committed baseline must record >= 1M container-periods at full scale"
        );
        println!(
            "check: {cp_rate:.0} container-periods/s vs committed {committed_rate:.0} \
             (floor {:.0})",
            0.5 * committed_rate
        );
        if cp_rate < 0.5 * committed_rate {
            eprintln!(
                "FAIL: trace-mega throughput regressed >2x vs committed baseline \
                 ({cp_rate:.0} < 0.5 * {committed_rate:.0})"
            );
            std::process::exit(1);
        }
        println!("check: OK");
    }
}
