//! Exhaustive model-check of the limit/ack/grant protocol (escra-mc).
//!
//! Explores every schedule — message reorderings, budgeted drops and
//! duplicates, OOM traps, throttled CPU reports, and grant-retry timer
//! firings — of four bounded configurations of the *real* control-plane
//! state machines (`Controller`, `Agent`, live memory cgroups):
//!
//! * **smoke**: 1 controller × 2 agents × 2 containers, a roomy pool
//!   (grants succeed), one OOM per container, one throttled CPU period,
//!   1 drop + 1 duplicate + 1 timer budget — the main gate;
//! * **tight_pool**: the pool squeezed so the grant path goes deny →
//!   reclaim sweep → kill;
//! * **stale_window** / **cross_kind**: the small hunt configurations
//!   the seeded mutations are caught on (clean under the real
//!   protocol).
//!
//! In `--smoke` mode (wired into `scripts/check.sh`) it asserts that
//! all four configurations verify clean (zero invariant violations),
//! that BFS and DFS visit the *same* canonical state set, that each
//! state count matches a pinned constant (exploration is deterministic
//! — any drift means the model or the protocol changed), and that two
//! seeded protocol mutations are each caught by both strategies with a
//! counterexample that replays to the same violation:
//!
//! * `SkipStaleDiscard` — agents apply stale seqs; caught as **I5**
//!   (the safety valve fires re-applying an old limit below live
//!   usage);
//! * `AckClearsBySeqLe` — acks retire pending grants by
//!   `pending.seq <= ack.seq`, the exact controller bug fixed in this
//!   change; caught as **I4** (a dropped grant is silently lost because
//!   a later CPU ack cleared its retry state).
//!
//! The default mode additionally prints each minimal counterexample
//! script and its merged decision trace.

use escra_mc::{explore, McConfig, Mutation, Strategy, Violation};

/// Pinned reachable-state counts. Exploration is deterministic, so
/// these are exact; update them (and say why in the commit) whenever
/// the model or the protocol semantics change.
const SMOKE_EXPECTED_STATES: usize = 442_429;
/// [`McConfig::tight_pool`]'s pinned count.
const TIGHT_EXPECTED_STATES: usize = 7_652;
/// [`McConfig::stale_window`]'s pinned count.
const STALE_EXPECTED_STATES: usize = 215;
/// [`McConfig::cross_kind`]'s pinned count.
const CROSS_EXPECTED_STATES: usize = 76;

fn main() {
    let verbose = !std::env::args().any(|a| a == "--smoke");

    run_clean("smoke", &McConfig::smoke(), SMOKE_EXPECTED_STATES);
    run_clean("tight_pool", &McConfig::tight_pool(), TIGHT_EXPECTED_STATES);
    run_clean(
        "stale_window",
        &McConfig::stale_window(),
        STALE_EXPECTED_STATES,
    );
    run_clean("cross_kind", &McConfig::cross_kind(), CROSS_EXPECTED_STATES);

    run_mutation(
        "SkipStaleDiscard",
        McConfig::stale_window().with_mutation(Mutation::SkipStaleDiscard),
        |v| matches!(v, Violation::ValveClamped { .. }),
        verbose,
    );
    run_mutation(
        "AckClearsBySeqLe",
        McConfig::cross_kind().with_mutation(Mutation::AckClearsBySeqLe),
        |v| matches!(v, Violation::AckDivergence { .. }),
        verbose,
    );

    println!("mc_explore: OK");
}

/// Explores `cfg` under both strategies and asserts it verifies clean
/// with BFS ≡ DFS on the reachable set and the pinned state count
/// (which, two traversal orders agreeing, is the determinism gate).
fn run_clean(name: &str, cfg: &McConfig, expected_states: usize) {
    let bfs = explore(cfg, Strategy::Bfs);
    if let Some(ce) = &bfs.violation {
        eprintln!("{name}: UNEXPECTED violation: {}", ce.violation);
        for line in escra_mc::replay(cfg, &ce.steps).script {
            eprintln!("    {line}");
        }
        std::process::exit(1);
    }
    let dfs = explore(cfg, Strategy::Dfs);
    assert_eq!(dfs.violation, None, "{name}: DFS found what BFS did not");
    assert_eq!(
        bfs.fingerprints, dfs.fingerprints,
        "{name}: BFS and DFS disagree on the reachable state set"
    );
    assert_eq!(bfs.states, dfs.states);
    assert_eq!(
        bfs.states, expected_states,
        "{name}: state count drifted from the pinned constant"
    );
    println!(
        "{name}: {} states, {} transitions, depth {} — clean (BFS == DFS)",
        bfs.states, bfs.transitions, bfs.max_depth
    );
}

/// Asserts the seeded mutation is caught by both strategies, that the
/// violation is of the expected kind, and that the counterexample
/// replays to the same violation with a live decision trace.
fn run_mutation(name: &str, cfg: McConfig, expected: fn(&Violation) -> bool, verbose: bool) {
    let bfs = explore(&cfg, Strategy::Bfs);
    let ce = bfs
        .violation
        .unwrap_or_else(|| panic!("{name}: mutation not caught by BFS"));
    assert!(
        expected(&ce.violation),
        "{name}: unexpected violation kind: {}",
        ce.violation
    );
    let dfs = explore(&cfg, Strategy::Dfs);
    assert!(
        dfs.violation.is_some(),
        "{name}: mutation not caught by DFS"
    );
    let replay = escra_mc::replay(&cfg, &ce.steps);
    assert_eq!(
        replay.violation.as_ref(),
        Some(&ce.violation),
        "{name}: counterexample did not replay to the same violation"
    );
    assert!(!replay.trace.is_empty(), "{name}: replay produced no trace");
    println!(
        "{name}: caught in {} steps after {} states — {}",
        ce.steps.len(),
        bfs.states,
        ce.violation
    );
    if verbose {
        for line in &replay.script {
            println!("    {line}");
        }
        println!("  fault plan: {:?}", replay.fault_plan);
        println!("  merged decision trace:");
        for line in replay.trace.lines() {
            println!("    {line}");
        }
    }
}
