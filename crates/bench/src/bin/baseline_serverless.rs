//! Baseline-diversity benchmark for the dynamic-population drivers:
//! runs both OpenWhisk-style applications (ImageProcess, GridSearch)
//! and a trace-driven mega-mix smoke under the full policy roster —
//! vanilla OpenWhisk / static pods, the tiny autoscaler, ARC-V, and
//! Escra — and prints the cost-efficiency columns (normalized $ and
//! $/1k requests under the default cost model) next to the paper's
//! metrics.
//!
//! `--smoke` shrinks the ImageProcess run to one iteration and the
//! trace population for CI; the comparisons keep the same shape.

use escra_baselines::{ArcVConfig, TinyAutoscalerConfig};
use escra_bench::{write_json, SEED};
use escra_core::EscraConfig;
use escra_harness::serverless_sim::{run_serverless, ServerlessApp, ServerlessConfig};
use escra_harness::{run_trace_sim, BaselineScalerKind, TraceSimConfig};
use escra_metrics::{to_json, CostModel, Table};
use escra_workloads::serverless::{grid_search_task, image_process};
use escra_workloads::{mega_mix, synthetic_trace};
use serde::Serialize;

/// One policy mode applied uniformly across all three drivers.
#[derive(Clone, Copy)]
enum Mode {
    /// Static per-pod limits (vanilla OpenWhisk / static trace pods).
    Vanilla,
    /// A [`PeriodicScaler`](escra_baselines::PeriodicScaler) baseline.
    Baseline(BaselineScalerKind),
    /// Escra's event-driven controller.
    Escra,
}

fn modes() -> [Mode; 4] {
    [
        Mode::Vanilla,
        Mode::Baseline(BaselineScalerKind::Tiny(TinyAutoscalerConfig::default())),
        Mode::Baseline(BaselineScalerKind::ArcV(ArcVConfig::default())),
        Mode::Escra,
    ]
}

#[derive(Serialize)]
struct CostRow {
    driver: String,
    policy: String,
    requests: u64,
    cost_cpu: f64,
    cost_mem: f64,
    cost_oom: f64,
    cost_total: f64,
    dollars_per_kilo_request: f64,
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other:?} (expected --smoke)"),
        }
    }
    let model = CostModel::default();
    let mut dump = Vec::new();

    // ---- ImageProcess: per-request latency + cost per policy ----
    let iterations = if smoke { 1 } else { 4 };
    println!("ImageProcess ({iterations} iterations x 750 requests)");
    let mut table = Table::new(vec![
        "policy",
        "mean(ms)",
        "p99(ms)",
        "succ",
        "cpu lim mean",
        "mem lim mean(MiB)",
        "cost($)",
        "$/1k req",
    ]);
    for mode in modes() {
        let mut cfg = ServerlessConfig {
            app: ServerlessApp::ImageProcess { iterations },
            ..ServerlessConfig::image_process(None, 11)
        };
        match mode {
            Mode::Vanilla => {}
            Mode::Baseline(kind) => cfg.baseline = Some(kind),
            Mode::Escra => cfg.escra = Some(EscraConfig::default()),
        }
        let out = run_serverless(&cfg, &image_process());
        let m = &out.metrics;
        let cost = model.run_cost(m);
        let per_kilo = model.per_kilo_request(&cost, m.latency.successes());
        table.row(vec![
            m.policy.clone(),
            format!("{:.0}", m.latency.mean_ms()),
            format!("{:.0}", m.latency.p(99.0)),
            format!("{}", m.latency.successes()),
            format!("{:.2}", m.cpu_limit_series.mean()),
            format!("{:.0}", m.mem_limit_series.mean()),
            format!("{:.4}", cost.total()),
            format!("{per_kilo:.4}"),
        ]);
        dump.push(CostRow {
            driver: "image-process".into(),
            policy: m.policy.clone(),
            requests: m.latency.successes(),
            cost_cpu: cost.cpu,
            cost_mem: cost.mem,
            cost_oom: cost.oom,
            cost_total: cost.total(),
            dollars_per_kilo_request: per_kilo,
        });
        eprintln!("  {} done", m.policy);
    }
    println!("{}", table.render());

    // ---- GridSearch: end-to-end job latency + cost per policy ----
    println!("GridSearch (one run per policy)");
    let mut table = Table::new(vec![
        "policy",
        "job(s)",
        "cpu lim mean",
        "mem lim mean(MiB)",
        "cost($)",
        "$/1k req",
    ]);
    for mode in modes() {
        let mut cfg = ServerlessConfig::grid_search(None, 100);
        match mode {
            Mode::Vanilla => {}
            Mode::Baseline(kind) => cfg.baseline = Some(kind),
            Mode::Escra => cfg.escra = Some(EscraConfig::default()),
        }
        let out = run_serverless(&cfg, &grid_search_task());
        let m = &out.metrics;
        let cost = model.run_cost(m);
        let per_kilo = model.per_kilo_request(&cost, m.latency.successes());
        table.row(vec![
            m.policy.clone(),
            format!(
                "{:.1}",
                out.job_latency.expect("job completes").as_secs_f64()
            ),
            format!("{:.2}", m.cpu_limit_series.mean()),
            format!("{:.0}", m.mem_limit_series.mean()),
            format!("{:.4}", cost.total()),
            format!("{per_kilo:.4}"),
        ]);
        dump.push(CostRow {
            driver: "grid-search".into(),
            policy: m.policy.clone(),
            requests: m.latency.successes(),
            cost_cpu: cost.cpu,
            cost_mem: cost.mem,
            cost_oom: cost.oom,
            cost_total: cost.total(),
            dollars_per_kilo_request: per_kilo,
        });
        eprintln!("  {} done", m.policy);
    }
    println!("{}", table.render());

    // ---- Trace-driven smoke: mega-mix population per policy ----
    let (apps, minutes, nodes) = if smoke { (120, 2, 4) } else { (2_000, 4, 48) };
    let population = synthetic_trace(&mega_mix(apps, minutes, SEED));
    println!("Trace mega-mix smoke ({apps} apps, {minutes} min, {nodes} nodes)");
    let mut table = Table::new(vec![
        "policy",
        "invocations",
        "p99.9(ms)",
        "OOMs",
        "alloc core-s",
        "alloc MiB-s",
        "cost($)",
        "$/1k req",
    ]);
    for mode in modes() {
        let mut cfg = TraceSimConfig::paper_like(None, SEED, nodes);
        match mode {
            Mode::Vanilla => {}
            Mode::Baseline(kind) => cfg.baseline = Some(kind),
            Mode::Escra => {
                cfg = TraceSimConfig::paper_like(Some(EscraConfig::default()), SEED, nodes)
            }
        }
        let out = run_trace_sim(&population, &cfg);
        let m = &out.metrics;
        let cost = model.serverless_cost(&out.serverless, m.oom_kills);
        let per_kilo = model.per_kilo_request(&cost, out.serverless.invocations);
        table.row(vec![
            m.policy.clone(),
            format!("{}", out.serverless.invocations),
            format!("{:.1}", m.latency.p(99.9)),
            format!("{}", m.oom_kills),
            format!("{:.0}", out.serverless.alloc_cpu_core_secs),
            format!("{:.0}", out.serverless.alloc_mem_mib_secs),
            format!("{:.4}", cost.total()),
            format!("{per_kilo:.4}"),
        ]);
        dump.push(CostRow {
            driver: "trace".into(),
            policy: m.policy.clone(),
            requests: out.serverless.invocations,
            cost_cpu: cost.cpu,
            cost_mem: cost.mem,
            cost_oom: cost.oom,
            cost_total: cost.total(),
            dollars_per_kilo_request: per_kilo,
        });
        eprintln!("  {} done", m.policy);
    }
    println!("{}", table.render());

    let path = write_json("baseline_serverless", &to_json(&dump));
    println!("cost rows written to {}", path.display());
}
