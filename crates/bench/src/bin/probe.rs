//! Development probe: latency percentile breakdown for one cell.

use escra_harness::{run, MicroSimConfig, Policy};
use escra_simcore::time::SimDuration;
use escra_workloads::{hipster_shop, WorkloadKind};

fn main() {
    for policy in [Policy::escra_default(), Policy::static_1_5x()] {
        let cfg = MicroSimConfig::new(
            hipster_shop(),
            WorkloadKind::paper_fixed(),
            policy.clone(),
            20220701,
        )
        .with_duration(SimDuration::from_secs(60));
        let out = run(&cfg);
        let m = &out.metrics;
        println!(
            "{:<14} tput {:>6.1} p50 {:>6.0} p90 {:>6.0} p99 {:>6.0} p99.9 {:>6.0} max {:>7.0} fail {}",
            m.policy,
            m.throughput(),
            m.latency.p(50.0),
            m.latency.p(90.0),
            m.latency.p(99.0),
            m.latency.p(99.9),
            m.latency.p(100.0),
            m.latency.failures(),
        );
        println!(
            "  cpu slack p50 {:.2} p90 {:.2} p99 {:.2} max {:.2}; mem p50 {:.0} p99 {:.0}",
            m.slack.cpu_p(50.0),
            m.slack.cpu_p(90.0),
            m.slack.cpu_p(99.0),
            m.slack.cpu_p(100.0),
            m.slack.mem_p(50.0),
            m.slack.mem_p(99.0),
        );
        if let Some(stats) = out.controller_stats {
            println!("  controller: {stats:?}");
        }
    }
}
