//! Robustness sweep: reruns the §VI-B Escra-vs-baselines comparison
//! (Teastore × burst) with control-plane faults injected — message loss
//! from 0 to 10 % and a 2-second Controller↔node partition — and records
//! OOM kills, tail latency and the grant-recovery counters at each fault
//! level.
//!
//! The claim under test: Escra's event-driven control plane degrades
//! gracefully. Lost telemetry only staleness-extends the current limits
//! (the Agent-side safety valve holds last-known-good values), and a lost
//! OOM grant is recovered by the Controller's retry timer or by
//! reconciliation on the container's next OOM event — so containers are
//! still never OOM-killed.

use escra_bench::{write_json, RUN_SECS, SEED};
use escra_harness::{controller_addr, node_addr, run, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_net::FaultPlan;
use escra_simcore::time::{SimDuration, SimTime};
use escra_workloads::{teastore, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    loss_pct: f64,
    partition: bool,
    oom_kills: u64,
    p99_ms: f64,
    p999_ms: f64,
    successes: u64,
    failures: u64,
    grant_retries: u64,
    grant_reconciles: u64,
    grants_abandoned: u64,
    faults_dropped: u64,
    faults_partitioned: u64,
}

/// One 2 s partition of node 1 from the Controller, mid-run.
fn partition_plan(plan: FaultPlan) -> FaultPlan {
    plan.with_partition(
        controller_addr(),
        node_addr(escra_cluster::NodeId::new(1)),
        SimTime::from_secs(30),
        SimTime::from_secs(32),
    )
}

fn main() {
    let mut table = Table::new(vec![
        "loss%",
        "partition",
        "OOM kills",
        "p99 (ms)",
        "p99.9 (ms)",
        "ok",
        "failed",
        "retries",
        "reconciles",
        "abandoned",
        "dropped",
        "blackholed",
    ]);
    let mut rows = Vec::new();
    for &loss in &[0.0f64, 0.01, 0.05, 0.10] {
        for &partition in &[false, true] {
            let mut plan = FaultPlan::none().with_loss(loss);
            if partition {
                plan = partition_plan(plan);
            }
            let cfg = MicroSimConfig::new(
                teastore(),
                WorkloadKind::paper_burst(),
                Policy::escra_default(),
                SEED,
            )
            .with_duration(SimDuration::from_secs(RUN_SECS))
            .with_faults(plan);
            let out = run(&cfg);
            let stats = out.controller_stats.expect("escra stats");
            let m = &out.metrics;
            let row = Row {
                loss_pct: loss * 100.0,
                partition,
                oom_kills: m.oom_kills,
                p99_ms: m.latency.p(99.0),
                p999_ms: m.latency.p(99.9),
                successes: m.latency.successes(),
                failures: m.latency.failures(),
                grant_retries: stats.grant_retries,
                grant_reconciles: stats.grant_reconciles,
                grants_abandoned: stats.grants_abandoned,
                faults_dropped: out.fault_stats.map(|f| f.dropped).unwrap_or(0),
                faults_partitioned: out.fault_stats.map(|f| f.partitioned).unwrap_or(0),
            };
            table.row(vec![
                format!("{:.0}", row.loss_pct),
                if partition { "2s".into() } else { "-".into() },
                row.oom_kills.to_string(),
                format!("{:.1}", row.p99_ms),
                format!("{:.1}", row.p999_ms),
                row.successes.to_string(),
                row.failures.to_string(),
                row.grant_retries.to_string(),
                row.grant_reconciles.to_string(),
                row.grants_abandoned.to_string(),
                row.faults_dropped.to_string(),
                row.faults_partitioned.to_string(),
            ]);
            rows.push(row);
        }
    }
    println!("Robustness sweep — Escra (Teastore × burst) under control-plane faults");
    println!("(paper §VI-E reports zero Escra OOM kills; the sweep checks that holds");
    println!(" when the control plane itself loses, delays or partitions traffic)\n");
    println!("{}", table.render());
    let path = write_json("robustness_sweep", &to_json(&rows));
    println!("rows written to {}", path.display());
}
