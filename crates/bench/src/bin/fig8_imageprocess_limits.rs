//! Regenerates **Fig. 8**: aggregate CPU and memory limits over time for
//! ImageProcess under OpenWhisk vs OpenWhisk + Escra, plus the savings
//! series (OpenWhisk limit minus Escra limit).

use escra_bench::write_json;
use escra_core::EscraConfig;
use escra_harness::serverless_sim::{run_serverless, ServerlessApp, ServerlessConfig};
use escra_metrics::{to_json, Table};
use escra_workloads::serverless::image_process;

fn main() {
    let run = |escra: bool| {
        let cfg = ServerlessConfig {
            app: ServerlessApp::ImageProcess { iterations: 1 },
            ..ServerlessConfig::image_process(escra.then(EscraConfig::default), 11)
        };
        run_serverless(&cfg, &image_process()).metrics
    };
    let vanilla = run(false);
    let escra = run(true);

    let mut table = Table::new(vec![
        "t(s)",
        "OW cpu(cores)",
        "Escra cpu",
        "cpu savings",
        "OW mem(MiB)",
        "Escra mem",
        "mem savings",
    ]);
    let v_cpu = vanilla.cpu_limit_series.resample_secs(30);
    let e_cpu = escra.cpu_limit_series.resample_secs(30);
    let v_mem = vanilla.mem_limit_series.resample_secs(30);
    let e_mem = escra.mem_limit_series.resample_secs(30);
    for i in 0..v_cpu.len().min(e_cpu.len()) {
        table.row(vec![
            format!("{:.0}", v_cpu[i].0),
            format!("{:.1}", v_cpu[i].1),
            format!("{:.1}", e_cpu[i].1),
            format!("{:.1}", v_cpu[i].1 - e_cpu[i].1),
            format!("{:.0}", v_mem[i].1),
            format!("{:.0}", e_mem[i].1),
            format!("{:.0}", v_mem[i].1 - e_mem[i].1),
        ]);
    }
    println!("Fig. 8 — ImageProcess aggregate limits (30 s buckets over one iteration)");
    println!("(paper: OpenWhisk ~12 vCPU vs Escra ~7 vCPU, memory savings ~1550 MiB)\n");
    println!("{}", table.render());
    println!(
        "means: OW cpu {:.1} cores vs Escra {:.1} (saving {:.1}); OW mem {:.0} MiB vs Escra {:.0} (saving {:.0})",
        vanilla.cpu_limit_series.mean(),
        escra.cpu_limit_series.mean(),
        vanilla.cpu_limit_series.mean() - escra.cpu_limit_series.mean(),
        vanilla.mem_limit_series.mean(),
        escra.mem_limit_series.mean(),
        vanilla.mem_limit_series.mean() - escra.mem_limit_series.mean(),
    );
    let dump = (
        vanilla.cpu_limit_series.resample_secs(1),
        escra.cpu_limit_series.resample_secs(1),
        vanilla.mem_limit_series.resample_secs(1),
        escra.mem_limit_series.resample_secs(1),
    );
    let path = write_json("fig8_imageprocess_limits", &to_json(&dump));
    println!("series written to {}", path.display());
}
