//! Regenerates **Fig. 9**: aggregate CPU and memory limits over the
//! lifetime of one GridSearch job, OpenWhisk vs OpenWhisk + Escra, plus
//! the savings series.

use escra_bench::write_json;
use escra_core::EscraConfig;
use escra_harness::serverless_sim::{run_serverless, ServerlessConfig};
use escra_metrics::{to_json, Table};
use escra_workloads::serverless::grid_search_task;

fn main() {
    let run = |escra: bool| {
        let cfg = ServerlessConfig::grid_search(escra.then(EscraConfig::default), 100);
        run_serverless(&cfg, &grid_search_task())
    };
    let vanilla = run(false);
    let escra = run(true);

    let mut table = Table::new(vec![
        "t(s)",
        "OW cpu(cores)",
        "Escra cpu",
        "cpu savings",
        "OW mem(MiB)",
        "Escra mem",
        "mem savings",
    ]);
    let v_cpu = vanilla.metrics.cpu_limit_series.resample_secs(30);
    let e_cpu = escra.metrics.cpu_limit_series.resample_secs(30);
    let v_mem = vanilla.metrics.mem_limit_series.resample_secs(30);
    let e_mem = escra.metrics.mem_limit_series.resample_secs(30);
    for i in 0..v_cpu.len().min(e_cpu.len()) {
        table.row(vec![
            format!("{:.0}", v_cpu[i].0),
            format!("{:.1}", v_cpu[i].1),
            format!("{:.1}", e_cpu[i].1),
            format!("{:.1}", v_cpu[i].1 - e_cpu[i].1),
            format!("{:.0}", v_mem[i].1),
            format!("{:.0}", e_mem[i].1),
            format!("{:.0}", v_mem[i].1 - e_mem[i].1),
        ]);
    }
    println!("Fig. 9 — GridSearch aggregate limits (30 s buckets over the job)");
    println!("(paper: OpenWhisk 113 vCPU / 29 087 MiB vs Escra 53 vCPU / 22 264 MiB on");
    println!(" average — ~60 vCPU and ~7 GiB saved)\n");
    println!("{}", table.render());
    println!(
        "means: OW cpu {:.1} vs Escra {:.1} (saving {:.1} vCPU); OW mem {:.0} MiB vs Escra {:.0} (saving {:.0} MiB)",
        vanilla.metrics.cpu_limit_series.mean(),
        escra.metrics.cpu_limit_series.mean(),
        vanilla.metrics.cpu_limit_series.mean() - escra.metrics.cpu_limit_series.mean(),
        vanilla.metrics.mem_limit_series.mean(),
        escra.metrics.mem_limit_series.mean(),
        vanilla.metrics.mem_limit_series.mean() - escra.metrics.mem_limit_series.mean(),
    );
    println!(
        "job latency: OW {:.0}s vs Escra {:.0}s",
        vanilla.job_latency.expect("completes").as_secs_f64(),
        escra.job_latency.expect("completes").as_secs_f64(),
    );
    let dump = (
        vanilla.metrics.cpu_limit_series.resample_secs(1),
        escra.metrics.cpu_limit_series.resample_secs(1),
        vanilla.metrics.mem_limit_series.resample_secs(1),
        escra.metrics.mem_limit_series.resample_secs(1),
    );
    let path = write_json("fig9_gridsearch_limits", &to_json(&dump));
    println!("series written to {}", path.display());
}
