//! Regenerates **Fig. 5**: CPU slack CDFs for the four highlighted
//! panels — TrainTicket-Fixed, Teastore-Alibaba, HipsterShop-Exp,
//! MediaMicroservice-Burst — comparing Escra, Autopilot and Static.
//!
//! The panels run on the deterministic parallel sweep runner; pass
//! `--serial` to re-run serially and assert byte-identical output
//! (the CI gate), `--smoke` for a short run, `--threads N` to size the
//! pool.

use escra_bench::{panel_cells, parse_sweep_args, run_cells_args, write_json};
use escra_metrics::{downsample_cdf, to_json, Table};

/// The four panels of the figure: (app, workload).
pub const PANELS: [(&str, &str); 4] = [
    ("TrainTicket", "fixed"),
    ("Teastore", "alibaba"),
    ("HipsterShop", "exp"),
    ("MediaMicroservice", "burst"),
];

fn main() {
    let args = parse_sweep_args();
    let cells = run_cells_args(panel_cells(&PANELS), &args);
    let mut dump = Vec::new();
    for cell in &cells {
        println!(
            "\nFig. 5 panel: {} - {} (CPU slack, cores)",
            cell.app, cell.workload
        );
        let mut table = Table::new(vec!["policy", "p25", "p50", "p75", "p90", "p99"]);
        for m in [&cell.escra, &cell.autopilot, &cell.static_1_5] {
            table.row(vec![
                m.policy.clone(),
                format!("{:.2}", m.slack.cpu_p(25.0)),
                format!("{:.2}", m.slack.cpu_p(50.0)),
                format!("{:.2}", m.slack.cpu_p(75.0)),
                format!("{:.2}", m.slack.cpu_p(90.0)),
                format!("{:.2}", m.slack.cpu_p(99.0)),
            ]);
            dump.push((
                cell.app,
                cell.workload,
                m.policy.clone(),
                downsample_cdf(&m.slack.cpu_cdf(), 200),
            ));
        }
        println!("{}", table.render());
    }
    println!("(paper: Escra's CDF rises far left of Autopilot and Static in every panel,");
    println!(" e.g. TrainTicket-Fixed static p50 > 2.5 cores vs Escra 0.14 — a 17.9x gap)");
    let path = write_json("fig5_cpu_slack_cdf", &to_json(&dump));
    println!("CDFs written to {}", path.display());
}
