//! Regenerates **Fig. 5**: CPU slack CDFs for the four highlighted
//! panels — TrainTicket-Fixed, Teastore-Alibaba, HipsterShop-Exp,
//! MediaMicroservice-Burst — comparing Escra, Autopilot and Static.

use escra_bench::{paper_apps_named, paper_workloads, run_cell, write_json, RUN_SECS, SEED};
use escra_metrics::{downsample_cdf, to_json, Table};
use std::collections::BTreeMap;

/// The four panels of the figure: (app, workload).
pub const PANELS: [(&str, &str); 4] = [
    ("TrainTicket", "fixed"),
    ("Teastore", "alibaba"),
    ("HipsterShop", "exp"),
    ("MediaMicroservice", "burst"),
];

fn main() {
    let apps: BTreeMap<_, _> = paper_apps_named().into_iter().collect();
    let workloads: BTreeMap<_, _> = paper_workloads().into_iter().collect();
    let mut dump = Vec::new();
    for (app_name, wl_name) in PANELS {
        eprintln!("running {app_name} x {wl_name} ...");
        let cell = run_cell(
            app_name,
            &apps[app_name],
            wl_name,
            &workloads[wl_name],
            RUN_SECS,
            SEED,
        );
        println!("\nFig. 5 panel: {app_name} - {wl_name} (CPU slack, cores)");
        let mut table = Table::new(vec!["policy", "p25", "p50", "p75", "p90", "p99"]);
        for m in [&cell.escra, &cell.autopilot, &cell.static_1_5] {
            table.row(vec![
                m.policy.clone(),
                format!("{:.2}", m.slack.cpu_p(25.0)),
                format!("{:.2}", m.slack.cpu_p(50.0)),
                format!("{:.2}", m.slack.cpu_p(75.0)),
                format!("{:.2}", m.slack.cpu_p(90.0)),
                format!("{:.2}", m.slack.cpu_p(99.0)),
            ]);
            dump.push((
                app_name,
                wl_name,
                m.policy.clone(),
                downsample_cdf(&m.slack.cpu_cdf(), 200),
            ));
        }
        println!("{}", table.render());
    }
    println!("(paper: Escra's CDF rises far left of Autopilot and Static in every panel,");
    println!(" e.g. TrainTicket-Fixed static p50 > 2.5 cores vs Escra 0.14 — a 17.9x gap)");
    let path = write_json("fig5_cpu_slack_cdf", &to_json(&dump));
    println!("CDFs written to {}", path.display());
}
