//! Extension experiment: the paper's §II *discusses* VPA's limitations
//! (restart-per-rescale, at most one rescale per minute) but does not
//! evaluate it. This binary runs the VPA-style scaler through the same
//! harness so the §II claims can be observed: restarts kill in-flight
//! requests, and the once-per-minute rescale cannot follow bursts.

use escra_baselines::VpaConfig;
use escra_bench::{write_json, SEED};
use escra_harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::{teastore, WorkloadKind};

fn main() {
    let mut table = Table::new(vec![
        "workload",
        "policy",
        "tput(req/s)",
        "p99.9(ms)",
        "failures",
        "cpu slack p50",
    ]);
    let mut dump = Vec::new();
    for (wl_name, wl) in [
        ("fixed", WorkloadKind::paper_fixed()),
        ("burst", WorkloadKind::paper_burst()),
    ] {
        let base = MicroSimConfig::new(teastore(), wl, Policy::static_1_5x(), SEED)
            .with_duration(SimDuration::from_secs(60));
        let profiles = profile_run(&base);
        for policy in [Policy::Vpa(VpaConfig::default()), Policy::escra_default()] {
            let cfg = MicroSimConfig {
                policy,
                ..base.clone()
            };
            let m = run_with_profiles(&cfg, &profiles).metrics;
            table.row(vec![
                wl_name.into(),
                m.policy.clone(),
                format!("{:.1}", m.throughput()),
                format!("{:.0}", m.latency.p(99.9)),
                format!("{}", m.latency.failures()),
                format!("{:.2}", m.slack.cpu_p(50.0)),
            ]);
            dump.push((
                wl_name,
                m.policy.clone(),
                m.throughput(),
                m.latency.p(99.9),
                m.latency.failures(),
            ));
        }
    }
    println!("VPA-style autoscaler vs Escra — Teastore (extension of paper §II)");
    println!("(VPA reschedules at most once per minute and every rescale restarts the");
    println!(" container, failing its in-flight requests — the two limitations the");
    println!(" paper cites for why threshold autoscalers cannot be fine-grained)\n");
    println!("{}", table.render());
    let path = write_json("vpa_comparison", &to_json(&dump));
    println!("rows written to {}", path.display());
}
