//! Regenerates **Table I**: average performance increase and average
//! slack reduction, every baseline (Static-1.5×, Autopilot, tiny
//! autoscaler, ARC-V) vs Escra, over the 4 apps × 4 workloads matrix.
//! Every per-cell row also carries the cost-efficiency columns
//! (normalized $ and $/1k requests under the default cost model).
//! Also prints the §VI-E OOM counts (Escra must be zero; baselines may
//! OOM).

use escra_bench::{cost_columns, parse_sweep_args, run_matrix_args, write_json};
use escra_metrics::{to_json, Comparison, Table};

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn main() {
    let cells = run_matrix_args(&parse_sweep_args());

    let mut per_cell = Table::new(vec![
        "app",
        "workload",
        "policy",
        "tput(req/s)",
        "p99.9(ms)",
        "cpu p50 slack",
        "mem p50 slack(MiB)",
        "OOMs",
        "cost($)",
        "$/1k req",
    ]);
    let mut static_cmps = Vec::new();
    let mut autopilot_cmps = Vec::new();
    let mut tiny_cmps = Vec::new();
    let mut arc_v_cmps = Vec::new();
    let mut escra_ooms = 0;
    let mut autopilot_ooms_max = 0;
    for c in &cells {
        for m in c.runs() {
            let (cost, per_kilo) = cost_columns(m);
            per_cell.row(vec![
                c.app.into(),
                c.workload.into(),
                m.policy.clone(),
                format!("{:.1}", m.throughput()),
                format!("{:.0}", m.latency.p(99.9)),
                format!("{:.2}", m.slack.cpu_p(50.0)),
                format!("{:.0}", m.slack.mem_p(50.0)),
                format!("{}", m.oom_kills),
                cost,
                per_kilo,
            ]);
        }
        static_cmps.push(Comparison::between(&c.static_1_5, &c.escra));
        autopilot_cmps.push(Comparison::between(&c.autopilot, &c.escra));
        tiny_cmps.push(Comparison::between(&c.tiny, &c.escra));
        arc_v_cmps.push(Comparison::between(&c.arc_v, &c.escra));
        escra_ooms += c.escra.oom_kills;
        autopilot_ooms_max = autopilot_ooms_max.max(c.autopilot.oom_kills);
    }
    println!("Per-cell results ({} cells x 5 policies):\n", cells.len());
    println!("{}", per_cell.render());

    let summarize = |name: &str, cmps: &[Comparison]| -> Vec<String> {
        vec![
            name.into(),
            format!(
                "{:.1}%",
                mean(
                    &cmps
                        .iter()
                        .map(|c| c.latency_decrease_pct)
                        .collect::<Vec<_>>()
                )
            ),
            format!(
                "{:.1}%",
                mean(
                    &cmps
                        .iter()
                        .map(|c| c.throughput_increase_pct)
                        .collect::<Vec<_>>()
                )
            ),
            format!(
                "{:.1}%",
                mean(
                    &cmps
                        .iter()
                        .map(|c| c.cpu_slack_p50_reduction_pct)
                        .collect::<Vec<_>>()
                )
            ),
            format!(
                "{:.1}%",
                mean(
                    &cmps
                        .iter()
                        .map(|c| c.cpu_slack_p99_reduction_pct)
                        .collect::<Vec<_>>()
                )
            ),
            format!(
                "{:.1}%",
                mean(
                    &cmps
                        .iter()
                        .map(|c| c.mem_slack_p50_reduction_pct)
                        .collect::<Vec<_>>()
                )
            ),
            format!(
                "{:.1}%",
                mean(
                    &cmps
                        .iter()
                        .map(|c| c.mem_slack_p99_reduction_pct)
                        .collect::<Vec<_>>()
                )
            ),
        ]
    };
    let mut table1 = Table::new(vec![
        "comparison",
        "avg dLat",
        "avg dTput",
        "d50% cpu slack",
        "d99% cpu slack",
        "d50% mem slack",
        "d99% mem slack",
    ]);
    table1.row(summarize("Static vs. Escra", &static_cmps));
    table1.row(summarize("Autopilot vs. Escra", &autopilot_cmps));
    table1.row(summarize("Tiny vs. Escra", &tiny_cmps));
    table1.row(summarize("ARC-V vs. Escra", &arc_v_cmps));
    println!("TABLE I (paper: Static row = 38.0/25.4/81.3/74.2/55.0/95.9; Autopilot row = 36.1/54.5/78.3/78.6/26.7/68.9):\n");
    println!("{}", table1.render());

    println!("OOM counts (paper 6-E: Escra 0 in all 32 experiments; Autopilot up to 8 in one):");
    println!("  escra total OOMs: {escra_ooms}");
    println!("  autopilot max OOMs in one experiment: {autopilot_ooms_max}");

    let dump: Vec<_> = (0..static_cmps.len())
        .map(|i| {
            (
                &static_cmps[i],
                &autopilot_cmps[i],
                &tiny_cmps[i],
                &arc_v_cmps[i],
            )
        })
        .collect();
    let path = write_json("table1", &to_json(&dump));
    println!("\nraw comparisons written to {}", path.display());
}
