//! Regenerates **Fig. 6**: memory slack CDFs (MiB, log-scale x in the
//! paper) for the same four panels as Fig. 5.

use escra_bench::{paper_apps_named, paper_workloads, run_cell, write_json, RUN_SECS, SEED};
use escra_metrics::{downsample_cdf, to_json, Table};
use std::collections::BTreeMap;

/// The four panels of the figure: (app, workload).
pub const PANELS: [(&str, &str); 4] = [
    ("TrainTicket", "fixed"),
    ("Teastore", "alibaba"),
    ("HipsterShop", "exp"),
    ("MediaMicroservice", "burst"),
];

fn main() {
    let apps: BTreeMap<_, _> = paper_apps_named().into_iter().collect();
    let workloads: BTreeMap<_, _> = paper_workloads().into_iter().collect();
    let mut dump = Vec::new();
    for (app_name, wl_name) in PANELS {
        eprintln!("running {app_name} x {wl_name} ...");
        let cell = run_cell(
            app_name,
            &apps[app_name],
            wl_name,
            &workloads[wl_name],
            RUN_SECS,
            SEED,
        );
        println!("\nFig. 6 panel: {app_name} - {wl_name} (memory slack, MiB)");
        let mut table = Table::new(vec!["policy", "p25", "p50", "p75", "p90", "p99"]);
        for m in [&cell.escra, &cell.autopilot, &cell.static_1_5] {
            table.row(vec![
                m.policy.clone(),
                format!("{:.0}", m.slack.mem_p(25.0)),
                format!("{:.0}", m.slack.mem_p(50.0)),
                format!("{:.0}", m.slack.mem_p(75.0)),
                format!("{:.0}", m.slack.mem_p(90.0)),
                format!("{:.0}", m.slack.mem_p(99.0)),
            ]);
            dump.push((
                app_name,
                wl_name,
                m.policy.clone(),
                downsample_cdf(&m.slack.mem_cdf(), 200),
            ));
        }
        println!("{}", table.render());
    }
    println!("(paper: Escra's memory slack hugs the δ = 50 MiB reclamation margin —");
    println!(" e.g. TrainTicket-Fixed 49 MiB vs 256 MiB static; MediaMicroservice-");
    println!(" Burst 99%ile memory slack 46 MiB)");
    let path = write_json("fig6_mem_slack_cdf", &to_json(&dump));
    println!("CDFs written to {}", path.display());
}
