//! Regenerates **Fig. 6**: memory slack CDFs (MiB, log-scale x in the
//! paper) for the same four panels as Fig. 5.
//!
//! The panels run on the deterministic parallel sweep runner; pass
//! `--serial` to re-run serially and assert byte-identical output
//! (the CI gate), `--smoke` for a short run, `--threads N` to size the
//! pool.

use escra_bench::{panel_cells, parse_sweep_args, run_cells_args, write_json};
use escra_metrics::{downsample_cdf, to_json, Table};

/// The four panels of the figure: (app, workload).
pub const PANELS: [(&str, &str); 4] = [
    ("TrainTicket", "fixed"),
    ("Teastore", "alibaba"),
    ("HipsterShop", "exp"),
    ("MediaMicroservice", "burst"),
];

fn main() {
    let args = parse_sweep_args();
    let cells = run_cells_args(panel_cells(&PANELS), &args);
    let mut dump = Vec::new();
    for cell in &cells {
        println!(
            "\nFig. 6 panel: {} - {} (memory slack, MiB)",
            cell.app, cell.workload
        );
        let mut table = Table::new(vec!["policy", "p25", "p50", "p75", "p90", "p99"]);
        for m in [&cell.escra, &cell.autopilot, &cell.static_1_5] {
            table.row(vec![
                m.policy.clone(),
                format!("{:.0}", m.slack.mem_p(25.0)),
                format!("{:.0}", m.slack.mem_p(50.0)),
                format!("{:.0}", m.slack.mem_p(75.0)),
                format!("{:.0}", m.slack.mem_p(90.0)),
                format!("{:.0}", m.slack.mem_p(99.0)),
            ]);
            dump.push((
                cell.app,
                cell.workload,
                m.policy.clone(),
                downsample_cdf(&m.slack.mem_cdf(), 200),
            ));
        }
        println!("{}", table.render());
    }
    println!("(paper: Escra's memory slack hugs the δ = 50 MiB reclamation margin —");
    println!(" e.g. TrainTicket-Fixed 49 MiB vs 256 MiB static; MediaMicroservice-");
    println!(" Burst 99%ile memory slack 46 MiB)");
    let path = write_json("fig6_mem_slack_cdf", &to_json(&dump));
    println!("CDFs written to {}", path.display());
}
