//! Regenerates the **§VI-I "Why a 100ms Report Period?"** sweep: 99 %
//! end-to-end latency across telemetry report periods from 50 ms to
//! 200 ms in 50 ms steps (the paper finds 100 ms — the CFS period — is
//! the sweet spot).
//!
//! The four settings run on the deterministic parallel sweep runner;
//! pass `--serial` to re-run serially and assert byte-identical output,
//! `--smoke` for a short run, `--threads N` to size the pool.

use escra_bench::{assert_byte_identical, parse_sweep_args, write_json, SEED};
use escra_core::EscraConfig;
use escra_harness::sweep::{run_serial, run_sweep, scenarios, Scenario};
use escra_harness::{run, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::{hipster_shop, WorkloadKind};

fn main() {
    let args = parse_sweep_args();
    let duration = args.duration_secs();
    let f = |s: &Scenario<u64>| {
        let ms = s.input;
        let cfg = MicroSimConfig::new(
            hipster_shop(),
            WorkloadKind::paper_burst(),
            Policy::Escra(EscraConfig::default().with_report_period(SimDuration::from_millis(ms))),
            SEED,
        )
        .with_duration(SimDuration::from_secs(duration));
        let m = run(&cfg).metrics;
        (ms, m.latency.p(99.0), m.latency.p(99.9), m.throughput())
    };
    let periods: Vec<u64> = vec![50, 100, 150, 200];
    let dump = run_sweep(scenarios(SEED, periods.clone()), args.threads, f);
    if args.serial_check {
        let serial = run_serial(scenarios(SEED, periods), f);
        assert_byte_identical(&dump, &serial);
    }

    let mut table = Table::new(vec!["report period", "p99(ms)", "p99.9(ms)", "tput(req/s)"]);
    for (ms, p99, p999, tput) in &dump {
        table.row(vec![
            format!("{ms}ms"),
            format!("{p99:.0}"),
            format!("{p999:.0}"),
            format!("{tput:.1}"),
        ]);
    }
    println!("Report-period sweep — HipsterShop, Burst workload, Escra");
    println!("{}", table.render());
    println!("(paper: collecting at the end of every 100 ms CFS period gave the lowest");
    println!(" latency across the 50–200 ms sweep)");
    let path = write_json("report_period_sweep", &to_json(&dump));
    println!("rows written to {}", path.display());
}
