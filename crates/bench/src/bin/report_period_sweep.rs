//! Regenerates the **§VI-I "Why a 100ms Report Period?"** sweep: 99 %
//! end-to-end latency across telemetry report periods from 50 ms to
//! 200 ms in 50 ms steps (the paper finds 100 ms — the CFS period — is
//! the sweet spot).

use escra_bench::{write_json, SEED};
use escra_core::EscraConfig;
use escra_harness::{run, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::{hipster_shop, WorkloadKind};

fn main() {
    let mut table = Table::new(vec!["report period", "p99(ms)", "p99.9(ms)", "tput(req/s)"]);
    let mut dump = Vec::new();
    for ms in [50u64, 100, 150, 200] {
        let cfg = MicroSimConfig::new(
            hipster_shop(),
            WorkloadKind::paper_burst(),
            Policy::Escra(EscraConfig::default().with_report_period(SimDuration::from_millis(ms))),
            SEED,
        )
        .with_duration(SimDuration::from_secs(60));
        let m = run(&cfg).metrics;
        table.row(vec![
            format!("{ms}ms"),
            format!("{:.0}", m.latency.p(99.0)),
            format!("{:.0}", m.latency.p(99.9)),
            format!("{:.1}", m.throughput()),
        ]);
        dump.push((ms, m.latency.p(99.0), m.latency.p(99.9), m.throughput()));
    }
    println!("Report-period sweep — HipsterShop, Burst workload, Escra");
    println!("{}", table.render());
    println!("(paper: collecting at the end of every 100 ms CFS period gave the lowest");
    println!(" latency across the 50–200 ms sweep)");
    let path = write_json("report_period_sweep", &to_json(&dump));
    println!("rows written to {}", path.display());
}
