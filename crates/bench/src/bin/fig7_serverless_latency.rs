//! Regenerates **Fig. 7**: serverless latency CDFs.
//!
//! * 7a — ImageProcess per-request latency, OpenWhisk vs
//!   OpenWhisk + Escra (4 iterations × 750 requests);
//! * 7b — GridSearch end-to-end application latency over repeated runs
//!   for OpenWhisk, OpenWhisk + Escra, and OpenWhisk + Escra with 20 %
//!   fewer cores/MiB.

use escra_bench::write_json;
use escra_core::EscraConfig;
use escra_harness::serverless_sim::{run_serverless, ServerlessConfig};
use escra_metrics::{downsample_cdf, to_json, Table};
use escra_simcore::stats::percentile;
use escra_workloads::serverless::{grid_search_task, image_process};

/// GridSearch repetitions (paper: 50; scaled for bench runtime).
const GRID_RUNS: u64 = 8;

fn main() {
    // ---- 7a: ImageProcess request latency CDF ----
    println!("Fig. 7a — ImageProcess request latency (ms)");
    let mut table = Table::new(vec!["config", "mean", "p50", "p80", "p99", "requests"]);
    let mut dump = Vec::new();
    for escra in [false, true] {
        let cfg = ServerlessConfig::image_process(escra.then(EscraConfig::default), 11);
        let out = run_serverless(&cfg, &image_process());
        let m = &out.metrics;
        table.row(vec![
            m.policy.clone(),
            format!("{:.0}", m.latency.mean_ms()),
            format!("{:.0}", m.latency.p(50.0)),
            format!("{:.0}", m.latency.p(80.0)),
            format!("{:.0}", m.latency.p(99.0)),
            format!("{}", m.latency.successes()),
        ]);
        dump.push((m.policy.clone(), downsample_cdf(&m.latency.cdf(), 200)));
    }
    println!("{}", table.render());
    println!("(paper: Escra+OpenWhisk mean 1.99 s vs OpenWhisk 2.12 s; gains up to the");
    println!(" 80th%ile, similar 99th%ile)\n");

    // ---- 7b: GridSearch application latency CDF ----
    println!("Fig. 7b — GridSearch application latency (s), {GRID_RUNS} runs per config");
    let mut table = Table::new(vec!["config", "mean(s)", "p50(s)", "p99(s)"]);
    let mut dump_b = Vec::new();
    for (name, escra, scale) in [
        ("openwhisk", false, 1.0),
        ("escra-openwhisk", true, 1.0),
        ("escra-openwhisk-80pct", true, 0.8),
    ] {
        let mut latencies = Vec::new();
        for seed in 0..GRID_RUNS {
            let mut cfg =
                ServerlessConfig::grid_search(escra.then(EscraConfig::default), 100 + seed);
            cfg.resource_scale = scale;
            let out = run_serverless(&cfg, &grid_search_task());
            latencies.push(out.job_latency.expect("job completes").as_secs_f64());
            eprint!(".");
        }
        eprintln!(" {name}");
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        table.row(vec![
            name.into(),
            format!("{mean:.1}"),
            format!("{:.1}", percentile(&latencies, 50.0)),
            format!("{:.1}", percentile(&latencies, 99.0)),
        ]);
        dump_b.push((name, latencies));
    }
    println!("{}", table.render());
    println!("(paper: ~300 s for OpenWhisk and Escra at equal resources, 303 s (+1%) at");
    println!(" 80% resources; Escra+OpenWhisk has the lower tail)");

    let path = write_json("fig7_serverless_latency", &to_json(&(dump, dump_b)));
    println!("CDFs written to {}", path.display());
}
