//! Regenerates the **§VI-B provisioning study**: MediaMicroservice under
//! static limits at 0.75× (underutilized), 1.0× (best estimate) and
//! 1.5× (safe buffer) of the profiled peak — the trade-off curve that
//! motivates using 1.5× as the static comparison point — plus Escra,
//! which escapes the trade-off.

use escra_bench::{write_json, SEED};
use escra_harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimDuration;
use escra_workloads::{media_microservice, WorkloadKind};

fn main() {
    let base = MicroSimConfig::new(
        media_microservice(),
        WorkloadKind::paper_fixed(),
        Policy::static_1_5x(),
        SEED,
    )
    .with_duration(SimDuration::from_secs(60));
    let profiles = profile_run(&base);

    let mut table = Table::new(vec![
        "allocation",
        "tput(req/s)",
        "p99.9(ms)",
        "cpu slack p50",
        "mem slack p50(MiB)",
        "OOMs",
    ]);
    let mut dump = Vec::new();
    for factor in [0.75, 1.0, 1.5] {
        let cfg = MicroSimConfig {
            policy: Policy::Static { factor },
            ..base.clone()
        };
        let m = run_with_profiles(&cfg, &profiles).metrics;
        table.row(vec![
            format!("static-{factor}x"),
            format!("{:.1}", m.throughput()),
            format!("{:.0}", m.latency.p(99.9)),
            format!("{:.2}", m.slack.cpu_p(50.0)),
            format!("{:.0}", m.slack.mem_p(50.0)),
            format!("{}", m.oom_kills),
        ]);
        dump.push((
            format!("static-{factor}x"),
            m.throughput(),
            m.latency.p(99.9),
        ));
    }
    let escra = run_with_profiles(
        &MicroSimConfig {
            policy: Policy::escra_default(),
            ..base.clone()
        },
        &profiles,
    )
    .metrics;
    table.row(vec![
        "escra".into(),
        format!("{:.1}", escra.throughput()),
        format!("{:.0}", escra.latency.p(99.9)),
        format!("{:.2}", escra.slack.cpu_p(50.0)),
        format!("{:.0}", escra.slack.mem_p(50.0)),
        format!("{}", escra.oom_kills),
    ]);
    dump.push(("escra".into(), escra.throughput(), escra.latency.p(99.9)));

    println!("Static provisioning study — MediaMicroservice, fixed 400 req/s");
    println!("(paper 6-B: performance increases and slack worsens from 0.75x to 1.5x;");
    println!(" 1.5x is the safe buffer used for the comparisons)\n");
    println!("{}", table.render());
    let path = write_json("static_provisioning_study", &to_json(&dump));
    println!("rows written to {}", path.display());
}
